//! Training across islands over the datacenter network: the §5.3
//! scenario where a model too big (or a cluster too fragmented) for one
//! ICI island trains data-parallel across two islands, exchanging
//! gradients over DCN — plus a demonstration of resource-manager
//! features: failure GC and slice remapping.
//!
//! Run with: `cargo run --release --example multi_island`

use pathways::core::{PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways::models::{
    measure_tokens_per_sec_chained, two_island_chained, TrainSetup, TransformerConfig,
};
use pathways::net::{ClusterSpec, HostId, IslandId, NetworkParams};
use pathways::sim::Sim;

fn main() {
    let mut sim = Sim::new(0);
    // Two islands of 8 hosts x 4 TPUs each.
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(2, 8, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let client = rt.client(HostId(0));
    let s0 = client
        .virtual_slice(SliceRequest::devices(32).in_island(IslandId(0)))
        .unwrap();
    let s1 = client
        .virtual_slice(SliceRequest::devices(32).in_island(IslandId(1)))
        .unwrap();

    // A (scaled-down) decoder LM, half the batch per island, gradients
    // exchanged over DCN each step.
    let mut setup = TrainSetup::new(TransformerConfig::decoder_3b(), 256 * 1024);
    setup.calib.grad_bytes_per_param = 0.5; // scaled with the model
    let xfer = setup.calib.grad_exchange_bytes(&setup.model) as f64 / 1e9;
    println!(
        "training {} over 2 islands; {xfer:.1} GB gradient exchange per step",
        setup.model.name
    );

    // Chained-futures style: each step's grad computations consume the
    // previous step's weight objects (one per island) through external
    // inputs, so every step of the loop is submitted before the first
    // one finishes — dispatch never serializes on the DCN exchange.
    let chain = two_island_chained(&client, &[s0, s1], &setup);
    let init = client.prepare(&chain.init);
    let step = client.prepare(&chain.step);
    let tokens = setup.global_batch_tokens;
    let cid = client.id();
    let client2 = client.clone();
    let job = sim.spawn("train", async move {
        measure_tokens_per_sec_chained(&client2, &init, &step, &chain, tokens, 3).await
    });
    sim.run_to_quiescence();
    println!("throughput: {:.0} tokens/s", job.try_take().unwrap());

    // Resource-manager features enabled by the single controller:
    // everything a failed client pinned is garbage-collected by owner
    // label (§4.6), and its slices return to the pool.
    let freed = rt.fail_client(cid);
    println!("client failure: {freed} leaked object(s) garbage-collected");
    assert!(rt.core().store.is_empty());
}
