//! Pipelined Transformer training (the Table 2 workload): the 3B
//! decoder-only LM split into GPipe stages across host groups, compared
//! with the SPMD layout of the same model on the same cores.
//!
//! Run with: `cargo run --release --example pipeline_transformer`

use pathways::core::{PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways::models::{
    gpipe_program, measure_tokens_per_sec, measure_tokens_per_sec_chained, spmd_chained,
    spmd_program, TrainSetup, TransformerConfig,
};
use pathways::net::{ClusterSpec, HostId, NetworkParams};
use pathways::sim::Sim;

fn main() {
    let model = TransformerConfig::decoder_3b();
    println!(
        "model: {} ({:.1}B params, {} layers, d_model {})",
        model.name,
        model.params() as f64 / 1e9,
        model.layers,
        model.d_model
    );
    let setup = TrainSetup::new(model, 512 * 1024); // 512 sequences/step

    // --- SPMD over 32 cores ---
    let spmd_tps = {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(4),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let slice = client.virtual_slice(SliceRequest::devices(32)).unwrap();
        let program = spmd_program(&client, &slice, &setup);
        let prepared = client.prepare(&program);
        let tokens = setup.global_batch_tokens;
        let job = sim.spawn("train", async move {
            measure_tokens_per_sec(&client, &prepared, tokens, 3).await
        });
        sim.run_to_quiescence();
        job.try_take().unwrap()
    };
    println!("SPMD, 32 cores:            {spmd_tps:>10.0} tokens/s");

    // --- The same SPMD steps chained through ObjectRef futures: every
    // step consumes the previous step's weights object as an external
    // input, so the whole loop is dispatched without awaiting any
    // intermediate run (parallel asynchronous dispatch across programs).
    let chained_tps = {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(4),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let slice = client.virtual_slice(SliceRequest::devices(32)).unwrap();
        let chain = spmd_chained(&client, &slice, &setup);
        let init = client.prepare(&chain.init);
        let step = client.prepare(&chain.step);
        let tokens = setup.global_batch_tokens;
        let job = sim.spawn("train", async move {
            measure_tokens_per_sec_chained(&client, &init, &step, &chain, tokens, 3).await
        });
        sim.run_to_quiescence();
        job.try_take().unwrap()
    };
    println!("SPMD chained (ObjectRefs): {chained_tps:>10.0} tokens/s");

    // --- GPipe: 4 stages x 8 cores, 16 micro-batches ---
    let pipe_tps = {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(4),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let stages: Vec<_> = (0..4)
            .map(|_| {
                client
                    .virtual_slice(SliceRequest::devices(8).contiguous())
                    .unwrap()
            })
            .collect();
        let program = gpipe_program(&client, &stages, 16, &setup);
        let prepared = client.prepare(&program);
        println!(
            "pipeline program: {} computations, dataflow graph {:?}",
            program.computations().len(),
            prepared.graph_size()
        );
        let tokens = setup.global_batch_tokens;
        let job = sim.spawn("train", async move {
            measure_tokens_per_sec(&client, &prepared, tokens, 3).await
        });
        sim.run_to_quiescence();
        job.try_take().unwrap()
    };
    println!("GPipe S=4 M=16, 32 cores:  {pipe_tps:>10.0} tokens/s");
    println!(
        "pipeline/SPMD ratio: {:.3} (the paper's Table 2 finds pipelining competitive)",
        pipe_tps / spmd_tps
    );
}
