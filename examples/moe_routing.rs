//! Data-dependent sparse routing — the §6.3 research direction the
//! paper builds Pathways to enable: "Models like Mixture of Experts
//! exploit computational sparsity by 'routing' different (sub-)examples
//! to the accelerators hosting different subsets of model weights."
//!
//! This example expresses a Mixture-of-Experts layer directly as a
//! sharded PLAQUE dataflow: a router node sends each token group only
//! to its learned expert (a *dynamically chosen subset of shards* —
//! the sparse-exchange capability of §4.3), experts process what they
//! receive, and a combiner gathers the results. Progress tracking lets
//! experts that received nothing terminate without any extra protocol.
//!
//! Run with: `cargo run --release --example moe_routing`

use pathways_sim::Lock;
use std::sync::Arc;

use pathways::net::{ClusterSpec, Fabric, HostId, NetworkParams};
use pathways::plaque::{EdgeId, GraphBuilder, Operator, PlaqueRuntime, ShardCtx, Tuple};
use pathways::sim::Sim;

const EXPERTS: u32 = 8;
const TOKENS: u32 = 64;

#[derive(Debug, Clone, Copy)]
struct TokenGroup {
    token_id: u32,
    value: u64,
}

#[derive(Debug, Clone, Copy)]
#[allow(dead_code)] // `expert`/`value` document the payload; only the count is asserted
struct ExpertOutput {
    token_id: u32,
    expert: u32,
    value: u64,
}

/// The learned gating function (here: a deterministic hash standing in
/// for a router network). The key property: the destination shard is
/// *data-dependent* and unknown until the input exists.
fn gate(token: &TokenGroup) -> u32 {
    ((token.value.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as u32 % EXPERTS
}

struct RouterOp {
    to_experts: EdgeId,
}

impl Operator for RouterOp {
    fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
        // Each router shard handles a slice of the batch and sends each
        // token group only to its gated expert.
        let shard = ctx.shard();
        let per_shard = TOKENS / 4;
        for i in 0..per_shard {
            let token = TokenGroup {
                token_id: shard * per_shard + i,
                value: (shard as u64 * 131) + i as u64 * 7,
            };
            let expert = gate(&token);
            ctx.send(self.to_experts, expert, Tuple::new(token, 1 << 10));
        }
        ctx.halt();
    }
}

struct ExpertOp {
    to_combine: EdgeId,
    processed: Arc<Lock<Vec<u32>>>,
}

impl Operator for ExpertOp {
    fn on_tuple(&mut self, ctx: &mut ShardCtx<'_>, _e: EdgeId, _s: u32, tuple: Tuple) {
        let token = *tuple.expect::<TokenGroup>();
        let expert = ctx.shard();
        self.processed.lock()[expert as usize] += 1;
        // "Expert FFN": transform the value; spawn nothing — the point
        // here is the routing topology, not device occupancy.
        let out = ExpertOutput {
            token_id: token.token_id,
            expert,
            value: token.value * 1000 + expert as u64,
        };
        ctx.send(self.to_combine, 0, Tuple::new(out, 1 << 10));
    }
}

struct CombineOp {
    outputs: Arc<Lock<Vec<ExpertOutput>>>,
}

impl Operator for CombineOp {
    fn on_tuple(&mut self, _ctx: &mut ShardCtx<'_>, _e: EdgeId, _s: u32, tuple: Tuple) {
        self.outputs.lock().push(*tuple.expect::<ExpertOutput>());
    }
}

fn main() {
    let mut sim = Sim::new(0);
    let fabric = Fabric::new(
        sim.handle(),
        Arc::new(ClusterSpec::config_b(2).build()),
        NetworkParams::tpu_cluster(),
    );
    let runtime = PlaqueRuntime::new(fabric);

    let processed = Arc::new(Lock::new(vec![0u32; EXPERTS as usize]));
    let outputs = Arc::new(Lock::new(Vec::new()));

    // Edges are created in declaration order: router->experts = 0,
    // experts->combine = 1.
    let to_experts = EdgeId(0);
    let to_combine = EdgeId(1);
    let mut g = GraphBuilder::new("moe-layer");
    let router = g.node("router", vec![HostId(0); 4], move |_| {
        Box::new(RouterOp { to_experts })
    });
    let experts = {
        let processed = Arc::clone(&processed);
        // Experts spread across both hosts: routing crosses the DCN.
        let placement: Vec<HostId> = (0..EXPERTS).map(|e| HostId(e % 2)).collect();
        g.node("experts", placement, move |_| {
            Box::new(ExpertOp {
                to_combine,
                processed: Arc::clone(&processed),
            })
        })
    };
    let combine = {
        let outputs = Arc::clone(&outputs);
        g.node("combine", vec![HostId(0)], move |_| {
            Box::new(CombineOp {
                outputs: Arc::clone(&outputs),
            })
        })
    };
    assert_eq!(g.edge(router, experts), to_experts);
    assert_eq!(g.edge(experts, combine), to_combine);
    let graph = g.build().expect("valid MoE graph");
    println!(
        "MoE dataflow: {} nodes / {} edges for {} router shards x {} experts",
        graph.num_nodes(),
        graph.num_edges(),
        4,
        EXPERTS
    );

    let run = runtime.launch(&graph, HostId(0));
    let job = sim.spawn("layer", async move { run.await_done().await });
    let end = sim.run_to_quiescence();
    assert!(job.is_finished());

    let outputs = outputs.lock();
    println!("routed {TOKENS} token groups in {end} of simulated time");
    println!("tokens per expert (data-dependent, learned gating):");
    for (e, n) in processed.lock().iter().enumerate() {
        println!("  expert {e}: {n:>3} tokens  {}", "#".repeat(*n as usize));
    }
    assert_eq!(outputs.len(), TOKENS as usize);
    // Every token came back exactly once, transformed by its expert.
    let mut seen: Vec<u32> = outputs.iter().map(|o| o.token_id).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..TOKENS).collect::<Vec<_>>());
    println!("all {TOKENS} tokens combined; sparse edges closed via progress tracking");

    // Pause to appreciate what did NOT happen: experts that received
    // few (or no) tokens never needed a dense all-to-all — punctuation
    // counts closed their edges.
    let min = processed.lock().iter().copied().min().unwrap();
    let max = processed.lock().iter().copied().max().unwrap();
    println!("load imbalance (min/max tokens per expert): {min}/{max}");
}
