//! Elastic slice healing: a device dies mid-training, the resource
//! manager remaps the victim's virtual slice onto spare capacity, and
//! the client's next submit simply re-lowers — the §4.1 claim that the
//! controller can "dynamically add and remove resources, remap without
//! the client's cooperation", closed into a loop with the fault
//! injector.
//!
//! Run with: `cargo run --release --example elastic_healing`

use pathways::core::{FaultSpec, FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways::net::{ClusterSpec, HostId, NetworkParams};
use pathways::sim::{FaultPlan, Sim, SimDuration, SimTime};

fn main() {
    let mut sim = Sim::new(0);
    // One island: 2 hosts x 4 TPUs. The slice uses half the island, so
    // spare capacity exists to heal onto.
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(1, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(4)).unwrap();
    println!("slice {} on {:?}", slice.id(), slice.physical_devices());

    // Script the fault: the slice's second device dies at t = 1 ms.
    let victim = slice.physical_devices()[1];
    rt.install_fault_plan(FaultPlan::new().at(
        SimTime::ZERO + SimDuration::from_millis(1),
        FaultSpec::Device(victim),
    ));
    println!("scripted: kill {victim} at 1ms\n");

    let mut b = client.trace("train");
    let k = b.computation(
        FnSpec::compute_only("step", SimDuration::from_micros(400))
            .with_allreduce(4)
            .with_output_bytes(1 << 12),
        &slice,
    );
    // Lower ONCE. The prepared program is reused across the fault; when
    // the slice is healed its lowering goes stale and submit re-lowers
    // transparently.
    let prepared = client.prepare(&b.build().unwrap());

    let slice2 = slice.clone();
    let h = sim.handle();
    let job = sim.spawn("trainer", async move {
        let mut ok = 0u32;
        let mut failed = 0u32;
        for step in 0..8 {
            let run = client.submit(&prepared).await;
            let out = run.object_ref(k).unwrap();
            run.finish().await;
            match out.ready().await {
                Ok(()) => {
                    ok += 1;
                    println!(
                        "[{}] step {step}: ok on {:?}",
                        h.now(),
                        slice2.physical_devices()
                    );
                }
                Err(e) => {
                    failed += 1;
                    println!("[{}] step {step}: FAILED ({e})", h.now());
                }
            }
        }
        (ok, failed)
    });
    sim.run_to_quiescence();
    let (ok, failed) = job.try_take().unwrap();

    let heals = rt.faults().heal_events();
    println!("\nheal events: {}", heals.len());
    for e in &heals {
        println!(
            "  {} ({}): {:?} -> {:?}",
            e.slice,
            if e.healed() { "healed" } else { "unplaceable" },
            e.from,
            e.to
        );
    }
    println!("steps: {ok} ok, {failed} failed (the one in flight at the kill)");
    assert_eq!(failed, 1, "exactly the in-flight step fails");
    assert!(ok >= 6, "training continues on the healed slice");
    assert!(heals.iter().all(|e| e.healed()));
    assert!(!slice.physical_devices().contains(&victim));
    println!(
        "slice now on {:?} — client never re-allocated anything",
        slice.physical_devices()
    );
}
