//! Multi-tenancy: four clients time-share one island of TPUs under
//! weighted gang scheduling (the Figure 9 scenario), with the
//! interleaving rendered as an ASCII trace — once under stride
//! proportional share and once under the gang-aware weighted-fair
//! queueing engine, to show the pluggable policy layer.
//!
//! Run with: `cargo run --release --example multi_tenant`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pathways::core::{FnSpec, PathwaysConfig, PathwaysRuntime, SchedPolicy, SliceRequest};
use pathways::net::{ClientId, ClusterSpec, HostId, NetworkParams};
use pathways::sim::sync::Semaphore;
use pathways::sim::{Sim, SimDuration, SimTime};

fn weights_1248() -> std::collections::BTreeMap<ClientId, u32> {
    [
        (ClientId(0), 1),
        (ClientId(1), 2),
        (ClientId(2), 4),
        (ClientId(3), 8),
    ]
    .into_iter()
    .collect()
}

fn run_policy(title: &str, policy: SchedPolicy) {
    let mut sim = Sim::new(7);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(1),
        NetworkParams::tpu_cluster(),
        PathwaysConfig {
            policy,
            sched_horizon: SimDuration::from_micros(600),
            ..PathwaysConfig::default()
        },
    );

    let completed: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, label) in ["A", "B", "C", "D"].iter().enumerate() {
        let client = rt.client_labeled(HostId(0), *label);
        let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = client.trace(format!("tenant-{label}"));
        b.computation(
            FnSpec::compute_only("step", SimDuration::from_micros(330)).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = Arc::new(client.prepare(&program));
        let window = Semaphore::new(12);
        let h = sim.handle();
        let counter = Arc::clone(&completed[i]);
        sim.spawn(format!("stream-{label}"), async move {
            loop {
                let permit = window.acquire(1).await;
                let pending = client.submit(&prepared).await;
                let counter = Arc::clone(&counter);
                h.spawn("run", async move {
                    let _p = permit;
                    pending.finish().await;
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }

    let window = SimDuration::from_millis(40);
    sim.run_until_time(SimTime::ZERO + window);
    let trace = sim.take_trace();

    println!("{title}: weights 1:2:4:8 — device 0 timeline (one letter per client):");
    let start = SimTime::ZERO + SimDuration::from_millis(10);
    println!("{}", trace.render_ascii(start, SimTime::ZERO + window, 100));
    let util = trace.utilization("d0000", start, SimTime::ZERO + window);
    println!("device-0 utilization: {:.0}%", util * 100.0);
    println!("programs completed per client:");
    for (i, label) in ["A", "B", "C", "D"].iter().enumerate() {
        println!(
            "  {label} (weight {}): {}",
            1 << i,
            completed[i].load(Ordering::Relaxed)
        );
    }
    println!();
}

fn main() {
    run_policy(
        "stride proportional share",
        SchedPolicy::ProportionalShare(weights_1248()),
    );
    run_policy(
        "gang-aware weighted-fair queueing",
        SchedPolicy::WeightedFair {
            weights: weights_1248(),
            quantum: SimDuration::from_micros(500),
        },
    );
}
