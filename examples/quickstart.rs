//! Quickstart: bring up a simulated TPU cluster, allocate a virtual
//! slice, trace a two-computation program (the Figure 2 shape), then
//! chain a *second* program onto its output through an `ObjectRef`
//! future — submitting both before the first kernel has run.
//!
//! Run with: `cargo run --release --example quickstart`

use pathways::core::{FnSpec, InputSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways::net::{ClusterSpec, HostId, NetworkParams};
use pathways::sim::{Sim, SimDuration};

fn main() {
    // A deterministic simulation: same seed, same trace, every run.
    let mut sim = Sim::new(42);

    // Configuration (B): 4 hosts x 8 TPUs, one island.
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );

    // A client process on host 0 asks the resource manager for 16
    // virtual devices (mapped 1:1 onto physical TPUs).
    let client = rt.client(HostId(0));
    let slice = client
        .virtual_slice(SliceRequest::devices(16))
        .expect("cluster has 32 devices");
    println!(
        "allocated slice of {} devices: {:?} ...",
        slice.len(),
        &slice.physical_devices()[..4]
    );

    // Trace a program: a = f(x); b = g(a)  — two sharded compiled
    // functions with a dataflow edge, like the paper's Figure 2.
    let mut b = client.trace("quickstart");
    let f = b.computation(
        FnSpec::compute_only("f", SimDuration::from_micros(500))
            .with_allreduce(4)
            .with_output_bytes(1 << 20),
        &slice,
    );
    let g = b.computation(
        FnSpec::compute_only("g", SimDuration::from_micros(300)).with_output_bytes(1 << 10),
        &slice,
    );
    b.edge(f, g, 1 << 20);
    let program = b.build().expect("valid DAG");

    // A second program consuming the first one's output: `h(b)`. The
    // `input` node is a placeholder bound to an ObjectRef at submit time.
    let mut b2 = client.trace("consumer");
    let x = b2.input(InputSpec::new("b", 16));
    let h = b2.computation(
        FnSpec::compute_only("h", SimDuration::from_micros(200)).with_output_bytes(1 << 10),
        &slice,
    );
    b2.edge(x, h, 1 << 10);
    let consumer = b2.build().expect("valid DAG");

    // Lowering: virtual devices -> physical devices -> PLAQUE dataflow.
    let prepared = client.prepare(&program);
    let prepared_consumer = client.prepare(&consumer);
    let (nodes, edges) = prepared.graph_size();
    println!("lowered dataflow: {nodes} nodes, {edges} edges (16-way sharded)");

    // Run the chain. submit() is non-blocking: the output ObjectRefs
    // exist immediately, so the consumer is dispatched while the first
    // program is still executing; only h's kernels wait (per shard) for
    // g's readiness events.
    let job = sim.spawn("client", async move {
        let run1 = client.submit(&prepared).await;
        let b_ref = run1.object_ref(g).expect("g is a sink");
        println!(
            "submitted {}; output future {:?} (ready: {})",
            run1.run(),
            b_ref.id(),
            b_ref.is_ready()
        );
        let run2 = client
            .submit_with(&prepared_consumer, &[(x, b_ref)])
            .await
            .expect("binding matches the input");
        println!("chained {} before {} finished", run2.run(), run1.run());
        let r1 = run1.finish().await;
        let r2 = run2.finish().await;
        println!(
            "run {} finished with {} output object(s): {:?}",
            r1.run(),
            r1.objects().len(),
            r1.object(g)
        );
        println!("run {} finished with output {:?}", r2.run(), r2.object(h));
    });
    let end = sim.run_to_quiescence();
    assert!(job.is_finished());
    println!("simulated wall time: {end}");
}
