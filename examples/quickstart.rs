//! Quickstart: bring up a simulated TPU cluster, allocate a virtual
//! slice, trace a two-computation program (the Figure 2 shape), run it,
//! and inspect the results.
//!
//! Run with: `cargo run --release --example quickstart`

use pathways::core::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways::net::{ClusterSpec, HostId, NetworkParams};
use pathways::sim::{Sim, SimDuration};

fn main() {
    // A deterministic simulation: same seed, same trace, every run.
    let mut sim = Sim::new(42);

    // Configuration (B): 4 hosts x 8 TPUs, one island.
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );

    // A client process on host 0 asks the resource manager for 16
    // virtual devices (mapped 1:1 onto physical TPUs).
    let client = rt.client(HostId(0));
    let slice = client
        .virtual_slice(SliceRequest::devices(16))
        .expect("cluster has 32 devices");
    println!(
        "allocated slice of {} devices: {:?} ...",
        slice.len(),
        &slice.physical_devices()[..4]
    );

    // Trace a program: a = f(x); b = g(a)  — two sharded compiled
    // functions with a dataflow edge, like the paper's Figure 2.
    let mut b = client.trace("quickstart");
    let f = b.computation(
        FnSpec::compute_only("f", SimDuration::from_micros(500))
            .with_allreduce(4)
            .with_output_bytes(1 << 20),
        &slice,
    );
    let g = b.computation(
        FnSpec::compute_only("g", SimDuration::from_micros(300)).with_output_bytes(1 << 10),
        &slice,
    );
    b.edge(f, g, 1 << 20);
    let program = b.build().expect("valid DAG");

    // Lowering: virtual devices -> physical devices -> PLAQUE dataflow.
    let prepared = client.prepare(&program);
    let (nodes, edges) = prepared.graph_size();
    println!("lowered dataflow: {nodes} nodes, {edges} edges (16-way sharded)");

    // Run it. The client task submits, the island scheduler
    // gang-schedules, per-host executors dispatch in parallel, devices
    // execute, and output handles come back.
    let job = sim.spawn("client", async move {
        let result = client.run(&prepared).await;
        println!(
            "run {} finished with {} output object(s): {:?}",
            result.run(),
            result.objects().len(),
            result.object(g)
        );
    });
    let end = sim.run_to_quiescence();
    assert!(job.is_finished());
    println!("simulated wall time: {end}");
}
