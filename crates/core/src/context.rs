//! Shared runtime context threaded through operators and clients.

use pathways_sim::hash::FxHashMap;
use pathways_sim::Lock;
use std::fmt;
use std::sync::Arc;

use pathways_device::DeviceHandle;
use pathways_net::{DeviceId, Fabric, HostId, IslandId, Router};
use pathways_plaque::{PlaqueRuntime, RunId};
use pathways_sim::SimHandle;

use pathways_sim::sync::Event;

use crate::config::PathwaysConfig;
use crate::exec::ExecutorShared;
use crate::fault::FailureState;
use crate::objref::InputBinding;
use crate::program::CompId;
use crate::sched::CtrlMsg;
use crate::storage::ObjectStore;

/// Key of one consumer input: `(run, consumer comp, consumer shard,
/// local in-edge index)`.
pub type InputKey = (RunId, CompId, u32, usize);

/// A consumer shard's input buffer: producers decrement `remaining` as
/// their transfers land; the kernel's input future fires at zero.
///
/// This models the ICI path of §4.5: "outputs are sent via the
/// accelerator interconnect directly into node B's input buffers, and
/// then host B starts node B" — the data arrival itself is the trigger,
/// with no host or DCN message in the critical path.
#[derive(Debug, Clone)]
pub struct InputSlot {
    remaining: std::sync::Arc<std::sync::atomic::AtomicU64>,
    event: Event,
}

impl InputSlot {
    /// Creates a slot expecting `expected` producer transfers; fires
    /// immediately when `expected` is zero.
    pub fn new(expected: u64) -> Self {
        let event = Event::new();
        if expected == 0 {
            event.set();
        }
        InputSlot {
            remaining: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(expected)),
            event,
        }
    }

    /// The readiness event the kernel waits on.
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// Records one producer transfer landing.
    ///
    /// # Panics
    ///
    /// Panics if more transfers land than were expected.
    pub fn deliver(&self) {
        let left = self
            .remaining
            .fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
        assert!(left > 0, "input slot over-delivered");
        if left == 1 {
            self.event.set();
        }
    }
}

/// Everything the runtime's moving parts share.
pub struct CoreCtx {
    /// Simulation handle.
    pub handle: SimHandle,
    /// The interconnect fabric.
    pub fabric: Fabric,
    /// The cluster-wide object store.
    pub store: ObjectStore,
    /// The coordination substrate.
    pub plaque: PlaqueRuntime,
    /// Client → scheduler control channel.
    pub sched_router: Router<CtrlMsg>,
    /// Scheduler → executor control channel.
    pub exec_router: Router<CtrlMsg>,
    /// All device handles.
    pub devices: Arc<FxHashMap<DeviceId, DeviceHandle>>,
    /// Per-host registration rendezvous.
    pub executors: FxHashMap<HostId, ExecutorShared>,
    /// Island → scheduler host.
    pub sched_hosts: FxHashMap<IslandId, HostId>,
    /// Bound external inputs, keyed by `(run, input comp)`. Installed by
    /// `Client::submit_with` before the run launches; removed by the
    /// last input shard once its transfers are driven.
    pub(crate) bindings: Lock<FxHashMap<(RunId, CompId), Arc<InputBinding>>>,
    /// Live consumer input buffers (see [`InputSlot`]).
    pub input_slots: Lock<FxHashMap<InputKey, InputSlot>>,
    /// Shared failure registry: dead hardware and failed runs, consulted
    /// by clients (fail-fast submission), schedulers (eviction) and
    /// executors (grant skipping).
    pub failures: FailureState,
    /// Runtime configuration.
    pub cfg: PathwaysConfig,
}

impl fmt::Debug for CoreCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoreCtx")
            .field("devices", &self.devices.len())
            .field("hosts", &self.executors.len())
            .finish()
    }
}

impl CoreCtx {
    /// Moves `bytes` from `src` device's HBM to `dst` device's HBM over
    /// the appropriate interconnect: in-place (same device), ICI (same
    /// island) or PCIe→DCN→PCIe (across islands).
    pub async fn move_bytes(&self, src: DeviceId, dst: DeviceId, bytes: u64) {
        if src == dst || bytes == 0 {
            self.handle.yield_now().await;
            return;
        }
        let topo = Arc::clone(self.fabric.topology());
        if topo.same_island(src, dst) {
            self.fabric.ici_transfer(src, dst, bytes).await;
        } else {
            let sh = topo.host_of_device(src);
            let dh = topo.host_of_device(dst);
            self.fabric.pcie_transfer(sh, src, bytes).await;
            self.fabric.dcn_send(sh, dh, bytes).await;
            self.fabric.pcie_transfer(dh, dst, bytes).await;
        }
    }
}
