//! Fault injection and failure propagation (§4.3's "delivering errors
//! on failures").
//!
//! The seed runtime modeled exactly one failure: client death
//! ([`PathwaysRuntime::fail_client`](crate::PathwaysRuntime::fail_client)).
//! A dead *device* or *host* would simply hang every `ObjectRef`
//! downstream of it — the consuming kernels gate on readiness events
//! that would never fire. This module makes those failures first-class
//! scenarios:
//!
//! * [`FaultSpec`] — the fault vocabulary (kill a device, kill a host,
//!   sever a DCN link), scripted on a
//!   [`FaultPlan`](pathways_sim::FaultPlan) registered on the `Sim`.
//! * [`FailureState`] — the shared registry of dead hardware and failed
//!   runs, consulted by the client (fail-fast submission), the island
//!   schedulers (evicting queued work of failed runs) and the host
//!   executors (skipping grants of failed runs).
//! * [`FaultInjector`] — applies a fault at its scripted virtual time
//!   and *synchronously* walks the blast radius so that nothing is left
//!   to hang: objects with shards on dead hardware fail in the store
//!   (readiness events fire, HBM frees), in-flight runs touching dead
//!   hardware fail (their sinks resolve to
//!   [`ObjectError::ProducerFailed`], their never-granted shards are
//!   force-started so their drivers can wind the dataflow down, their
//!   pending executor registrations are swept so drivers observe the
//!   abort), and failures cascade along `ObjectRef` bindings to
//!   downstream consumers. A housekeeping error-delivery program
//!   ([`crate::housekeeping::deliver_errors`]) then fans the failure
//!   out to every live host over the coordination substrate. Finally
//!   the injector closes the elasticity loop: the resource manager
//!   [heals](crate::ResourceManager::heal) every live slice off the
//!   dead hardware, heal notices fan out to live hosts
//!   ([`FaultInjector::heal_log`]), and the affected clients' next
//!   submits re-lower onto the healed mappings and succeed.
//!
//! Everything here is deterministic: scans iterate in sorted id order,
//! and the fault plan's driver fires on the simulation's timer wheel,
//! so the same seed and schedule reproduce a bit-identical trace.

use pathways_sim::hash::{FxHashMap, FxHashSet};
use pathways_sim::Lock;
use std::fmt;
use std::sync::Arc;

use pathways_net::{ClientId, DeviceId, HostId, IslandId};
use pathways_plaque::RunId;
use pathways_sim::sync::Event;
use pathways_sim::{FaultPlan, SimHandle};

use crate::context::CoreCtx;
use crate::housekeeping::{spawn_error_delivery, spawn_heal_delivery, ErrorLog, HealLog};
use crate::resource::{HealEvent, ResourceManager};
use crate::storage::{FailureReason, ObjectId};
use crate::storage::{RecoveryManager, RecoveryStats};

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSpec {
    /// Kill one device: it stops accepting kernels, aborts its queue,
    /// and gangs that include it abort at the rendezvous.
    Device(DeviceId),
    /// Kill one host: its NIC drops all DCN traffic, its devices die,
    /// and any island scheduler on it takes the island down with it.
    Host(HostId),
    /// Sever the DCN link between two hosts (both directions).
    Link(HostId, HostId),
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::Device(d) => write!(f, "kill-{d}"),
            FaultSpec::Host(h) => write!(f, "kill-{h}"),
            FaultSpec::Link(a, b) => write!(f, "sever-{a}-{b}"),
        }
    }
}

/// What one in-flight run touches — enough to decide whether a fault
/// dooms it, and to wind it down if so. Registered by
/// [`Client::submit_with`](crate::Client::submit_with).
#[derive(Debug, Clone)]
pub struct RunFootprint {
    /// Submitting client.
    pub client: ClientId,
    /// The client process's host.
    pub client_host: HostId,
    /// Every device any kernel computation shard was lowered onto.
    pub devices: Vec<DeviceId>,
    /// Every host involved: shard hosts, the client host, and the
    /// scheduler hosts of the islands the run submits to.
    pub hosts: Vec<HostId>,
    /// Islands the run submits work to.
    pub islands: Vec<IslandId>,
    /// The run's sink objects (the client-visible `ObjectRef`s).
    pub sinks: Vec<ObjectId>,
    /// Fired when the run is failed; the client's
    /// [`Run::finish`](crate::Run::finish) races completion against
    /// this, so a run whose wind-down messages were lost to a partition
    /// is abandoned instead of awaited forever.
    pub failed: Event,
}

#[derive(Default)]
struct FailInner {
    dead_devices: FxHashSet<DeviceId>,
    dead_hosts: FxHashSet<HostId>,
    dead_islands: FxHashSet<IslandId>,
    severed: FxHashSet<(HostId, HostId)>,
    failed_runs: FxHashMap<RunId, FailureReason>,
    runs: FxHashMap<RunId, RunFootprint>,
}

/// Shared, cheaply-cloneable failure registry.
#[derive(Clone, Default)]
pub struct FailureState {
    inner: Arc<Lock<FailInner>>,
}

impl fmt::Debug for FailureState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FailureState")
            .field("dead_devices", &inner.dead_devices.len())
            .field("dead_hosts", &inner.dead_hosts.len())
            .field("failed_runs", &inner.failed_runs.len())
            .finish()
    }
}

impl FailureState {
    /// An empty registry (nothing dead, nothing failed).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `run` has been failed.
    pub fn run_failed(&self, run: RunId) -> bool {
        self.inner.lock().failed_runs.contains_key(&run)
    }

    /// Why `run` failed, if it has.
    pub fn run_failure(&self, run: RunId) -> Option<FailureReason> {
        self.inner.lock().failed_runs.get(&run).copied()
    }

    /// True if `device` is dead.
    pub fn device_dead(&self, device: DeviceId) -> bool {
        self.inner.lock().dead_devices.contains(&device)
    }

    /// True if `host` is dead.
    pub fn host_dead(&self, host: HostId) -> bool {
        self.inner.lock().dead_hosts.contains(&host)
    }

    /// True if `island` lost its scheduler.
    pub fn island_dead(&self, island: IslandId) -> bool {
        self.inner.lock().dead_islands.contains(&island)
    }

    /// True if the link between `a` and `b` is severed or either end is
    /// dead.
    pub fn link_down(&self, a: HostId, b: HostId) -> bool {
        let inner = self.inner.lock();
        inner.dead_hosts.contains(&a)
            || inner.dead_hosts.contains(&b)
            || (a != b && inner.severed.contains(&pair_key(a, b)))
    }

    /// Registers an in-flight run's footprint (client submission path).
    pub fn register_run(&self, run: RunId, footprint: RunFootprint) {
        self.inner.lock().runs.insert(run, footprint);
    }

    /// The run's failure event, if the run is registered. Transfer
    /// tasks race their cross-host waits against this so wind-down
    /// messages lost to dead NICs cannot wedge them.
    pub fn failed_event(&self, run: RunId) -> Option<Event> {
        self.inner.lock().runs.get(&run).map(|fp| fp.failed.clone())
    }

    /// Number of runs currently failed (tests/metrics).
    pub fn failed_run_count(&self) -> usize {
        self.inner.lock().failed_runs.len()
    }
}

fn pair_key(a: HostId, b: HostId) -> (HostId, HostId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

/// Applies scripted faults to a running
/// [`PathwaysRuntime`](crate::PathwaysRuntime) and propagates the
/// resulting errors so no future ever wedges.
pub struct FaultInjector {
    core: Arc<CoreCtx>,
    rm: Arc<ResourceManager>,
    state: FailureState,
    errors: ErrorLog,
    /// Every healing action taken so far, in injection order.
    heals: Lock<Vec<HealEvent>>,
    heal_log: HealLog,
    /// Present when object recovery is enabled (tiered store with
    /// `recovery: true`): hardware loss is absorbed into checkpoint
    /// restore / lineage recompute instead of terminal `ProducerFailed`.
    recovery: Lock<Option<Arc<RecoveryManager>>>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("state", &self.state)
            .finish()
    }
}

impl FaultInjector {
    pub(crate) fn new(core: Arc<CoreCtx>, rm: Arc<ResourceManager>, state: FailureState) -> Self {
        FaultInjector {
            core,
            rm,
            state,
            errors: ErrorLog::new(),
            heals: Lock::new(Vec::new()),
            heal_log: HealLog::new(),
            recovery: Lock::new(None),
        }
    }

    /// Turns on object recovery (called by the runtime assembly when the
    /// store is tiered with `recovery: true`): the blast-radius walk
    /// routes object loss through the [`RecoveryManager`] before
    /// declaring anything `ProducerFailed`.
    pub(crate) fn enable_recovery(self: &Arc<Self>) {
        let Some(cfg) = self.core.cfg.tiers.clone() else {
            return;
        };
        let manager = Arc::new(RecoveryManager::new(
            Arc::clone(&self.core),
            cfg,
            Arc::downgrade(self),
        ));
        *self.recovery.lock() = Some(manager);
    }

    /// Recovery outcome counters (all zero when recovery is disabled).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
            .lock()
            .as_ref()
            .map(|r| r.stats())
            .unwrap_or_default()
    }

    /// The shared failure registry.
    pub fn state(&self) -> &FailureState {
        &self.state
    }

    /// The per-host error log fed by housekeeping error delivery.
    pub fn error_log(&self) -> &ErrorLog {
        &self.errors
    }

    /// Every [`HealEvent`] so far: which slices were remapped off dead
    /// hardware (or could not be), in injection order.
    pub fn heal_events(&self) -> Vec<HealEvent> {
        self.heals.lock().clone()
    }

    /// The per-host heal-notice log fed by housekeeping delivery, so
    /// client agents on live hosts learn which slices were remapped and
    /// must re-lower.
    pub fn heal_log(&self) -> &HealLog {
        &self.heal_log
    }

    /// Spawns the driver task for `plan`: each fault applies at its
    /// scripted virtual time, stamped onto the trace's `faults` track.
    pub fn install_plan(self: &Arc<Self>, handle: &SimHandle, plan: FaultPlan<FaultSpec>) {
        let this = Arc::clone(self);
        let h = handle.clone();
        plan.spawn(handle, move |at, spec| {
            h.trace_span("faults", spec.to_string(), at, at);
            this.inject(&spec);
        });
    }

    /// Applies one fault now. Synchronous: when this returns, every
    /// doomed object carries its error, every doomed run is winding
    /// down, nothing downstream of the fault can block forever, and
    /// every live slice touching the dead hardware has been remapped
    /// onto spare capacity (or recorded as unplaceable) — the *next*
    /// submit on a healed slice re-lowers and succeeds.
    pub fn inject(&self, spec: &FaultSpec) {
        let mut newly_failed: Vec<RunId> = Vec::new();
        let mut newly_dead: Vec<DeviceId> = Vec::new();
        match *spec {
            FaultSpec::Device(d) => self.fail_device(
                d,
                FailureReason::Device(d),
                &mut newly_failed,
                &mut newly_dead,
            ),
            FaultSpec::Host(h) => self.fail_host(h, &mut newly_failed, &mut newly_dead),
            FaultSpec::Link(a, b) => self.sever_link(a, b, &mut newly_failed),
        }
        self.heal_dead_hardware(&newly_dead);
        self.purge_completed();
        self.deliver(newly_failed);
        // After healing, so lineage re-submissions re-lower onto healed
        // slices. Everything this fault absorbed recovers as one batch
        // (chain recovery over the lineage DAG).
        self.launch_recoveries();
    }

    /// Launches a chain-recovery task for everything the walk that just
    /// finished absorbed (no-op when recovery is disabled or nothing was
    /// absorbed).
    fn launch_recoveries(&self) {
        if let Some(r) = self.recovery.lock().clone() {
            r.launch_pending();
        }
    }

    /// Elastic slice healing (§4.1 closed-loop): remap every live slice
    /// that touched the newly dead devices onto spare attached capacity.
    /// Islands whose scheduler died are excluded — hardware there may be
    /// alive, but nothing can be granted on them, so healing onto them
    /// would strand the slice. Each heal is stamped onto the trace's
    /// `heals` track (part of the replayable schedule) and fanned out to
    /// live hosts over the coordination substrate.
    fn heal_dead_hardware(&self, dead: &[DeviceId]) {
        if dead.is_empty() {
            return;
        }
        let excluded: Vec<IslandId> = {
            let inner = self.state.inner.lock();
            let mut v: Vec<IslandId> = inner.dead_islands.iter().copied().collect();
            v.sort();
            v
        };
        let events = self.rm.heal(dead, &excluded);
        if events.is_empty() {
            return;
        }
        let now = self.core.handle.now();
        let notices: Vec<(crate::resource::SliceId, String)> = events
            .iter()
            .map(|e| {
                let outcome = match &e.to {
                    Ok(to) => format!("remapped {:?} -> {:?}", e.from, to),
                    Err(err) => format!("unplaceable: {err}"),
                };
                self.core
                    .handle
                    .trace_span("heals", format!("{} {outcome}", e.slice), now, now);
                (e.slice, outcome)
            })
            .collect();
        self.heals.lock().extend(events);
        spawn_heal_delivery(&self.core, &self.state, &self.heal_log, &notices);
    }

    /// Simulates abrupt client failure: every live run of the client
    /// fails (downstream consumers observe typed errors, not stale
    /// data), its objects are garbage-collected, and its device slices
    /// released. Returns the number of objects freed by the GC.
    pub fn fail_client(&self, client: ClientId) -> usize {
        let mut newly_failed: Vec<RunId> = Vec::new();
        // Live runs submitted by the client fail outright.
        let victims: Vec<RunId> = {
            let inner = self.state.inner.lock();
            let mut v: Vec<RunId> = inner
                .runs
                .iter()
                .filter(|(_, fp)| fp.client == client)
                .map(|(r, _)| *r)
                .collect();
            v.sort();
            v
        };
        for run in victims {
            self.fail_run(run, FailureReason::Client(client), &mut newly_failed);
        }
        // Consumers bound to any of the client's objects fail too —
        // their kernels must not run on stale data.
        let doomed_objects = self.core.store.objects_owned_by(client);
        self.cascade_objects(&doomed_objects, &mut newly_failed);
        let freed = self.core.store.gc_client(client);
        self.rm.release_client(client);
        self.purge_completed();
        self.deliver(newly_failed);
        self.launch_recoveries();
        freed
    }

    fn fail_device(
        &self,
        d: DeviceId,
        reason: FailureReason,
        newly_failed: &mut Vec<RunId>,
        newly_dead: &mut Vec<DeviceId>,
    ) {
        {
            let mut inner = self.state.inner.lock();
            if !inner.dead_devices.insert(d) {
                return;
            }
        }
        newly_dead.push(d);
        // New slices avoid the dead device; the device itself stops
        // accepting kernels and its gangs abort at the rendezvous.
        // Healing of live slices happens once per injected fault, after
        // the whole blast radius is known (see `inject`).
        self.rm.detach_device(d);
        let now = self.core.handle.now();
        if let Some(dev) = self.core.devices.get(&d) {
            dev.fail(now, reason.to_string());
        }
        // Data already produced onto the device is lost — unless the
        // recovery manager can absorb the loss (checkpoint restore or
        // lineage recompute); absorbed objects are neither failed nor
        // cascaded, their consumers wait through the recovery window.
        let lost = self.fail_or_recover_device_objects(d, reason);
        // In-flight runs with any shard lowered onto the device fail.
        let victims: Vec<RunId> = {
            let inner = self.state.inner.lock();
            let mut v: Vec<RunId> = inner
                .runs
                .iter()
                .filter(|(_, fp)| fp.devices.contains(&d))
                .map(|(r, _)| *r)
                .collect();
            v.sort();
            v
        };
        for run in victims {
            self.fail_run(run, reason, newly_failed);
        }
        self.cascade_objects(&lost, newly_failed);
    }

    fn fail_host(&self, h: HostId, newly_failed: &mut Vec<RunId>, newly_dead: &mut Vec<DeviceId>) {
        {
            let mut inner = self.state.inner.lock();
            if !inner.dead_hosts.insert(h) {
                return;
            }
        }
        self.core.fabric.fail_host(h);
        // Placement policies must stop targeting the host's DRAM.
        self.core.store.set_host_down(h);
        let reason = FailureReason::Host(h);
        // The host's devices die with it.
        for d in self.core.fabric.topology().devices_of_host(h) {
            self.fail_device(d, reason, newly_failed, newly_dead);
        }
        // So do shards spilled to the host's DRAM (tiered store only;
        // untiered stores never populate the DRAM index).
        let recovery = self.recovery.lock().clone();
        let mut dram_lost: Vec<ObjectId> = Vec::new();
        for id in self.core.store.objects_with_dram_on(h) {
            let absorbed = recovery
                .as_ref()
                .is_some_and(|r| r.absorb_dram_loss(id, h, reason));
            if !absorbed {
                self.core.store.fail_object(id, reason);
                dram_lost.push(id);
            }
        }
        self.cascade_objects(&dram_lost, newly_failed);
        // An island scheduler on the host takes its island down: nothing
        // on the island can be granted anymore.
        let dead_islands: Vec<IslandId> = {
            let mut v: Vec<IslandId> = self
                .core
                .sched_hosts
                .iter()
                .filter(|(_, host)| **host == h)
                .map(|(island, _)| *island)
                .collect();
            v.sort();
            v
        };
        for island in &dead_islands {
            self.state.inner.lock().dead_islands.insert(*island);
        }
        // Runs touching the host (shards, client process, scheduler) or
        // a newly dead island fail.
        let victims: Vec<RunId> = {
            let inner = self.state.inner.lock();
            let mut v: Vec<RunId> = inner
                .runs
                .iter()
                .filter(|(_, fp)| {
                    fp.hosts.contains(&h) || fp.islands.iter().any(|i| dead_islands.contains(i))
                })
                .map(|(r, _)| *r)
                .collect();
            v.sort();
            v
        };
        for run in victims {
            self.fail_run(run, reason, newly_failed);
        }
    }

    fn sever_link(&self, a: HostId, b: HostId, newly_failed: &mut Vec<RunId>) {
        {
            let mut inner = self.state.inner.lock();
            if !inner.severed.insert(pair_key(a, b)) {
                return;
            }
        }
        self.core.fabric.sever_link(a, b);
        // Conservative blast radius: any in-flight run whose control
        // plane spans both endpoints can no longer coordinate.
        let reason = FailureReason::Link(a, b);
        let victims: Vec<RunId> = {
            let inner = self.state.inner.lock();
            let mut v: Vec<RunId> = inner
                .runs
                .iter()
                .filter(|(_, fp)| fp.hosts.contains(&a) && fp.hosts.contains(&b))
                .map(|(r, _)| *r)
                .collect();
            v.sort();
            v
        };
        for run in victims {
            self.fail_run(run, reason, newly_failed);
        }
    }

    /// Fails one run: records it (scheduler and executors skip it from
    /// now on), fails its sinks in the store, force-starts its
    /// never-granted shards, sweeps its pending executor registrations
    /// so every shard driver observes the abort and winds the dataflow
    /// down, and cascades to runs consuming its outputs.
    fn fail_run(&self, run: RunId, reason: FailureReason, newly_failed: &mut Vec<RunId>) {
        let (sinks, islands, failed_ev) = {
            let mut inner = self.state.inner.lock();
            if inner.failed_runs.contains_key(&run) {
                return;
            }
            let Some(fp) = inner.runs.get(&run) else {
                return; // completed or never registered
            };
            let out = (fp.sinks.clone(), fp.islands.clone(), fp.failed.clone());
            inner.failed_runs.insert(run, reason);
            out
        };
        if !self.core.plaque.is_live(run) {
            // Already completed: its data-loss case is handled by the
            // store scan; nothing is in flight to wind down.
            self.state.inner.lock().failed_runs.remove(&run);
            return;
        }
        newly_failed.push(run);
        failed_ev.set();
        // A failed run's in-flight sinks can still be saved: a sink with
        // lineage (or a checkpoint from an earlier completed production)
        // recovers by re-submission instead of failing. Only terminally
        // dead sinks fail and cascade.
        let recovery = self.recovery.lock().clone();
        let mut dead_sinks: Vec<ObjectId> = Vec::new();
        for sink in &sinks {
            let absorbed = recovery
                .as_ref()
                .is_some_and(|r| r.absorb_run_loss(*sink, reason));
            if !absorbed {
                self.core.store.fail_object(*sink, reason);
                dead_sinks.push(*sink);
            }
        }
        // Abort the run's gang collectives: members whose grants are
        // already lost (dead host, severed link) will never arrive, so
        // arrived partners must not wait for them. Gang owner = run + 1
        // (0 is the rendezvous's "unknown" sentinel).
        let topo = self.core.fabric.topology();
        for island in &islands {
            if let Some(d) = topo.devices_of_island(*island).next() {
                if let Some(dev) = self.core.devices.get(&d) {
                    dev.rendezvous().mark_owner_failed(run.0 + 1);
                }
            }
        }
        // Shards that never got (and now never will get) a grant must
        // still start so they can halt; their executor registrations are
        // then swept so the shard drivers observe the abort.
        self.core.plaque.force_start_run(run);
        let mut hosts: Vec<HostId> = self.core.executors.keys().copied().collect();
        hosts.sort();
        for host in hosts {
            self.core.executors[&host].fail_run(run);
        }
        self.cascade_objects(&dead_sinks, newly_failed);
    }

    /// The device leg of the blast-radius walk: each object with HBM
    /// shards on dead device `d` is absorbed into recovery when
    /// possible, failed otherwise. Returns the *failed* (non-absorbed)
    /// ids, ascending — the set the upstream cascade walks.
    fn fail_or_recover_device_objects(&self, d: DeviceId, reason: FailureReason) -> Vec<ObjectId> {
        let recovery = self.recovery.lock().clone();
        let Some(recovery) = recovery else {
            return self.core.store.fail_objects_on_device(d, reason);
        };
        let mut lost = Vec::new();
        for id in self.core.store.objects_on_device(d) {
            if !recovery.absorb_device_loss(id, d, reason) {
                self.core.store.fail_object(id, reason);
                lost.push(id);
            }
        }
        lost
    }

    /// The deferred half of the blast-radius walk, used by abandoned
    /// recoveries: cascade `objects`' failure to bound consumers and fan
    /// the resulting run failures out to live hosts — exactly what
    /// `inject` would have done synchronously had recovery not been
    /// attempted.
    pub(crate) fn cascade_failure(&self, objects: &[ObjectId]) {
        let mut newly_failed: Vec<RunId> = Vec::new();
        self.cascade_objects(objects, &mut newly_failed);
        self.purge_completed();
        self.deliver(newly_failed);
        // The cascade's fail_run walk may itself absorb in-flight sinks.
        self.launch_recoveries();
    }

    /// Fails every run bound (as a consumer) to any of `objects`.
    fn cascade_objects(&self, objects: &[ObjectId], newly_failed: &mut Vec<RunId>) {
        if objects.is_empty() {
            return;
        }
        let mut consumers: Vec<(RunId, ObjectId)> = self
            .core
            .bindings
            .lock()
            .iter()
            .filter(|(_, b)| objects.contains(&b.objref.id()))
            .map(|((run, _), b)| (*run, b.objref.id()))
            .collect();
        consumers.sort();
        consumers.dedup();
        for (run, object) in consumers {
            self.fail_run(run, FailureReason::Upstream(object), newly_failed);
        }
    }

    /// Drops footprints of completed runs so the registry stays bounded
    /// on long-lived simulations.
    fn purge_completed(&self) {
        let plaque = self.core.plaque.clone();
        let inner = &mut *self.state.inner.lock();
        let failed_runs = &inner.failed_runs;
        inner
            .runs
            .retain(|run, _| plaque.is_live(*run) || failed_runs.contains_key(run));
    }

    /// Fans newly-failed runs out to every live host over the
    /// coordination substrate (fire-and-forget; §4.3).
    fn deliver(&self, mut newly_failed: Vec<RunId>) {
        if newly_failed.is_empty() {
            return;
        }
        newly_failed.sort();
        newly_failed.dedup();
        let notices: Vec<(RunId, String)> = newly_failed
            .iter()
            .map(|r| {
                let reason = self
                    .state
                    .run_failure(*r)
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "unknown".into());
                (*r, reason)
            })
            .collect();
        spawn_error_delivery(&self.core, &self.state, &self.errors, &notices);
    }
}
