//! Centralized per-island gang scheduling (§4.4).
//!
//! One scheduler task runs per island, consistently ordering *all*
//! computations enqueued on the island's devices across every concurrent
//! client. Because every device executor receives its grants over a FIFO
//! channel from this single scheduler, kernels — and crucially their gang
//! collectives — are enqueued in the same relative order on every device,
//! which is exactly the property that prevents the deadlock demonstrated
//! in `pathways-device`'s tests.
//!
//! Two policies are provided: FIFO (the paper's current implementation:
//! "our current implementation simply enqueues work in FIFO order") and
//! stride-based proportional share (the policy behind Figure 9's 1:2:4:8
//! interleaving).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use pathways_device::GangTag;
use pathways_net::{ClientId, CollectiveKind, DeviceId, HostId, IslandId, Router};
use pathways_plaque::RunId;
use pathways_sim::{IdleToken, SimDuration, SimHandle};

use crate::program::CompId;

/// Scheduling policy of an island scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Grant programs in arrival order.
    Fifo,
    /// Stride scheduling: each client receives device time proportional
    /// to its weight when the island is contended.
    ProportionalShare(BTreeMap<ClientId, u32>),
    /// Strict priority (higher number wins; ties in arrival order) —
    /// one of the §6.2 multi-tenancy policies the centralized scheduler
    /// makes possible. Low-priority clients can starve under sustained
    /// high-priority load; that is the policy's contract.
    Priority(BTreeMap<ClientId, u32>),
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy::Fifo
    }
}

/// Per-computation description inside a [`SubmitMsg`].
#[derive(Debug, Clone)]
pub struct CompSubmit {
    /// Which computation.
    pub comp: CompId,
    /// Total shards (gang size).
    pub participants: u32,
    /// Collective kind, payload and precomputed wire duration.
    pub collective: Option<(CollectiveKind, u64, SimDuration)>,
    /// Per-shard compute time.
    pub compute: SimDuration,
    /// Per-shard output bytes (HBM reservation).
    pub output_bytes: u64,
    /// Per-shard input staging bytes.
    pub input_bytes: u64,
    /// Shards grouped by host: `(host, [(shard, device)])`.
    pub by_host: Vec<(HostId, Vec<(u32, DeviceId)>)>,
}

/// Program submission: one DCN message from client to scheduler.
#[derive(Debug, Clone)]
pub struct SubmitMsg {
    /// Submitting client.
    pub client: ClientId,
    /// Label used in device traces.
    pub label: String,
    /// The plaque run executing this program.
    pub run: RunId,
    /// Estimated total device time, summed over shards (used both for
    /// proportional-share accounting and for grant pacing).
    pub est_cost: SimDuration,
    /// Computations in topological order.
    pub comps: Vec<CompSubmit>,
}

/// One computation grant, delivered to a host executor.
#[derive(Debug, Clone)]
pub struct GrantMsg {
    /// Owning client (for object ownership labels).
    pub client: ClientId,
    /// Trace label.
    pub label: String,
    /// The plaque run.
    pub run: RunId,
    /// Which computation.
    pub comp: CompId,
    /// Scheduler-assigned gang tag (island-unique).
    pub gang_tag: GangTag,
    /// Gang size.
    pub participants: u32,
    /// Collective kind + precomputed duration, if any.
    pub collective: Option<(CollectiveKind, SimDuration)>,
    /// Per-shard compute time.
    pub compute: SimDuration,
    /// Per-shard output bytes.
    pub output_bytes: u64,
    /// Per-shard input staging bytes.
    pub input_bytes: u64,
    /// The receiving host's local shards: `(shard, device)`.
    pub local_shards: Vec<(u32, DeviceId)>,
}

/// Control-plane messages (client → scheduler → executors).
#[derive(Debug)]
pub enum CtrlMsg {
    /// Program submission (client → scheduler).
    Submit(SubmitMsg),
    /// Batched grants for one program on one host (scheduler → executor).
    /// One message carries every computation of the program that has
    /// shards on the destination host — the single-message subgraph
    /// dispatch of §4.5.
    Grants(Vec<GrantMsg>),
}

/// Wire-size model for control messages.
pub fn ctrl_msg_bytes(msg: &CtrlMsg) -> u64 {
    match msg {
        CtrlMsg::Submit(s) => 64 + 48 * s.comps.len() as u64,
        CtrlMsg::Grants(g) => {
            32 + g
                .iter()
                .map(|m| 48 + 12 * m.local_shards.len() as u64)
                .sum::<u64>()
        }
    }
}

struct ClientQueue {
    pending: VecDeque<SubmitMsg>,
    /// Stride-scheduling virtual time.
    pass: u64,
}

/// Shared state of one island scheduler (inspectable by tests).
pub struct SchedulerState {
    queues: BTreeMap<ClientId, ClientQueue>,
    next_tag: u64,
    granted_programs: u64,
}

impl fmt::Debug for SchedulerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedulerState")
            .field("clients", &self.queues.len())
            .field("granted_programs", &self.granted_programs)
            .finish()
    }
}

impl SchedulerState {
    fn new(island: IslandId) -> Self {
        SchedulerState {
            queues: BTreeMap::new(),
            // Tag-space partitioned by island so tags are globally unique
            // even though rendezvous is per island.
            next_tag: (island.0 as u64) << 48,
            granted_programs: 0,
        }
    }

    fn push(&mut self, msg: SubmitMsg) {
        self.queues
            .entry(msg.client)
            .or_insert_with(|| ClientQueue {
                pending: VecDeque::new(),
                pass: 0,
            })
            .pending
            .push_back(msg);
    }

    /// Picks the next program according to `policy`.
    fn pop(&mut self, policy: &SchedPolicy) -> Option<SubmitMsg> {
        match policy {
            SchedPolicy::Fifo => {
                // Arrival order: the earliest submission among all
                // clients. Each queue is FIFO; choose the queue whose
                // head arrived first. We approximate arrival order with
                // run id, which is allocated at submission time.
                let best = self
                    .queues
                    .iter()
                    .filter(|(_, q)| !q.pending.is_empty())
                    .min_by_key(|(_, q)| q.pending.front().map(|m| m.run))?
                    .0;
                let best = *best;
                self.queues
                    .get_mut(&best)
                    .and_then(|q| q.pending.pop_front())
            }
            SchedPolicy::ProportionalShare(weights) => {
                let best = self
                    .queues
                    .iter()
                    .filter(|(_, q)| !q.pending.is_empty())
                    .min_by_key(|(c, q)| (q.pass, **c))?
                    .0;
                let best = *best;
                let q = self.queues.get_mut(&best).expect("picked above");
                let msg = q.pending.pop_front()?;
                let weight = weights.get(&best).copied().unwrap_or(1).max(1) as u64;
                // Advance virtual time by cost / weight.
                let cost = msg.est_cost.as_nanos().max(1);
                q.pass += cost / weight;
                Some(msg)
            }
            SchedPolicy::Priority(prio) => {
                let best = self
                    .queues
                    .iter()
                    .filter(|(_, q)| !q.pending.is_empty())
                    .max_by_key(|(c, q)| {
                        let p = prio.get(c).copied().unwrap_or(0);
                        // Higher priority first; within a priority,
                        // earliest submission (lowest run id) first.
                        (p, std::cmp::Reverse(q.pending.front().map(|m| m.run)))
                    })?
                    .0;
                let best = *best;
                self.queues
                    .get_mut(&best)
                    .and_then(|q| q.pending.pop_front())
            }
        }
    }

    fn alloc_tag(&mut self) -> GangTag {
        let t = GangTag(self.next_tag);
        self.next_tag += 1;
        t
    }

    /// Programs granted so far (for tests/metrics).
    pub fn granted_programs(&self) -> u64 {
        self.granted_programs
    }
}

/// Handle to a spawned island scheduler.
#[derive(Clone)]
pub struct SchedulerHandle {
    /// Host the scheduler runs on.
    pub host: HostId,
    state: Rc<RefCell<SchedulerState>>,
}

impl fmt::Debug for SchedulerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedulerHandle")
            .field("host", &self.host)
            .finish()
    }
}

impl SchedulerHandle {
    /// Programs granted so far.
    pub fn granted_programs(&self) -> u64 {
        self.state.borrow().granted_programs()
    }
}

/// Spawns the scheduler task for `island` on `host`.
///
/// `decision_cost` models the scheduler's per-program policy work; grants
/// for a program are emitted as one batched message per participating
/// host. Submissions arrive on `inbox_router`; grants leave on
/// `grant_router` (where the executors are registered). Both share the
/// same physical NIC through the fabric.
pub fn spawn_scheduler(
    handle: &SimHandle,
    inbox_router: Router<CtrlMsg>,
    grant_router: Router<CtrlMsg>,
    island: IslandId,
    host: HostId,
    island_devices: u32,
    policy: SchedPolicy,
    decision_cost: SimDuration,
    grant_horizon: SimDuration,
    batch_grants: bool,
) -> SchedulerHandle {
    let state = Rc::new(RefCell::new(SchedulerState::new(island)));
    let state_task = Rc::clone(&state);
    let mut inbox = inbox_router.register(host);
    let h = handle.clone();
    let token = IdleToken::new();
    let token_task = token.clone();
    handle.spawn_service(format!("scheduler-{island}"), &token, async move {
        // Estimated instant until which already-granted work occupies
        // the island. Grants are paced so at most `grant_horizon` of
        // estimated work is outstanding; the backlog beyond the horizon
        // stays queued here, where the policy chooses the order — this
        // is the "allocating accelerators at a time-scale of
        // milliseconds" behaviour of §4.4.
        let mut granted_until = h.now();
        loop {
            token_task.set_idle();
            let Some(env) = inbox.recv().await else { break };
            token_task.set_busy();
            match env.msg {
                CtrlMsg::Submit(submit) => {
                    state_task.borrow_mut().push(submit);
                }
                CtrlMsg::Grants(_) => panic!("scheduler received a grant"),
            }
            // Drain everything grantable right now. Messages that arrive
            // while we sleep for decision_cost queue behind us (FIFO
            // inbox), preserving determinism.
            loop {
                // Pace: wait until estimated outstanding work is inside
                // the horizon, collecting any submissions that arrive in
                // the meantime so the policy can reorder them.
                loop {
                    let now = h.now();
                    if granted_until <= now + grant_horizon {
                        break;
                    }
                    h.sleep(
                        granted_until
                            .duration_since(now)
                            .saturating_sub(grant_horizon),
                    )
                    .await;
                    while let Ok(env) = inbox.try_recv() {
                        match env.msg {
                            CtrlMsg::Submit(s) => state_task.borrow_mut().push(s),
                            CtrlMsg::Grants(_) => panic!("scheduler received a grant"),
                        }
                    }
                }
                let next = state_task.borrow_mut().pop(&policy);
                let Some(submit) = next else { break };
                if !decision_cost.is_zero() {
                    h.sleep(decision_cost).await;
                }
                // Also drain any submissions that arrived during the
                // decision sleep so proportional share sees them.
                while let Ok(env) = inbox.try_recv() {
                    match env.msg {
                        CtrlMsg::Submit(s) => state_task.borrow_mut().push(s),
                        CtrlMsg::Grants(_) => panic!("scheduler received a grant"),
                    }
                }
                // Island occupancy estimate: device-time divided by the
                // island's device count.
                let occupancy = SimDuration::from_nanos(
                    submit.est_cost.as_nanos() / island_devices.max(1) as u64,
                );
                granted_until = granted_until.max(h.now()) + occupancy;
                // Build one grant batch per participating host, with the
                // program's computations in topological order.
                let mut per_host: BTreeMap<HostId, Vec<GrantMsg>> = BTreeMap::new();
                {
                    let mut st = state_task.borrow_mut();
                    st.granted_programs += 1;
                    for comp in &submit.comps {
                        let tag = st.alloc_tag();
                        for (host, shards) in &comp.by_host {
                            per_host.entry(*host).or_default().push(GrantMsg {
                                client: submit.client,
                                label: submit.label.clone(),
                                run: submit.run,
                                comp: comp.comp,
                                gang_tag: tag,
                                participants: comp.participants,
                                collective: comp.collective.map(|(k, _, d)| (k, d)),
                                compute: comp.compute,
                                output_bytes: comp.output_bytes,
                                input_bytes: comp.input_bytes,
                                local_shards: shards.clone(),
                            });
                        }
                    }
                }
                for (dst, grants) in per_host {
                    if batch_grants {
                        let msg = CtrlMsg::Grants(grants);
                        let bytes = ctrl_msg_bytes(&msg);
                        grant_router.send(host, dst, msg, bytes);
                    } else {
                        // Ablation: one message per computation.
                        for g in grants {
                            let msg = CtrlMsg::Grants(vec![g]);
                            let bytes = ctrl_msg_bytes(&msg);
                            grant_router.send(host, dst, msg, bytes);
                        }
                    }
                }
            }
        }
    });
    SchedulerHandle { host, state }
}

/// Maps each island to the host its scheduler runs on (the island's
/// first host).
pub fn scheduler_hosts(topo: &pathways_net::Topology) -> HashMap<IslandId, HostId> {
    topo.islands()
        .map(|i| (i, topo.hosts_of_island(i)[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(client: u32, run: u64, cost_us: u64) -> SubmitMsg {
        SubmitMsg {
            client: ClientId(client),
            label: format!("c{client}"),
            run: RunId(run),
            est_cost: SimDuration::from_micros(cost_us),
            comps: vec![],
        }
    }

    #[test]
    fn fifo_pops_in_arrival_order() {
        let mut st = SchedulerState::new(IslandId(0));
        st.push(submit(1, 10, 5));
        st.push(submit(0, 11, 5));
        st.push(submit(1, 12, 5));
        let policy = SchedPolicy::Fifo;
        assert_eq!(st.pop(&policy).unwrap().run, RunId(10));
        assert_eq!(st.pop(&policy).unwrap().run, RunId(11));
        assert_eq!(st.pop(&policy).unwrap().run, RunId(12));
        assert!(st.pop(&policy).is_none());
    }

    #[test]
    fn proportional_share_matches_weights() {
        // Clients 0 and 1 with weights 1 and 3, equal-cost programs:
        // out of every 4 grants, client 1 should get 3.
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 3)].into_iter().collect();
        let policy = SchedPolicy::ProportionalShare(weights);
        let mut st = SchedulerState::new(IslandId(0));
        for i in 0..40 {
            st.push(submit(0, i, 10));
            st.push(submit(1, 100 + i, 10));
        }
        let mut counts = [0u32; 2];
        for _ in 0..40 {
            let m = st.pop(&policy).unwrap();
            counts[m.client.0 as usize] += 1;
        }
        assert_eq!(counts[0] + counts[1], 40);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.5..=3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn proportional_share_accounts_for_cost() {
        // Client 0 submits programs 3x as expensive; with equal weights
        // it should be granted ~1/3 as many programs.
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 1)].into_iter().collect();
        let policy = SchedPolicy::ProportionalShare(weights);
        let mut st = SchedulerState::new(IslandId(0));
        for i in 0..60 {
            st.push(submit(0, i, 30));
            st.push(submit(1, 100 + i, 10));
        }
        let mut counts = [0u32; 2];
        for _ in 0..60 {
            let m = st.pop(&policy).unwrap();
            counts[m.client.0 as usize] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..=4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn priority_policy_prefers_high_priority_clients() {
        let prio: BTreeMap<ClientId, u32> =
            [(ClientId(0), 0), (ClientId(1), 10)].into_iter().collect();
        let policy = SchedPolicy::Priority(prio);
        let mut st = SchedulerState::new(IslandId(0));
        st.push(submit(0, 1, 10));
        st.push(submit(0, 2, 10));
        st.push(submit(1, 3, 10));
        st.push(submit(1, 4, 10));
        // All of client 1's work drains before any of client 0's.
        assert_eq!(st.pop(&policy).unwrap().run, RunId(3));
        assert_eq!(st.pop(&policy).unwrap().run, RunId(4));
        assert_eq!(st.pop(&policy).unwrap().run, RunId(1));
        assert_eq!(st.pop(&policy).unwrap().run, RunId(2));
    }

    #[test]
    fn priority_ties_break_by_arrival() {
        let prio: BTreeMap<ClientId, u32> =
            [(ClientId(0), 5), (ClientId(1), 5)].into_iter().collect();
        let policy = SchedPolicy::Priority(prio);
        let mut st = SchedulerState::new(IslandId(0));
        st.push(submit(1, 1, 10));
        st.push(submit(0, 2, 10));
        assert_eq!(st.pop(&policy).unwrap().run, RunId(1));
        assert_eq!(st.pop(&policy).unwrap().run, RunId(2));
    }

    #[test]
    fn tags_are_unique_and_island_partitioned() {
        let mut a = SchedulerState::new(IslandId(0));
        let mut b = SchedulerState::new(IslandId(1));
        let ta1 = a.alloc_tag();
        let ta2 = a.alloc_tag();
        let tb1 = b.alloc_tag();
        assert_ne!(ta1, ta2);
        assert_ne!(ta1, tb1);
        assert_ne!(ta2, tb1);
    }

    #[test]
    fn idle_client_does_not_starve_later() {
        // Stride scheduling: a client that was idle does not get an
        // unbounded backlog advantage because pass only advances when
        // granted; but it does get the next grant when it arrives with
        // the lowest pass.
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 1)].into_iter().collect();
        let policy = SchedPolicy::ProportionalShare(weights);
        let mut st = SchedulerState::new(IslandId(0));
        for i in 0..5 {
            st.push(submit(0, i, 10));
        }
        for _ in 0..5 {
            st.pop(&policy);
        }
        st.push(submit(1, 100, 10));
        st.push(submit(0, 6, 10));
        // Client 1 has pass 0 < client 0's accumulated pass.
        assert_eq!(st.pop(&policy).unwrap().client, ClientId(1));
    }
}
