//! Centralized per-island gang scheduling (§4.4).
//!
//! One scheduler task runs per island, consistently ordering *all*
//! computations enqueued on the island's devices across every concurrent
//! client. Because every device executor receives its grants over a FIFO
//! channel from this single scheduler, kernels — and crucially their gang
//! collectives — are enqueued in the same relative order on every device,
//! which is exactly the property that prevents the deadlock demonstrated
//! in `pathways-device`'s tests.
//!
//! The *decision* of which client's program to grant next is delegated
//! to a pluggable [`SchedPolicyImpl`] (see
//! [`policy`]): FIFO (the paper's current implementation: "our current
//! implementation simply enqueues work in FIFO order"), stride-based
//! proportional share (the policy behind Figure 9's 1:2:4:8
//! interleaving), strict priority, and gang-aware weighted-fair
//! queueing. The [`SchedPolicy`] enum is a thin constructor facade kept
//! for configuration ergonomics and backward compatibility.

pub mod policy;

use pathways_sim::hash::FxHashMap;
use pathways_sim::Lock;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use pathways_device::GangTag;
use pathways_net::{ClientId, CollectiveKind, DeviceId, HostId, IslandId, Router};
use pathways_plaque::RunId;
use pathways_sim::{IdleToken, SimDuration, SimHandle, SimTime};

use crate::fault::FailureState;
use crate::program::CompId;
use policy::{FifoPolicy, PriorityPolicy, QueuedProgram, SchedPolicyImpl, StridePolicy, WfqPolicy};

/// Scheduling policy of an island scheduler: a constructor facade over
/// the [`policy::SchedPolicyImpl`] engine.
///
/// Each island scheduler builds its *own* policy instance via
/// [`SchedPolicy::build`], so per-island accounting state (stride
/// passes, deficit counters) is never shared across islands.
#[derive(Clone, Default)]
pub enum SchedPolicy {
    /// Grant programs in arrival order ([`policy::FifoPolicy`]).
    #[default]
    Fifo,
    /// Stride scheduling: each client receives device time proportional
    /// to its weight when the island is contended
    /// ([`policy::StridePolicy`]).
    ProportionalShare(BTreeMap<ClientId, u32>),
    /// Strict priority (higher number wins; ties in arrival order) —
    /// one of the §6.2 multi-tenancy policies the centralized scheduler
    /// makes possible. Low-priority clients can starve under sustained
    /// high-priority load; that is the policy's contract
    /// ([`policy::PriorityPolicy`]).
    Priority(BTreeMap<ClientId, u32>),
    /// Gang-aware weighted-fair queueing with per-client deficit
    /// counters ([`policy::WfqPolicy`]): fairness in device-seconds
    /// even when tenants submit gangs of very different sizes.
    WeightedFair {
        /// Per-client weights (absent clients default to 1).
        weights: BTreeMap<ClientId, u32>,
        /// Deficit credited per round-robin turn per unit weight.
        quantum: SimDuration,
    },
    /// An out-of-tree policy: `factory` is invoked once per island.
    /// This is the drop-in extension point — a new policy needs no
    /// change to this enum or the scheduler loop.
    Custom {
        /// Name shown in `Debug`/comparison (two customs with the same
        /// name compare equal).
        name: &'static str,
        /// Builds a fresh policy instance for one island scheduler.
        factory: Arc<dyn Fn() -> Box<dyn SchedPolicyImpl> + Send + Sync>,
    },
}

impl SchedPolicy {
    /// Weighted-fair queueing with the default quantum
    /// ([`policy::WfqPolicy::DEFAULT_QUANTUM`]).
    pub fn weighted_fair(weights: BTreeMap<ClientId, u32>) -> Self {
        SchedPolicy::WeightedFair {
            weights,
            quantum: WfqPolicy::DEFAULT_QUANTUM,
        }
    }

    /// Wraps an out-of-tree policy constructor.
    pub fn custom(
        name: &'static str,
        factory: impl Fn() -> Box<dyn SchedPolicyImpl> + Send + Sync + 'static,
    ) -> Self {
        SchedPolicy::Custom {
            name,
            factory: Arc::new(factory),
        }
    }

    /// Instantiates the policy engine for one island scheduler.
    pub fn build(&self) -> Box<dyn SchedPolicyImpl> {
        match self {
            SchedPolicy::Fifo => Box::new(FifoPolicy),
            SchedPolicy::ProportionalShare(w) => Box::new(StridePolicy::new(w.clone())),
            SchedPolicy::Priority(p) => Box::new(PriorityPolicy::new(p.clone())),
            SchedPolicy::WeightedFair { weights, quantum } => {
                Box::new(WfqPolicy::new(weights.clone(), *quantum))
            }
            SchedPolicy::Custom { factory, .. } => factory(),
        }
    }

    /// The name of the policy this facade builds.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::ProportionalShare(_) => "stride",
            SchedPolicy::Priority(_) => "priority",
            SchedPolicy::WeightedFair { .. } => "wfq",
            SchedPolicy::Custom { name, .. } => name,
        }
    }
}

impl fmt::Debug for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedPolicy::Fifo => f.write_str("Fifo"),
            SchedPolicy::ProportionalShare(w) => {
                f.debug_tuple("ProportionalShare").field(w).finish()
            }
            SchedPolicy::Priority(p) => f.debug_tuple("Priority").field(p).finish(),
            SchedPolicy::WeightedFair { weights, quantum } => f
                .debug_struct("WeightedFair")
                .field("weights", weights)
                .field("quantum", quantum)
                .finish(),
            SchedPolicy::Custom { name, .. } => f.debug_tuple("Custom").field(name).finish(),
        }
    }
}

impl PartialEq for SchedPolicy {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SchedPolicy::Fifo, SchedPolicy::Fifo) => true,
            (SchedPolicy::ProportionalShare(a), SchedPolicy::ProportionalShare(b)) => a == b,
            (SchedPolicy::Priority(a), SchedPolicy::Priority(b)) => a == b,
            (
                SchedPolicy::WeightedFair {
                    weights: wa,
                    quantum: qa,
                },
                SchedPolicy::WeightedFair {
                    weights: wb,
                    quantum: qb,
                },
            ) => wa == wb && qa == qb,
            // Custom policies are opaque; equality is by declared name.
            (SchedPolicy::Custom { name: a, .. }, SchedPolicy::Custom { name: b, .. }) => a == b,
            _ => false,
        }
    }
}

impl Eq for SchedPolicy {}

/// Per-computation description inside a [`SubmitMsg`].
#[derive(Debug, Clone)]
pub struct CompSubmit {
    /// Which computation.
    pub comp: CompId,
    /// True for sink computations: their output object is declared (and
    /// refcounted) by the client at submit time, so executors must not
    /// re-create it — if the client already dropped its `ObjectRef`, the
    /// output is discarded.
    pub sink: bool,
    /// Total shards (gang size).
    pub participants: u32,
    /// Collective kind, payload and precomputed wire duration.
    pub collective: Option<(CollectiveKind, u64, SimDuration)>,
    /// Per-shard compute time.
    pub compute: SimDuration,
    /// Per-shard output bytes (HBM reservation).
    pub output_bytes: u64,
    /// Per-shard input staging bytes.
    pub input_bytes: u64,
    /// Shards grouped by host: `(host, [(shard, device)])`.
    pub by_host: Vec<(HostId, Vec<(u32, DeviceId)>)>,
}

/// Program submission: one DCN message from client to scheduler.
#[derive(Debug, Clone)]
pub struct SubmitMsg {
    /// Submitting client.
    pub client: ClientId,
    /// Label used in device traces.
    pub label: String,
    /// The plaque run executing this program.
    pub run: RunId,
    /// Estimated total device time, summed over shards (used both for
    /// proportional-share accounting and for grant pacing).
    pub est_cost: SimDuration,
    /// Computations in topological order.
    pub comps: Vec<CompSubmit>,
}

/// One computation grant, delivered to a host executor.
#[derive(Debug, Clone)]
pub struct GrantMsg {
    /// Owning client (for object ownership labels).
    pub client: ClientId,
    /// Trace label.
    pub label: String,
    /// The plaque run.
    pub run: RunId,
    /// Which computation.
    pub comp: CompId,
    /// Sink flag (see [`CompSubmit::sink`]).
    pub sink: bool,
    /// Scheduler-assigned gang tag (island-unique).
    pub gang_tag: GangTag,
    /// Gang size.
    pub participants: u32,
    /// Collective kind + precomputed duration, if any.
    pub collective: Option<(CollectiveKind, SimDuration)>,
    /// Full device membership of the gang, in shard order. Carried so
    /// the collective rendezvous can abort gangs that include a dead
    /// device instead of blocking forever (empty for collective-free
    /// computations).
    pub gang_devices: Vec<DeviceId>,
    /// Per-shard compute time.
    pub compute: SimDuration,
    /// Per-shard output bytes.
    pub output_bytes: u64,
    /// Per-shard input staging bytes.
    pub input_bytes: u64,
    /// The receiving host's local shards: `(shard, device)`.
    pub local_shards: Vec<(u32, DeviceId)>,
}

/// Control-plane messages (client → scheduler → executors).
#[derive(Debug)]
pub enum CtrlMsg {
    /// Program submission (client → scheduler).
    Submit(SubmitMsg),
    /// Batched grants for one program on one host (scheduler → executor).
    /// One message carries every computation of the program that has
    /// shards on the destination host — the single-message subgraph
    /// dispatch of §4.5.
    Grants(Vec<GrantMsg>),
}

/// Wire-size model for control messages.
pub fn ctrl_msg_bytes(msg: &CtrlMsg) -> u64 {
    match msg {
        CtrlMsg::Submit(s) => 64 + 48 * s.comps.len() as u64,
        CtrlMsg::Grants(g) => {
            32 + g
                .iter()
                .map(|m| 48 + 12 * m.local_shards.len() as u64)
                .sum::<u64>()
        }
    }
}

/// Shared state of one island scheduler (inspectable by tests).
///
/// Owns one FIFO backlog per client — per-client program order is
/// *never* reordered, only the interleaving across clients is policy
/// territory — plus the policy engine instance making that choice.
pub struct SchedulerState {
    queues: BTreeMap<ClientId, VecDeque<SubmitMsg>>,
    policy: Box<dyn SchedPolicyImpl>,
    next_tag: u64,
    granted_programs: u64,
    /// When each run's submission reached this scheduler (virtual time).
    /// Lets tests and benches observe parallel asynchronous dispatch:
    /// with chained submissions, run N+1 arrives here while run N's
    /// kernels are still executing. Bounded to the most recent
    /// [`ARRIVAL_HISTORY`] runs so long-lived schedulers don't grow
    /// without bound.
    arrivals: FxHashMap<RunId, SimTime>,
    /// Insertion order of `arrivals`, for eviction.
    arrival_order: VecDeque<RunId>,
}

/// How many recent run arrivals each scheduler remembers.
pub const ARRIVAL_HISTORY: usize = 1024;

impl fmt::Debug for SchedulerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedulerState")
            .field("policy", &self.policy.name())
            .field("clients", &self.queues.len())
            .field("granted_programs", &self.granted_programs)
            .finish()
    }
}

impl SchedulerState {
    fn new(island: IslandId, policy: Box<dyn SchedPolicyImpl>) -> Self {
        SchedulerState {
            queues: BTreeMap::new(),
            policy,
            // Tag-space partitioned by island so tags are globally unique
            // even though rendezvous is per island.
            next_tag: (island.0 as u64) << 48,
            granted_programs: 0,
            arrivals: FxHashMap::default(),
            arrival_order: VecDeque::new(),
        }
    }

    fn push(&mut self, msg: SubmitMsg, now: SimTime) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.arrivals.entry(msg.run) {
            e.insert(now);
            self.arrival_order.push_back(msg.run);
            if self.arrival_order.len() > ARRIVAL_HISTORY {
                if let Some(old) = self.arrival_order.pop_front() {
                    self.arrivals.remove(&old);
                }
            }
        }
        self.policy.on_arrival(&msg);
        self.queues.entry(msg.client).or_default().push_back(msg);
    }

    /// Grants the next program: asks the policy to choose among the
    /// backlogged clients' queue heads, then pops that client's head.
    fn pop(&mut self) -> Option<SubmitMsg> {
        let heads: Vec<QueuedProgram<'_>> = self
            .queues
            .iter()
            .filter_map(|(client, q)| {
                q.front().map(|head| QueuedProgram {
                    client: *client,
                    head,
                    backlog: q.len(),
                })
            })
            .collect();
        if heads.is_empty() {
            return None;
        }
        let picked = self.policy.pick_next(&heads)?;
        let q = self
            .queues
            .get_mut(&picked)
            .unwrap_or_else(|| panic!("policy picked unknown client {picked:?}"));
        let msg = q
            .pop_front()
            .unwrap_or_else(|| panic!("policy picked client {picked:?} with empty queue"));
        let now_empty = q.is_empty();
        if now_empty {
            // Empty queues are dropped so the policy only ever sees
            // backlogged clients; per-client policy state (passes,
            // deficits) lives in the policy itself.
            self.queues.remove(&picked);
        }
        self.policy.on_grant(&msg, now_empty);
        Some(msg)
    }

    /// The active policy's name (for tests and debug output).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    fn alloc_tag(&mut self) -> GangTag {
        let t = GangTag(self.next_tag);
        self.next_tag += 1;
        t
    }

    /// Programs granted so far (for tests/metrics).
    pub fn granted_programs(&self) -> u64 {
        self.granted_programs
    }

    /// When `run`'s submission arrived at this scheduler, if it has.
    pub fn arrival_time(&self, run: RunId) -> Option<SimTime> {
        self.arrivals.get(&run).copied()
    }
}

/// Handle to a spawned island scheduler.
#[derive(Clone)]
pub struct SchedulerHandle {
    /// Host the scheduler runs on.
    pub host: HostId,
    state: Arc<Lock<SchedulerState>>,
}

impl fmt::Debug for SchedulerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedulerHandle")
            .field("host", &self.host)
            .finish()
    }
}

impl SchedulerHandle {
    /// Programs granted so far.
    pub fn granted_programs(&self) -> u64 {
        self.state.lock().granted_programs()
    }

    /// When `run`'s submission arrived at this island's scheduler.
    pub fn arrival_time(&self, run: RunId) -> Option<SimTime> {
        self.state.lock().arrival_time(run)
    }

    /// Name of the policy engine driving this island.
    pub fn policy_name(&self) -> &'static str {
        self.state.lock().policy_name()
    }
}

/// Spawns the scheduler task for `island` on `host`.
///
/// `policy` is instantiated via [`SchedPolicy::build`], so every island
/// gets private policy state. `decision_cost` models the scheduler's
/// per-program policy work; grants for a program are emitted as one
/// batched message per participating host. Submissions arrive on
/// `inbox_router`; grants leave on `grant_router` (where the executors
/// are registered). Both share the same physical NIC through the fabric.
#[allow(clippy::too_many_arguments)]
pub fn spawn_scheduler(
    handle: &SimHandle,
    inbox_router: Router<CtrlMsg>,
    grant_router: Router<CtrlMsg>,
    island: IslandId,
    host: HostId,
    island_devices: u32,
    policy: &SchedPolicy,
    decision_cost: SimDuration,
    grant_horizon: SimDuration,
    batch_grants: bool,
    failures: FailureState,
) -> SchedulerHandle {
    let state = Arc::new(Lock::named(
        "core.sched.state",
        SchedulerState::new(island, policy.build()),
    ));
    let state_task = Arc::clone(&state);
    let mut inbox = inbox_router.register(host);
    let h = handle.clone();
    let token = IdleToken::new();
    let token_task = token.clone();
    handle.spawn_service(format!("scheduler-{island}"), &token, async move {
        // Estimated instant until which already-granted work occupies
        // the island. Grants are paced so at most `grant_horizon` of
        // estimated work is outstanding; the backlog beyond the horizon
        // stays queued here, where the policy chooses the order — this
        // is the "allocating accelerators at a time-scale of
        // milliseconds" behaviour of §4.4.
        let mut granted_until = h.now();
        loop {
            token_task.set_idle();
            let Some(env) = inbox.recv().await else { break };
            token_task.set_busy();
            match env.msg {
                CtrlMsg::Submit(submit) => {
                    state_task.lock().push(submit, h.now());
                }
                CtrlMsg::Grants(_) => panic!("scheduler received a grant"),
            }
            // Drain everything grantable right now. Messages that arrive
            // while we sleep for decision_cost queue behind us (FIFO
            // inbox), preserving determinism.
            loop {
                // Pace: wait until estimated outstanding work is inside
                // the horizon, collecting any submissions that arrive in
                // the meantime so the policy can reorder them.
                loop {
                    let now = h.now();
                    if granted_until <= now + grant_horizon {
                        break;
                    }
                    h.sleep(
                        granted_until
                            .duration_since(now)
                            .saturating_sub(grant_horizon),
                    )
                    .await;
                    while let Ok(env) = inbox.try_recv() {
                        match env.msg {
                            CtrlMsg::Submit(s) => state_task.lock().push(s, h.now()),
                            CtrlMsg::Grants(_) => panic!("scheduler received a grant"),
                        }
                    }
                }
                let next = state_task.lock().pop();
                let Some(submit) = next else { break };
                // Eviction: a run failed by the fault injector (its
                // devices died, its client died, its island partitioned)
                // is dropped here rather than granted — its shards were
                // already wound down by the failure propagation.
                if failures.run_failed(submit.run) {
                    continue;
                }
                if !decision_cost.is_zero() {
                    h.sleep(decision_cost).await;
                }
                // Also drain any submissions that arrived during the
                // decision sleep so proportional share sees them.
                while let Ok(env) = inbox.try_recv() {
                    match env.msg {
                        CtrlMsg::Submit(s) => state_task.lock().push(s, h.now()),
                        CtrlMsg::Grants(_) => panic!("scheduler received a grant"),
                    }
                }
                // Island occupancy estimate: device-time divided by the
                // island's device count.
                let occupancy = SimDuration::from_nanos(
                    submit.est_cost.as_nanos() / island_devices.max(1) as u64,
                );
                granted_until = granted_until.max(h.now()) + occupancy;
                // Build one grant batch per participating host, with the
                // program's computations in topological order.
                let mut per_host: BTreeMap<HostId, Vec<GrantMsg>> = BTreeMap::new();
                {
                    let mut st = state_task.lock();
                    st.granted_programs += 1;
                    for comp in &submit.comps {
                        let tag = st.alloc_tag();
                        // Gang membership in shard order; carried with
                        // collective grants so the rendezvous can abort
                        // gangs containing a dead device.
                        let gang_devices: Vec<DeviceId> = if comp.collective.is_some() {
                            let mut by_shard: Vec<(u32, DeviceId)> = comp
                                .by_host
                                .iter()
                                .flat_map(|(_, shards)| shards.iter().copied())
                                .collect();
                            by_shard.sort_by_key(|(s, _)| *s);
                            by_shard.into_iter().map(|(_, d)| d).collect()
                        } else {
                            Vec::new()
                        };
                        for (host, shards) in &comp.by_host {
                            per_host.entry(*host).or_default().push(GrantMsg {
                                client: submit.client,
                                label: submit.label.clone(),
                                run: submit.run,
                                comp: comp.comp,
                                sink: comp.sink,
                                gang_tag: tag,
                                participants: comp.participants,
                                collective: comp.collective.map(|(k, _, d)| (k, d)),
                                gang_devices: gang_devices.clone(),
                                compute: comp.compute,
                                output_bytes: comp.output_bytes,
                                input_bytes: comp.input_bytes,
                                local_shards: shards.clone(),
                            });
                        }
                    }
                }
                for (dst, grants) in per_host {
                    if batch_grants {
                        let msg = CtrlMsg::Grants(grants);
                        let bytes = ctrl_msg_bytes(&msg);
                        grant_router.send(host, dst, msg, bytes);
                    } else {
                        // Ablation: one message per computation.
                        for g in grants {
                            let msg = CtrlMsg::Grants(vec![g]);
                            let bytes = ctrl_msg_bytes(&msg);
                            grant_router.send(host, dst, msg, bytes);
                        }
                    }
                }
            }
        }
    });
    SchedulerHandle { host, state }
}

/// Maps each island to the host its scheduler runs on (the island's
/// first host). Islands with no hosts are skipped — they cannot run a
/// scheduler.
pub fn scheduler_hosts(topo: &pathways_net::Topology) -> FxHashMap<IslandId, HostId> {
    topo.islands()
        .filter_map(|i| topo.hosts_of_island(i).next().map(|h| (i, h)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(client: u32, run: u64, cost_us: u64) -> SubmitMsg {
        SubmitMsg {
            client: ClientId(client),
            label: format!("c{client}"),
            run: RunId(run),
            est_cost: SimDuration::from_micros(cost_us),
            comps: vec![],
        }
    }

    fn state_with(policy: &SchedPolicy) -> SchedulerState {
        SchedulerState::new(IslandId(0), policy.build())
    }

    #[test]
    fn fifo_pops_in_arrival_order() {
        let mut st = state_with(&SchedPolicy::Fifo);
        st.push(submit(1, 10, 5), SimTime::ZERO);
        st.push(submit(0, 11, 5), SimTime::ZERO);
        st.push(submit(1, 12, 5), SimTime::ZERO);
        assert_eq!(st.pop().unwrap().run, RunId(10));
        assert_eq!(st.pop().unwrap().run, RunId(11));
        assert_eq!(st.pop().unwrap().run, RunId(12));
        assert!(st.pop().is_none());
    }

    #[test]
    fn proportional_share_matches_weights() {
        // Clients 0 and 1 with weights 1 and 3, equal-cost programs:
        // out of every 4 grants, client 1 should get 3.
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 3)].into_iter().collect();
        let mut st = state_with(&SchedPolicy::ProportionalShare(weights));
        for i in 0..40 {
            st.push(submit(0, i, 10), SimTime::ZERO);
            st.push(submit(1, 100 + i, 10), SimTime::ZERO);
        }
        let mut counts = [0u32; 2];
        for _ in 0..40 {
            let m = st.pop().unwrap();
            counts[m.client.0 as usize] += 1;
        }
        assert_eq!(counts[0] + counts[1], 40);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.5..=3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn proportional_share_accounts_for_cost() {
        // Client 0 submits programs 3x as expensive; with equal weights
        // it should be granted ~1/3 as many programs.
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 1)].into_iter().collect();
        let mut st = state_with(&SchedPolicy::ProportionalShare(weights));
        for i in 0..60 {
            st.push(submit(0, i, 30), SimTime::ZERO);
            st.push(submit(1, 100 + i, 10), SimTime::ZERO);
        }
        let mut counts = [0u32; 2];
        for _ in 0..60 {
            let m = st.pop().unwrap();
            counts[m.client.0 as usize] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..=4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn priority_policy_prefers_high_priority_clients() {
        let prio: BTreeMap<ClientId, u32> =
            [(ClientId(0), 0), (ClientId(1), 10)].into_iter().collect();
        let mut st = state_with(&SchedPolicy::Priority(prio));
        st.push(submit(0, 1, 10), SimTime::ZERO);
        st.push(submit(0, 2, 10), SimTime::ZERO);
        st.push(submit(1, 3, 10), SimTime::ZERO);
        st.push(submit(1, 4, 10), SimTime::ZERO);
        // All of client 1's work drains before any of client 0's.
        assert_eq!(st.pop().unwrap().run, RunId(3));
        assert_eq!(st.pop().unwrap().run, RunId(4));
        assert_eq!(st.pop().unwrap().run, RunId(1));
        assert_eq!(st.pop().unwrap().run, RunId(2));
    }

    #[test]
    fn priority_ties_break_by_arrival() {
        let prio: BTreeMap<ClientId, u32> =
            [(ClientId(0), 5), (ClientId(1), 5)].into_iter().collect();
        let mut st = state_with(&SchedPolicy::Priority(prio));
        st.push(submit(1, 1, 10), SimTime::ZERO);
        st.push(submit(0, 2, 10), SimTime::ZERO);
        assert_eq!(st.pop().unwrap().run, RunId(1));
        assert_eq!(st.pop().unwrap().run, RunId(2));
    }

    #[test]
    fn weighted_fair_shares_grants_by_weight() {
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 3)].into_iter().collect();
        let mut st = state_with(&SchedPolicy::WeightedFair {
            weights,
            quantum: SimDuration::from_micros(10),
        });
        for i in 0..80 {
            st.push(submit(0, i, 10), SimTime::ZERO);
            st.push(submit(1, 1000 + i, 10), SimTime::ZERO);
        }
        let mut counts = [0u32; 2];
        for _ in 0..80 {
            let m = st.pop().unwrap();
            counts[m.client.0 as usize] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.5..=3.5).contains(&ratio), "ratio {ratio} ({counts:?})");
    }

    #[test]
    fn custom_policy_plugs_into_the_scheduler_state() {
        // A last-client-first policy defined entirely out of tree: the
        // drop-in extension path the engine exists for.
        struct LastClientFirst;
        impl SchedPolicyImpl for LastClientFirst {
            fn name(&self) -> &'static str {
                "last-client-first"
            }
            fn pick_next(&mut self, queues: &[QueuedProgram<'_>]) -> Option<ClientId> {
                queues.last().map(|q| q.client)
            }
        }
        let policy = SchedPolicy::custom("last-client-first", || Box::new(LastClientFirst));
        let mut st = state_with(&policy);
        assert_eq!(st.policy_name(), "last-client-first");
        st.push(submit(0, 1, 10), SimTime::ZERO);
        st.push(submit(2, 2, 10), SimTime::ZERO);
        st.push(submit(1, 3, 10), SimTime::ZERO);
        assert_eq!(st.pop().unwrap().client, ClientId(2));
        assert_eq!(st.pop().unwrap().client, ClientId(1));
        assert_eq!(st.pop().unwrap().client, ClientId(0));
    }

    #[test]
    fn tags_are_unique_and_island_partitioned() {
        let mut a = SchedulerState::new(IslandId(0), SchedPolicy::Fifo.build());
        let mut b = SchedulerState::new(IslandId(1), SchedPolicy::Fifo.build());
        let ta1 = a.alloc_tag();
        let ta2 = a.alloc_tag();
        let tb1 = b.alloc_tag();
        assert_ne!(ta1, ta2);
        assert_ne!(ta1, tb1);
        assert_ne!(ta2, tb1);
    }

    #[test]
    fn idle_client_does_not_starve_later() {
        // Stride scheduling: a client that was idle does not get an
        // unbounded backlog advantage because pass only advances when
        // granted; but it does get the next grant when it arrives with
        // the lowest pass.
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 1)].into_iter().collect();
        let mut st = state_with(&SchedPolicy::ProportionalShare(weights));
        for i in 0..5 {
            st.push(submit(0, i, 10), SimTime::ZERO);
        }
        for _ in 0..5 {
            st.pop();
        }
        st.push(submit(1, 100, 10), SimTime::ZERO);
        st.push(submit(0, 6, 10), SimTime::ZERO);
        // Client 1 has pass 0 < client 0's accumulated pass.
        assert_eq!(st.pop().unwrap().client, ClientId(1));
    }
}
