//! Traced Pathways programs: the device-location-agnostic IR.
//!
//! §3: a user wraps a block of code calling many compiled functions with
//! the program tracer; each compiled function becomes one (sharded)
//! computation node in a dataflow graph. [`ProgramBuilder`] is that
//! tracer's output interface: computations reference the virtual devices
//! of a slice, and [`Program::lower`] resolves them to physical devices
//! (the paper's "lowering" pass that can be re-run when the resource
//! manager changes the virtual→physical mapping).

use std::fmt;

use serde::{Deserialize, Serialize};

use pathways_net::{CollectiveKind, DeviceId};
use pathways_sim::SimDuration;

use crate::resource::VirtualSlice;

/// Index of a computation within one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CompId(pub u32);

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comp{}", self.0)
    }
}

impl CompId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of one compiled function (per shard).
///
/// Everything here is known before the function's inputs exist — the
/// defining property of compiled functions (§3, Appendix B) that makes
/// parallel asynchronous dispatch possible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FnSpec {
    /// Function name (used in labels/traces).
    pub name: String,
    /// Per-shard compute time.
    pub compute: SimDuration,
    /// Optional collective over all shards of the computation, with the
    /// per-shard payload size.
    pub collective: Option<(CollectiveKind, u64)>,
    /// Overrides the cost-model duration of the collective when the
    /// caller knows it better (e.g. a calibrated per-layer communication
    /// schedule the analytic torus model cannot see).
    pub collective_time_override: Option<SimDuration>,
    /// Bytes each shard's output occupies in HBM.
    pub output_bytes_per_shard: u64,
    /// Bytes of transient input staging each shard needs.
    pub input_bytes_per_shard: u64,
}

impl FnSpec {
    /// A pure-compute function with no collective and no output payload.
    pub fn compute_only(name: impl Into<String>, compute: SimDuration) -> Self {
        FnSpec {
            name: name.into(),
            compute,
            collective: None,
            collective_time_override: None,
            output_bytes_per_shard: 0,
            input_bytes_per_shard: 0,
        }
    }

    /// Fixes the collective's wire time explicitly (builder style).
    #[must_use]
    pub fn with_collective_time(mut self, duration: SimDuration) -> Self {
        self.collective_time_override = Some(duration);
        self
    }

    /// Adds an all-reduce over the computation's shards (builder style).
    #[must_use]
    pub fn with_allreduce(mut self, bytes: u64) -> Self {
        self.collective = Some((CollectiveKind::AllReduce, bytes));
        self
    }

    /// Sets output bytes per shard (builder style).
    #[must_use]
    pub fn with_output_bytes(mut self, bytes: u64) -> Self {
        self.output_bytes_per_shard = bytes;
        self
    }

    /// Sets input staging bytes per shard (builder style).
    #[must_use]
    pub fn with_input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes_per_shard = bytes;
        self
    }
}

/// One computation node: a compiled function placed on a virtual slice.
#[derive(Debug, Clone)]
pub struct Computation {
    /// The function.
    pub spec: FnSpec,
    /// Virtual devices it runs on (one shard per device).
    pub slice: VirtualSlice,
}

/// How the shards of a producer map onto the shards of a consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardMapping {
    /// Shard `i` feeds shard `i` (requires equal shard counts).
    OneToOne,
    /// Every producer shard feeds every consumer shard, splitting the
    /// payload (scatter/gather resharding).
    AllToAll,
}

/// A dataflow edge between two computations.
#[derive(Debug, Clone, Copy)]
pub struct DataEdge {
    /// Producer computation.
    pub src: CompId,
    /// Consumer computation.
    pub dst: CompId,
    /// Bytes each producer shard sends in total on this edge.
    pub bytes_per_src_shard: u64,
    /// Shard mapping.
    pub mapping: ShardMapping,
}

/// Errors from program construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An edge referenced a computation that does not exist.
    UnknownComputation {
        /// The dangling id.
        comp: CompId,
    },
    /// A one-to-one edge connects computations with different shard
    /// counts.
    ShardCountMismatch {
        /// Producer.
        src: CompId,
        /// Producer shards.
        src_shards: u32,
        /// Consumer.
        dst: CompId,
        /// Consumer shards.
        dst_shards: u32,
    },
    /// The edges form a cycle.
    Cyclic,
    /// The program has no computations.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownComputation { comp } => {
                write!(f, "edge references unknown {comp}")
            }
            ProgramError::ShardCountMismatch {
                src,
                src_shards,
                dst,
                dst_shards,
            } => write!(
                f,
                "one-to-one edge between {src} ({src_shards} shards) and {dst} ({dst_shards} shards)"
            ),
            ProgramError::Cyclic => write!(f, "program contains a cycle"),
            ProgramError::Empty => write!(f, "program has no computations"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Builder for [`Program`] — the interface the program tracer targets.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    comps: Vec<Computation>,
    edges: Vec<DataEdge>,
}

impl ProgramBuilder {
    /// Starts tracing a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            comps: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a computation node running `spec` on `slice`.
    pub fn computation(&mut self, spec: FnSpec, slice: &VirtualSlice) -> CompId {
        let id = CompId(self.comps.len() as u32);
        self.comps.push(Computation {
            spec,
            slice: slice.clone(),
        });
        id
    }

    /// Adds a one-to-one dataflow edge carrying `bytes_per_src_shard`.
    pub fn edge(&mut self, src: CompId, dst: CompId, bytes_per_src_shard: u64) -> &mut Self {
        self.edges.push(DataEdge {
            src,
            dst,
            bytes_per_src_shard,
            mapping: ShardMapping::OneToOne,
        });
        self
    }

    /// Adds an all-to-all (resharding) edge.
    pub fn reshard_edge(
        &mut self,
        src: CompId,
        dst: CompId,
        bytes_per_src_shard: u64,
    ) -> &mut Self {
        self.edges.push(DataEdge {
            src,
            dst,
            bytes_per_src_shard,
            mapping: ShardMapping::AllToAll,
        });
        self
    }

    /// Validates and finalizes the program.
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn build(self) -> Result<Program, ProgramError> {
        if self.comps.is_empty() {
            return Err(ProgramError::Empty);
        }
        let n = self.comps.len() as u32;
        for e in &self.edges {
            for c in [e.src, e.dst] {
                if c.0 >= n {
                    return Err(ProgramError::UnknownComputation { comp: c });
                }
            }
            if e.mapping == ShardMapping::OneToOne {
                let s = self.comps[e.src.index()].slice.len() as u32;
                let d = self.comps[e.dst.index()].slice.len() as u32;
                if s != d {
                    return Err(ProgramError::ShardCountMismatch {
                        src: e.src,
                        src_shards: s,
                        dst: e.dst,
                        dst_shards: d,
                    });
                }
            }
        }
        let order = topological_order(self.comps.len(), &self.edges).ok_or(ProgramError::Cyclic)?;
        Ok(Program {
            name: self.name,
            comps: self.comps,
            edges: self.edges,
            topo_order: order,
        })
    }
}

/// A validated, traced Pathways program.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    comps: Vec<Computation>,
    edges: Vec<DataEdge>,
    topo_order: Vec<CompId>,
}

impl Program {
    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The computations, indexed by [`CompId`].
    pub fn computations(&self) -> &[Computation] {
        &self.comps
    }

    /// The dataflow edges.
    pub fn edges(&self) -> &[DataEdge] {
        &self.edges
    }

    /// Computations in a topological order (producers first).
    pub fn topo_order(&self) -> &[CompId] {
        &self.topo_order
    }

    /// Physical devices of `comp` under the current virtual→physical
    /// mapping (the lowering step that is re-run if the resource manager
    /// remaps a slice).
    pub fn physical_devices(&self, comp: CompId) -> Vec<DeviceId> {
        self.comps[comp.index()].slice.physical_devices()
    }

    /// In-edges of `comp` (indices into [`Program::edges`]).
    pub fn in_edges(&self, comp: CompId) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dst == comp)
            .map(|(i, _)| i)
            .collect()
    }

    /// Out-edges of `comp` (indices into [`Program::edges`]).
    pub fn out_edges(&self, comp: CompId) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.src == comp)
            .map(|(i, _)| i)
            .collect()
    }

    /// Computations with no out-edges (their completion ends the run).
    pub fn sinks(&self) -> Vec<CompId> {
        (0..self.comps.len() as u32)
            .map(CompId)
            .filter(|c| self.out_edges(*c).is_empty())
            .collect()
    }

    /// Estimated total device time (used by schedulers for
    /// proportional-share accounting). Collective time is estimated with
    /// the latency-free bandwidth bound and refined by the executor.
    pub fn estimated_device_time(&self) -> SimDuration {
        self.comps
            .iter()
            .map(|c| c.spec.compute * c.slice.len() as u64)
            .sum()
    }
}

fn topological_order(n: usize, edges: &[DataEdge]) -> Option<Vec<CompId>> {
    let mut indegree = vec![0usize; n];
    for e in edges {
        indegree[e.dst.index()] += 1;
    }
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|i| indegree[*i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(CompId(i as u32));
        for e in edges.iter().filter(|e| e.src.index() == i) {
            indegree[e.dst.index()] -= 1;
            if indegree[e.dst.index()] == 0 {
                queue.push_back(e.dst.index());
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::VirtualSlice;

    fn slice(devs: &[u32]) -> VirtualSlice {
        VirtualSlice::for_tests(devs.iter().map(|d| DeviceId(*d)).collect())
    }

    fn spec(name: &str) -> FnSpec {
        FnSpec::compute_only(name, SimDuration::from_micros(10))
    }

    #[test]
    fn builder_produces_topo_order() {
        let mut b = ProgramBuilder::new("p");
        let s = slice(&[0, 1]);
        let a = b.computation(spec("a"), &s);
        let c = b.computation(spec("c"), &s);
        let bb = b.computation(spec("b"), &s);
        b.edge(a, bb, 8);
        b.edge(bb, c, 8);
        let p = b.build().unwrap();
        assert_eq!(p.topo_order(), &[a, bb, c]);
        assert_eq!(p.sinks(), vec![c]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = ProgramBuilder::new("p");
        let s = slice(&[0]);
        let a = b.computation(spec("a"), &s);
        let c = b.computation(spec("b"), &s);
        b.edge(a, c, 8);
        b.edge(c, a, 8);
        assert_eq!(b.build().unwrap_err(), ProgramError::Cyclic);
    }

    #[test]
    fn one_to_one_requires_equal_shards() {
        let mut b = ProgramBuilder::new("p");
        let a = b.computation(spec("a"), &slice(&[0, 1]));
        let c = b.computation(spec("b"), &slice(&[2]));
        b.edge(a, c, 8);
        assert!(matches!(
            b.build(),
            Err(ProgramError::ShardCountMismatch { .. })
        ));
    }

    #[test]
    fn reshard_edge_allows_different_shards() {
        let mut b = ProgramBuilder::new("p");
        let a = b.computation(spec("a"), &slice(&[0, 1]));
        let c = b.computation(spec("b"), &slice(&[2]));
        b.reshard_edge(a, c, 8);
        assert!(b.build().is_ok());
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(
            ProgramBuilder::new("p").build().unwrap_err(),
            ProgramError::Empty
        );
    }

    #[test]
    fn unknown_computation_is_rejected() {
        let mut b = ProgramBuilder::new("p");
        let a = b.computation(spec("a"), &slice(&[0]));
        b.edge(a, CompId(9), 8);
        assert_eq!(
            b.build().unwrap_err(),
            ProgramError::UnknownComputation { comp: CompId(9) }
        );
    }

    #[test]
    fn fn_spec_builders() {
        let s = FnSpec::compute_only("f", SimDuration::from_millis(1))
            .with_allreduce(4)
            .with_output_bytes(128)
            .with_input_bytes(64);
        assert_eq!(s.collective, Some((CollectiveKind::AllReduce, 4)));
        assert_eq!(s.output_bytes_per_shard, 128);
        assert_eq!(s.input_bytes_per_shard, 64);
    }
}
