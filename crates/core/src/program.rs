//! Traced Pathways programs: the device-location-agnostic IR.
//!
//! §3: a user wraps a block of code calling many compiled functions with
//! the program tracer; each compiled function becomes one (sharded)
//! computation node in a dataflow graph. [`ProgramBuilder`] is that
//! tracer's output interface: computations reference the virtual devices
//! of a slice, and [`Program::lower`] resolves them to physical devices
//! (the paper's "lowering" pass that can be re-run when the resource
//! manager changes the virtual→physical mapping).
//!
//! Programs can also declare **external inputs**
//! ([`ProgramBuilder::input`]): placeholder nodes that are bound to an
//! [`ObjectRef`](crate::ObjectRef) — the output future of another
//! program — at submission time. This is what makes cross-program
//! chaining first-class: a consumer program can be traced, lowered and
//! dispatched before its producer has run.

use std::fmt;

use serde::{Deserialize, Serialize};

use pathways_net::{CollectiveKind, DeviceId};
use pathways_sim::SimDuration;

use crate::resource::VirtualSlice;

/// Index of a computation within one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CompId(pub u32);

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comp{}", self.0)
    }
}

impl CompId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of one compiled function (per shard).
///
/// Everything here is known before the function's inputs exist — the
/// defining property of compiled functions (§3, Appendix B) that makes
/// parallel asynchronous dispatch possible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FnSpec {
    /// Function name (used in labels/traces).
    pub name: String,
    /// Per-shard compute time.
    pub compute: SimDuration,
    /// Optional collective over all shards of the computation, with the
    /// per-shard payload size.
    pub collective: Option<(CollectiveKind, u64)>,
    /// Overrides the cost-model duration of the collective when the
    /// caller knows it better (e.g. a calibrated per-layer communication
    /// schedule the analytic torus model cannot see).
    pub collective_time_override: Option<SimDuration>,
    /// Bytes each shard's output occupies in HBM.
    pub output_bytes_per_shard: u64,
    /// Bytes of transient input staging each shard needs.
    pub input_bytes_per_shard: u64,
}

impl FnSpec {
    /// A pure-compute function with no collective and no output payload.
    pub fn compute_only(name: impl Into<String>, compute: SimDuration) -> Self {
        FnSpec {
            name: name.into(),
            compute,
            collective: None,
            collective_time_override: None,
            output_bytes_per_shard: 0,
            input_bytes_per_shard: 0,
        }
    }

    /// Fixes the collective's wire time explicitly (builder style).
    #[must_use]
    pub fn with_collective_time(mut self, duration: SimDuration) -> Self {
        self.collective_time_override = Some(duration);
        self
    }

    /// Adds an all-reduce over the computation's shards (builder style).
    #[must_use]
    pub fn with_allreduce(mut self, bytes: u64) -> Self {
        self.collective = Some((CollectiveKind::AllReduce, bytes));
        self
    }

    /// Sets output bytes per shard (builder style).
    #[must_use]
    pub fn with_output_bytes(mut self, bytes: u64) -> Self {
        self.output_bytes_per_shard = bytes;
        self
    }

    /// Sets input staging bytes per shard (builder style).
    #[must_use]
    pub fn with_input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes_per_shard = bytes;
        self
    }
}

/// Static description of an external input: a placeholder that is bound
/// to another program's output ([`ObjectRef`](crate::ObjectRef)) when
/// the program is submitted with
/// [`Client::submit_with`](crate::Client::submit_with).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Name (used in labels/traces).
    pub name: String,
    /// Number of shards of the bound object. Must match the bound
    /// `ObjectRef`'s sharding; one-to-one edges out of the input require
    /// the consumer to have the same shard count.
    pub shards: u32,
}

impl InputSpec {
    /// An input expecting an object sharded `shards` ways.
    pub fn new(name: impl Into<String>, shards: u32) -> Self {
        InputSpec {
            name: name.into(),
            shards,
        }
    }
}

/// One program node: either a compiled function placed on a virtual
/// slice, or an external-input placeholder bound at submission time.
#[derive(Debug, Clone)]
pub enum Computation {
    /// A compiled function running one shard per device of `slice`.
    Kernel {
        /// The function.
        spec: FnSpec,
        /// Virtual devices it runs on (one shard per device).
        slice: VirtualSlice,
    },
    /// An external input, fed by an `ObjectRef` bound at submit time.
    Input {
        /// The input's static description.
        spec: InputSpec,
    },
}

impl Computation {
    /// Node name (function or input name).
    pub fn name(&self) -> &str {
        match self {
            Computation::Kernel { spec, .. } => &spec.name,
            Computation::Input { spec } => &spec.name,
        }
    }

    /// Number of shards of this node.
    pub fn shards(&self) -> u32 {
        match self {
            Computation::Kernel { slice, .. } => slice.len() as u32,
            Computation::Input { spec } => spec.shards,
        }
    }

    /// The kernel spec, if this is a kernel node.
    pub fn fn_spec(&self) -> Option<&FnSpec> {
        match self {
            Computation::Kernel { spec, .. } => Some(spec),
            Computation::Input { .. } => None,
        }
    }

    /// The virtual slice, if this is a kernel node.
    pub fn slice(&self) -> Option<&VirtualSlice> {
        match self {
            Computation::Kernel { slice, .. } => Some(slice),
            Computation::Input { .. } => None,
        }
    }

    /// True for external-input placeholder nodes.
    pub fn is_input(&self) -> bool {
        matches!(self, Computation::Input { .. })
    }
}

/// How the shards of a producer map onto the shards of a consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardMapping {
    /// Shard `i` feeds shard `i` (requires equal shard counts).
    OneToOne,
    /// Every producer shard feeds every consumer shard, splitting the
    /// payload (scatter/gather resharding).
    AllToAll,
}

/// A dataflow edge between two computations.
#[derive(Debug, Clone, Copy)]
pub struct DataEdge {
    /// Producer computation.
    pub src: CompId,
    /// Consumer computation.
    pub dst: CompId,
    /// Bytes each producer shard sends in total on this edge.
    pub bytes_per_src_shard: u64,
    /// Shard mapping.
    pub mapping: ShardMapping,
}

/// Errors from program construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An edge referenced a computation that does not exist.
    UnknownComputation {
        /// The dangling id.
        comp: CompId,
    },
    /// A one-to-one edge connects computations with different shard
    /// counts.
    ShardCountMismatch {
        /// Producer.
        src: CompId,
        /// Producer shards.
        src_shards: u32,
        /// Consumer.
        dst: CompId,
        /// Consumer shards.
        dst_shards: u32,
    },
    /// The edges form a cycle.
    Cyclic,
    /// The program has no computations.
    Empty,
    /// The program has no kernel computations (inputs only).
    NoKernels,
    /// An external input is the destination of a dataflow edge; inputs
    /// are sources by definition.
    InputHasInEdge {
        /// The offending input node.
        comp: CompId,
    },
    /// An external input has no consumers.
    UnusedInput {
        /// The unused input node.
        comp: CompId,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownComputation { comp } => {
                write!(f, "edge references unknown {comp}")
            }
            ProgramError::ShardCountMismatch {
                src,
                src_shards,
                dst,
                dst_shards,
            } => write!(
                f,
                "one-to-one edge between {src} ({src_shards} shards) and {dst} ({dst_shards} shards)"
            ),
            ProgramError::Cyclic => write!(f, "program contains a cycle"),
            ProgramError::Empty => write!(f, "program has no computations"),
            ProgramError::NoKernels => write!(f, "program has only input placeholders"),
            ProgramError::InputHasInEdge { comp } => {
                write!(f, "external input {comp} has an incoming edge")
            }
            ProgramError::UnusedInput { comp } => {
                write!(f, "external input {comp} has no consumers")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Builder for [`Program`] — the interface the program tracer targets.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    comps: Vec<Computation>,
    edges: Vec<DataEdge>,
}

impl ProgramBuilder {
    /// Starts tracing a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            comps: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a computation node running `spec` on `slice`.
    pub fn computation(&mut self, spec: FnSpec, slice: &VirtualSlice) -> CompId {
        let id = CompId(self.comps.len() as u32);
        self.comps.push(Computation::Kernel {
            spec,
            slice: slice.clone(),
        });
        id
    }

    /// Adds an external-input placeholder. The returned id is used both
    /// for dataflow edges out of the input and as the binding key of
    /// [`Client::submit_with`](crate::Client::submit_with).
    pub fn input(&mut self, spec: InputSpec) -> CompId {
        let id = CompId(self.comps.len() as u32);
        self.comps.push(Computation::Input { spec });
        id
    }

    /// Adds a one-to-one dataflow edge carrying `bytes_per_src_shard`.
    pub fn edge(&mut self, src: CompId, dst: CompId, bytes_per_src_shard: u64) -> &mut Self {
        self.edges.push(DataEdge {
            src,
            dst,
            bytes_per_src_shard,
            mapping: ShardMapping::OneToOne,
        });
        self
    }

    /// Adds an all-to-all (resharding) edge.
    pub fn reshard_edge(
        &mut self,
        src: CompId,
        dst: CompId,
        bytes_per_src_shard: u64,
    ) -> &mut Self {
        self.edges.push(DataEdge {
            src,
            dst,
            bytes_per_src_shard,
            mapping: ShardMapping::AllToAll,
        });
        self
    }

    /// Validates and finalizes the program.
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn build(self) -> Result<Program, ProgramError> {
        if self.comps.is_empty() {
            return Err(ProgramError::Empty);
        }
        if self.comps.iter().all(Computation::is_input) {
            return Err(ProgramError::NoKernels);
        }
        let n = self.comps.len() as u32;
        for e in &self.edges {
            for c in [e.src, e.dst] {
                if c.0 >= n {
                    return Err(ProgramError::UnknownComputation { comp: c });
                }
            }
            if self.comps[e.dst.index()].is_input() {
                return Err(ProgramError::InputHasInEdge { comp: e.dst });
            }
            if e.mapping == ShardMapping::OneToOne {
                let s = self.comps[e.src.index()].shards();
                let d = self.comps[e.dst.index()].shards();
                if s != d {
                    return Err(ProgramError::ShardCountMismatch {
                        src: e.src,
                        src_shards: s,
                        dst: e.dst,
                        dst_shards: d,
                    });
                }
            }
        }
        for (i, c) in self.comps.iter().enumerate() {
            let id = CompId(i as u32);
            if c.is_input() && !self.edges.iter().any(|e| e.src == id) {
                return Err(ProgramError::UnusedInput { comp: id });
            }
        }
        let order = topological_order(self.comps.len(), &self.edges).ok_or(ProgramError::Cyclic)?;
        Ok(Program {
            name: self.name,
            comps: self.comps,
            edges: self.edges,
            topo_order: order,
        })
    }
}

/// A validated, traced Pathways program.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    comps: Vec<Computation>,
    edges: Vec<DataEdge>,
    topo_order: Vec<CompId>,
}

impl Program {
    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The computations, indexed by [`CompId`].
    pub fn computations(&self) -> &[Computation] {
        &self.comps
    }

    /// The dataflow edges.
    pub fn edges(&self) -> &[DataEdge] {
        &self.edges
    }

    /// Computations in a topological order (producers first).
    pub fn topo_order(&self) -> &[CompId] {
        &self.topo_order
    }

    /// Physical devices of `comp` under the current virtual→physical
    /// mapping (the lowering step that is re-run if the resource manager
    /// remaps a slice). External inputs have no devices until bound.
    pub fn physical_devices(&self, comp: CompId) -> Vec<DeviceId> {
        self.comps[comp.index()]
            .slice()
            .map(VirtualSlice::physical_devices)
            .unwrap_or_default()
    }

    /// In-edges of `comp` (indices into [`Program::edges`]).
    pub fn in_edges(&self, comp: CompId) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dst == comp)
            .map(|(i, _)| i)
            .collect()
    }

    /// Out-edges of `comp` (indices into [`Program::edges`]).
    pub fn out_edges(&self, comp: CompId) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.src == comp)
            .map(|(i, _)| i)
            .collect()
    }

    /// Kernel computations with no out-edges (their completion ends the
    /// run; each produces one logical output object). External inputs
    /// are never sinks: validation requires them to have consumers.
    pub fn sinks(&self) -> Vec<CompId> {
        (0..self.comps.len() as u32)
            .map(CompId)
            .filter(|c| !self.comps[c.index()].is_input() && self.out_edges(*c).is_empty())
            .collect()
    }

    /// External-input placeholder nodes, in id order.
    pub fn inputs(&self) -> Vec<CompId> {
        (0..self.comps.len() as u32)
            .map(CompId)
            .filter(|c| self.comps[c.index()].is_input())
            .collect()
    }

    /// Estimated total device time (used by schedulers for
    /// proportional-share accounting). Collective time is estimated with
    /// the latency-free bandwidth bound and refined by the executor.
    pub fn estimated_device_time(&self) -> SimDuration {
        self.comps
            .iter()
            .filter_map(|c| c.fn_spec().map(|spec| spec.compute * c.shards() as u64))
            .sum()
    }
}

fn topological_order(n: usize, edges: &[DataEdge]) -> Option<Vec<CompId>> {
    let mut indegree = vec![0usize; n];
    for e in edges {
        indegree[e.dst.index()] += 1;
    }
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|i| indegree[*i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(CompId(i as u32));
        for e in edges.iter().filter(|e| e.src.index() == i) {
            indegree[e.dst.index()] -= 1;
            if indegree[e.dst.index()] == 0 {
                queue.push_back(e.dst.index());
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::VirtualSlice;

    fn slice(devs: &[u32]) -> VirtualSlice {
        VirtualSlice::for_tests(devs.iter().map(|d| DeviceId(*d)).collect())
    }

    fn spec(name: &str) -> FnSpec {
        FnSpec::compute_only(name, SimDuration::from_micros(10))
    }

    #[test]
    fn builder_produces_topo_order() {
        let mut b = ProgramBuilder::new("p");
        let s = slice(&[0, 1]);
        let a = b.computation(spec("a"), &s);
        let c = b.computation(spec("c"), &s);
        let bb = b.computation(spec("b"), &s);
        b.edge(a, bb, 8);
        b.edge(bb, c, 8);
        let p = b.build().unwrap();
        assert_eq!(p.topo_order(), &[a, bb, c]);
        assert_eq!(p.sinks(), vec![c]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = ProgramBuilder::new("p");
        let s = slice(&[0]);
        let a = b.computation(spec("a"), &s);
        let c = b.computation(spec("b"), &s);
        b.edge(a, c, 8);
        b.edge(c, a, 8);
        assert_eq!(b.build().unwrap_err(), ProgramError::Cyclic);
    }

    #[test]
    fn one_to_one_requires_equal_shards() {
        let mut b = ProgramBuilder::new("p");
        let a = b.computation(spec("a"), &slice(&[0, 1]));
        let c = b.computation(spec("b"), &slice(&[2]));
        b.edge(a, c, 8);
        assert!(matches!(
            b.build(),
            Err(ProgramError::ShardCountMismatch { .. })
        ));
    }

    #[test]
    fn reshard_edge_allows_different_shards() {
        let mut b = ProgramBuilder::new("p");
        let a = b.computation(spec("a"), &slice(&[0, 1]));
        let c = b.computation(spec("b"), &slice(&[2]));
        b.reshard_edge(a, c, 8);
        assert!(b.build().is_ok());
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(
            ProgramBuilder::new("p").build().unwrap_err(),
            ProgramError::Empty
        );
    }

    #[test]
    fn unknown_computation_is_rejected() {
        let mut b = ProgramBuilder::new("p");
        let a = b.computation(spec("a"), &slice(&[0]));
        b.edge(a, CompId(9), 8);
        assert_eq!(
            b.build().unwrap_err(),
            ProgramError::UnknownComputation { comp: CompId(9) }
        );
    }

    #[test]
    fn input_node_feeds_kernels_and_is_not_a_sink() {
        let mut b = ProgramBuilder::new("p");
        let x = b.input(InputSpec::new("x", 2));
        let k = b.computation(spec("k"), &slice(&[0, 1]));
        b.edge(x, k, 64);
        let p = b.build().unwrap();
        assert!(p.computations()[x.index()].is_input());
        assert_eq!(p.computations()[x.index()].shards(), 2);
        assert_eq!(p.inputs(), vec![x]);
        assert_eq!(p.sinks(), vec![k]);
        assert!(p.physical_devices(x).is_empty());
        // Inputs contribute no device time.
        assert_eq!(
            p.estimated_device_time(),
            SimDuration::from_micros(10) * 2u64
        );
    }

    #[test]
    fn input_with_in_edge_is_rejected() {
        let mut b = ProgramBuilder::new("p");
        let k = b.computation(spec("k"), &slice(&[0]));
        let x = b.input(InputSpec::new("x", 1));
        b.edge(x, k, 8);
        b.edge(k, x, 8);
        assert_eq!(
            b.build().unwrap_err(),
            ProgramError::InputHasInEdge { comp: x }
        );
    }

    #[test]
    fn unused_input_is_rejected() {
        let mut b = ProgramBuilder::new("p");
        b.computation(spec("k"), &slice(&[0]));
        let x = b.input(InputSpec::new("x", 1));
        assert_eq!(
            b.build().unwrap_err(),
            ProgramError::UnusedInput { comp: x }
        );
    }

    #[test]
    fn inputs_only_program_is_rejected() {
        let mut b = ProgramBuilder::new("p");
        b.input(InputSpec::new("x", 1));
        assert_eq!(b.build().unwrap_err(), ProgramError::NoKernels);
    }

    #[test]
    fn one_to_one_from_input_checks_shard_counts() {
        let mut b = ProgramBuilder::new("p");
        let x = b.input(InputSpec::new("x", 4));
        let k = b.computation(spec("k"), &slice(&[0]));
        b.edge(x, k, 8);
        assert!(matches!(
            b.build(),
            Err(ProgramError::ShardCountMismatch { .. })
        ));
    }

    #[test]
    fn fn_spec_builders() {
        let s = FnSpec::compute_only("f", SimDuration::from_millis(1))
            .with_allreduce(4)
            .with_output_bytes(128)
            .with_input_bytes(64);
        assert_eq!(s.collective, Some((CollectiveKind::AllReduce, 4)));
        assert_eq!(s.output_bytes_per_shard, 128);
        assert_eq!(s.input_bytes_per_shard, 64);
    }
}
