//! Cross-host DRAM placement: which host's DRAM receives a spilled or
//! restored shard.
//!
//! The seed behavior is [`PlacementPolicy::LocalFirst`]: a spill lands
//! in the pressured device's own host (zero extra cost, trace-identical
//! to the pre-policy store). The other policies trade a cross-host DCN
//! staging leg ([`TierConfig::cross_host_bw`](super::tiers::TierConfig))
//! for aggregate DRAM headroom: [`PlacementPolicy::Spread`]
//! round-robins spills over all live hosts (deterministic cursor), and
//! [`PlacementPolicy::CapacityWeighted`] targets the host with the most
//! free DRAM (ties break on the lowest host id). Hosts the fault
//! injector declared dead are never targeted.

use pathways_net::{DeviceId, HostId};

use super::index::ObjectStore;
use super::tiers::TierState;

/// Which host's DRAM receives spilled and restored shards (selected via
/// [`TierConfig::placement`](super::tiers::TierConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Always the local host (the pressured device's own, or the restore
    /// target's). No cross-host cost — the seed behavior.
    #[default]
    LocalFirst,
    /// Round-robin over all live hosts: spreads spill pressure at the
    /// price of a DCN staging leg for remote placements.
    Spread,
    /// The live host with the most free DRAM (ties break on the lowest
    /// host id): balances bytes instead of placements.
    CapacityWeighted,
}

impl TierState {
    /// Live hosts, ascending — the deterministic candidate list every
    /// non-local policy draws from.
    fn live_hosts(&self) -> Vec<HostId> {
        let mut hosts: Vec<HostId> = self
            .topo
            .hosts()
            .filter(|h| !self.down_hosts.contains(h))
            .collect();
        hosts.sort_unstable();
        hosts
    }

    /// The host whose DRAM receives a spill from a device on `local`.
    pub(crate) fn spill_host(&mut self, local: HostId) -> HostId {
        match self.cfg.placement {
            PlacementPolicy::LocalFirst => local,
            PlacementPolicy::Spread => {
                let hosts = self.live_hosts();
                if hosts.is_empty() {
                    return local;
                }
                let idx = (self.placement_cursor as usize) % hosts.len();
                self.placement_cursor += 1;
                hosts[idx]
            }
            PlacementPolicy::CapacityWeighted => {
                let budget = self.cfg.dram_per_host;
                self.live_hosts()
                    .into_iter()
                    .max_by_key(|h| {
                        (
                            budget.saturating_sub(self.dram.used_on(*h)),
                            std::cmp::Reverse(*h),
                        )
                    })
                    .unwrap_or(local)
            }
        }
    }
}

impl ObjectStore {
    /// Records that `host` died: non-local placement policies stop
    /// targeting its DRAM. (Its in-DRAM shards are separately absorbed
    /// or failed by the fault injector.)
    pub(crate) fn set_host_down(&self, host: HostId) {
        if let Some(ts) = self.inner.lock().tier.as_mut() {
            ts.down_hosts.insert(host);
        }
    }

    /// Picks the restore target from `candidates` (`(device, host)`
    /// pairs, ascending host order, dead hardware already excluded) per
    /// the placement policy. `LocalFirst` keeps the seed choice — the
    /// first candidate.
    pub(crate) fn choose_restore_target(
        &self,
        candidates: &[(DeviceId, HostId)],
    ) -> Option<(DeviceId, HostId)> {
        if candidates.is_empty() {
            return None;
        }
        let mut inner = self.inner.lock();
        let Some(ts) = inner.tier.as_mut() else {
            return Some(candidates[0]);
        };
        let pick = match ts.cfg.placement {
            PlacementPolicy::LocalFirst => 0,
            PlacementPolicy::Spread => {
                let idx = (ts.placement_cursor as usize) % candidates.len();
                ts.placement_cursor += 1;
                idx
            }
            PlacementPolicy::CapacityWeighted => {
                let budget = ts.cfg.dram_per_host;
                candidates
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, (_, h))| {
                        (
                            budget.saturating_sub(ts.dram.used_on(*h)),
                            std::cmp::Reverse(*i),
                        )
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        };
        Some(candidates[pick])
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{device, obj, tiered_with};
    use super::*;
    use pathways_net::ClientId;
    use pathways_sim::Sim;

    use crate::storage::tiers::TierConfig;

    /// Two hosts, tight HBM: consecutive spills alternate hosts under
    /// `Spread` (and pay the DCN leg for the remote one).
    #[test]
    fn spread_round_robins_spills_across_hosts() {
        let mut sim = Sim::new(0);
        let store = tiered_with(
            &sim,
            TierConfig {
                placement: PlacementPolicy::Spread,
                ..TierConfig::default()
            },
        );
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        sim.spawn("t", async move {
            for run in 0..3u64 {
                store2.create(obj(run, 0), ClientId(0));
                store2.put_shard(obj(run, 0), 0, &dev, 80).await;
                store2.mark_ready(obj(run, 0), 0);
            }
            let spills: Vec<HostId> = store2.spill_events().iter().map(|e| e.host).collect();
            assert_eq!(spills, vec![HostId(0), HostId(1)], "cursor alternates");
            assert!(store2.tiers_conserved());
            for run in 0..3u64 {
                store2.release(obj(run, 0));
            }
            assert_eq!(store2.dram_used(), 0);
            assert!(store2.tiers_conserved());
        });
        sim.run_to_quiescence();
    }

    /// CapacityWeighted sends the spill to the emptier host.
    #[test]
    fn capacity_weighted_targets_freest_host() {
        let mut sim = Sim::new(0);
        let store = tiered_with(
            &sim,
            TierConfig {
                placement: PlacementPolicy::CapacityWeighted,
                dram_per_host: 1_000,
                ..TierConfig::default()
            },
        );
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        sim.spawn("t", async move {
            for run in 0..3u64 {
                store2.create(obj(run, 0), ClientId(0));
                store2.put_shard(obj(run, 0), 0, &dev, 80).await;
                store2.mark_ready(obj(run, 0), 0);
            }
            let spills: Vec<HostId> = store2.spill_events().iter().map(|e| e.host).collect();
            // Both hosts start empty: ties break on the lowest id, then
            // the 80 bytes on host 0 make host 1 the freer target.
            assert_eq!(spills, vec![HostId(0), HostId(1)]);
            assert!(store2.tiers_conserved());
            for run in 0..3u64 {
                store2.release(obj(run, 0));
            }
            assert!(store2.tiers_conserved());
        });
        sim.run_to_quiescence();
    }

    /// Dead hosts are never placement targets.
    #[test]
    fn down_hosts_are_excluded_from_placement() {
        let mut sim = Sim::new(0);
        let store = tiered_with(
            &sim,
            TierConfig {
                placement: PlacementPolicy::Spread,
                ..TierConfig::default()
            },
        );
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.set_host_down(HostId(1));
            for run in 0..3u64 {
                store2.create(obj(run, 0), ClientId(0));
                store2.put_shard(obj(run, 0), 0, &dev, 80).await;
                store2.mark_ready(obj(run, 0), 0);
            }
            let spills: Vec<HostId> = store2.spill_events().iter().map(|e| e.host).collect();
            assert_eq!(spills, vec![HostId(0), HostId(0)], "host 1 is dead");
            for run in 0..3u64 {
                store2.release(obj(run, 0));
            }
        });
        sim.run_to_quiescence();
    }

    /// LocalFirst is byte- and host-identical to the seed spill path.
    #[test]
    fn local_first_spills_stay_on_the_local_host() {
        let mut sim = Sim::new(0);
        let store = tiered_with(&sim, TierConfig::default());
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        sim.spawn("t", async move {
            for run in 0..2u64 {
                store2.create(obj(run, 0), ClientId(0));
                store2.put_shard(obj(run, 0), 0, &dev, 80).await;
                store2.mark_ready(obj(run, 0), 0);
            }
            let spills: Vec<HostId> = store2.spill_events().iter().map(|e| e.host).collect();
            assert_eq!(spills, vec![HostId(0)]);
            for run in 0..2u64 {
                store2.release(obj(run, 0));
            }
        });
        sim.run_to_quiescence();
    }
}
