//! The storage engine: a layered replacement for the old monolithic
//! `store.rs` / `tier.rs` / `recover.rs` trio.
//!
//! Layers, bottom-up:
//!
//! - [`index`] — the **object index**: refcounted logical buffers keyed
//!   by [`ObjectId`], per-shard readiness events, owner-tagged GC,
//!   failure records. Owns the [`ObjectStore`] facade every other layer
//!   hangs methods off.
//! - [`tiers`] — **tier backends** behind the `TierBackend` trait: HBM
//!   (device-resident, lease-backed), host DRAM (per-host ledgers), and
//!   disk modeled as an **append-only segment store** with extent
//!   accounting (live/dead bytes per segment, sealed segments reclaimed
//!   when their last live extent dies). Also the spill/demote machinery
//!   and the conservation auditor `tiers_conserved`.
//! - [`checkpoint`] — the **checkpoint engine**: incremental *delta*
//!   checkpoints (only shards dirtied since the last durable epoch are
//!   persisted, one disk extent per epoch), the restore-set computation
//!   (newest durable copy per shard), and keep-last-K GC that never
//!   collects an epoch a live restore could need.
//! - [`placement`] — the pluggable **cross-host DRAM placement policy**
//!   (local-first / spread / capacity-weighted) for spills and restores.
//! - [`recovery`] — **chain recovery**: the `RecoveryManager` absorbs
//!   loss of whole *sets* of objects, dedupes shared upstream
//!   producers, walks the lineage DAG in topological order, and picks
//!   restore-vs-recompute per node by modeled cost.
//!
//! Everything below the `ObjectStore` facade is crate-private; the
//! public surface re-exported here is what `lib.rs` exposes.

pub(crate) mod checkpoint;
pub(crate) mod index;
pub(crate) mod placement;
pub(crate) mod recovery;
pub(crate) mod tiers;

pub use index::{FailureReason, ObjectError, ObjectId, ObjectStore, StoreError, StoredShard};
pub use placement::PlacementPolicy;
pub use recovery::RecoveryStats;
pub use tiers::{SegmentStats, SpillEvent, Tier, TierConfig, TierStats};

pub(crate) use recovery::{LineageRecord, RecoveryManager};

/// Shared constructors for the storage-layer unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Arc;

    use pathways_device::{CollectiveRendezvous, DeviceConfig, DeviceHandle};
    use pathways_net::{ClusterSpec, DeviceId};
    use pathways_sim::Sim;

    use pathways_plaque::RunId;

    use crate::program::CompId;

    use super::index::{ObjectId, ObjectStore};
    use super::tiers::TierConfig;

    pub(crate) fn obj(run: u64, comp: u32) -> ObjectId {
        ObjectId {
            run: RunId(run),
            comp: CompId(comp),
        }
    }

    pub(crate) fn device(sim: &Sim, id: u32, hbm: u64) -> DeviceHandle {
        DeviceHandle::spawn(
            &sim.handle(),
            DeviceId(id),
            CollectiveRendezvous::new(sim.handle()),
            DeviceConfig { hbm_capacity: hbm },
        )
    }

    pub(crate) fn tiered_with(sim: &Sim, cfg: TierConfig) -> ObjectStore {
        let topo = Arc::new(ClusterSpec::single_island(2, 4).build());
        ObjectStore::with_tiers(sim.handle(), topo, cfg)
    }

    pub(crate) fn tiered(sim: &Sim) -> ObjectStore {
        tiered_with(sim, TierConfig::default())
    }
}
