//! The object index: the refcounted sharded object table (§4.2, §4.6)
//! plus the blast-radius indexes failure fan-out walks.
//!
//! Each host manages buffers held in the HBM of its attached devices
//! (and transient staging in host DRAM). Client code refers to *logical*
//! sharded buffers by opaque [`ObjectId`]s; reference counting happens at
//! logical-buffer granularity — one count per object, not per shard — so
//! client bookkeeping stays O(objects) at thousands of shards, the
//! scaling fix §4.2 describes. Objects are tagged with an owner so they
//! can be garbage-collected if a client or program fails, and HBM
//! reservations go through [`HbmPool`](pathways_device::HbmPool), whose
//! back-pressure stalls computations that cannot allocate (§4.6).
//!
//! Per-shard *readiness events* exist from the moment an object is
//! [`declared`](ObjectStore::declare) — before any kernel has been
//! granted, let alone produced data. This is what lets a dependent
//! program be dispatched while its inputs are still futures: everything
//! control-plane proceeds eagerly, and only the consuming kernel gates
//! on the producer's per-shard events (§4.5's parallel asynchronous
//! dispatch, extended across programs).
//!
//! The index is tier-agnostic: where a shard's bytes live, how they move
//! and what they cost is the business of
//! [`storage::tiers`](super::tiers); delta checkpoints live in
//! [`storage::checkpoint`](super::checkpoint); loss absorption in
//! [`storage::recovery`](super::recovery). The index owns the maps they
//! all mutate and the removal paths that keep every ledger honest.

use pathways_sim::Lock;
use std::fmt;
use std::sync::Arc;

use pathways_device::{DeviceHandle, HbmLease};
use pathways_net::{ClientId, DeviceId, FxHashMap, HostId, IslandId, Topology};
use pathways_plaque::RunId;
use pathways_sim::sync::Event;
use pathways_sim::SimHandle;

use crate::program::CompId;

use super::checkpoint::CheckpointChain;
use super::recovery::LineageRecord;
use super::tiers::{ExtentRef, Tier, TierConfig, TierState};

/// Opaque handle to a logical (sharded) buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// The run that produced the object.
    pub run: RunId,
    /// The computation that produced it.
    pub comp: CompId,
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj({},{})", self.run, self.comp)
    }
}

/// Typed store errors. Racing failure-GC means a client can hold a
/// handle to an object the store has already reclaimed; those paths
/// return errors instead of aborting the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The object is not (or no longer) in the store — typically it was
    /// garbage-collected after its owner failed, or its refcount already
    /// reached zero.
    UnknownObject(ObjectId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownObject(id) => write!(f, "unknown object {id}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Why a producer failed (the failure-propagation vocabulary shared by
/// the store, the fault injector and client-visible [`ObjectError`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The device holding (or assigned to produce) a shard died.
    Device(DeviceId),
    /// A host died — its devices, executor and any scheduler on it are
    /// gone.
    Host(HostId),
    /// The island's scheduler host died; nothing on the island can be
    /// granted anymore.
    Island(IslandId),
    /// A severed DCN link partitioned the run's control plane.
    Link(HostId, HostId),
    /// The owning client failed; its objects were garbage-collected.
    Client(ClientId),
    /// An upstream object this run consumed had itself failed.
    Upstream(ObjectId),
    /// The object was reclaimed (failure-GC) before the cause could be
    /// recorded — observed through a stale handle.
    OwnerGone,
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::Device(d) => write!(f, "{d} failed"),
            FailureReason::Host(h) => write!(f, "{h} failed"),
            FailureReason::Island(i) => write!(f, "{i} lost its scheduler"),
            FailureReason::Link(a, b) => write!(f, "link {a}<->{b} severed"),
            FailureReason::Client(c) => write!(f, "{c} failed"),
            FailureReason::Upstream(o) => write!(f, "upstream {o} failed"),
            FailureReason::OwnerGone => write!(f, "owner was garbage-collected"),
        }
    }
}

/// Error delivered through an [`ObjectRef`](crate::ObjectRef) whose
/// producer can no longer supply the data: instead of blocking forever,
/// `ready`/`get` resolve to this (§4.3's "delivering errors on
/// failures"). With recovery enabled this is the *last* resort — the
/// error surfaces only after checkpoint restore and lineage recompute
/// both failed (or were exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectError {
    /// The producing run (or the hardware its data lived on) failed.
    ProducerFailed {
        /// The object that will never (fully) materialize.
        object: ObjectId,
        /// What went wrong.
        reason: FailureReason,
    },
}

impl ObjectError {
    /// The object the error is about.
    pub fn object(&self) -> ObjectId {
        match self {
            ObjectError::ProducerFailed { object, .. } => *object,
        }
    }

    /// The underlying failure reason.
    pub fn reason(&self) -> FailureReason {
        match self {
            ObjectError::ProducerFailed { reason, .. } => *reason,
        }
    }
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::ProducerFailed { object, reason } => {
                write!(f, "producer of {object} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

/// One shard of a stored object. In the untiered store it is always
/// pinned in a device's HBM; with tiers it may have been spilled to its
/// host's DRAM or demoted to disk (the HBM lease is then gone).
pub struct StoredShard {
    pub(crate) device: DeviceId,
    pub(crate) bytes: u64,
    /// Held only while the shard occupies HBM.
    pub(crate) lease: Option<HbmLease>,
    pub(crate) ready: Event,
    pub(crate) tier: Tier,
    /// The host whose DRAM holds the shard (DRAM tier only).
    pub(crate) host: Option<HostId>,
    /// LRU clock tick of the last access (spill-victim ordering).
    pub(crate) last_access: u64,
    /// Modified since the last durable checkpoint epoch — what the next
    /// delta checkpoint must persist. Fresh productions and recomputes
    /// are dirty; restored shards are clean by construction.
    pub(crate) dirty: bool,
    /// Disk extent holding the shard's bytes (disk tier only).
    pub(crate) extent: Option<ExtentRef>,
}

impl fmt::Debug for StoredShard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoredShard")
            .field("device", &self.device)
            .field("bytes", &self.bytes)
            .field("tier", &self.tier)
            .field("ready", &self.ready.is_set())
            .field("dirty", &self.dirty)
            .finish()
    }
}

impl StoredShard {
    /// Device holding the shard (for non-HBM tiers: the device the
    /// shard's reads are staged through).
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Shard size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Readiness event: set when the producing kernel finished.
    pub fn ready(&self) -> &Event {
        &self.ready
    }

    /// The storage tier the shard's bytes currently live in.
    pub fn tier(&self) -> Tier {
        self.tier
    }
}

pub(crate) struct ObjectEntry {
    pub(crate) owner: ClientId,
    /// Logical-buffer refcount (not per shard).
    pub(crate) refcount: u32,
    /// Per-shard readiness events. Populated eagerly by
    /// [`ObjectStore::declare`] (so consumers can gate on shards that do
    /// not exist yet) or lazily by [`ObjectStore::put_shard`].
    pub(crate) ready: FxHashMap<u32, Event>,
    pub(crate) shards: FxHashMap<u32, StoredShard>,
    /// Set when the producer failed terminally: shards are dropped (HBM
    /// freed), readiness events fire, and consumers observe the error
    /// instead of stale data. The entry itself lives until its refcount
    /// drains.
    pub(crate) error: Option<ObjectError>,
    /// Set while a restore/recompute is rebuilding the object's shards
    /// after hardware loss; consumers wait on it instead of observing a
    /// transient gap. Fired (and cleared) when recovery completes or
    /// fails terminally.
    pub(crate) recovering: Option<Event>,
    /// The object's delta-checkpoint chain: zero or more durable epochs,
    /// each persisting the shards dirty at its commit.
    pub(crate) checkpoints: CheckpointChain,
    /// How to recompute the object: the producing program and its bound
    /// inputs (which the record retains). Sink objects only.
    pub(crate) lineage: Option<Arc<LineageRecord>>,
}

impl ObjectEntry {
    fn new(owner: ClientId) -> Self {
        ObjectEntry {
            owner,
            refcount: 1,
            ready: FxHashMap::default(),
            shards: FxHashMap::default(),
            error: None,
            recovering: None,
            checkpoints: CheckpointChain::default(),
            lineage: None,
        }
    }

    /// Fully produced, healthy, lineage-bearing, with at least one shard
    /// dirty since the last durable epoch — the precondition for
    /// scheduling a (delta) disk checkpoint.
    pub(crate) fn checkpoint_candidate(&self) -> bool {
        self.lineage.is_some() && self.checkpoint_complete_and_dirty()
    }

    /// Like [`ObjectEntry::checkpoint_candidate`] but without the
    /// lineage requirement — the gate for *forced* checkpoints
    /// ([`ObjectStore::checkpoint_now`](super::index::ObjectStore)),
    /// which callers may cut on lineage-less objects.
    pub(crate) fn checkpoint_complete_and_dirty(&self) -> bool {
        self.error.is_none()
            && self.recovering.is_none()
            && !self.ready.is_empty()
            && self.ready.values().all(Event::is_set)
            && self.shards.len() == self.ready.len()
            && self.shards.values().any(|s| s.dirty)
    }
}

/// The object table plus the indexes failure fan-out walks: which
/// objects each client owns (failure-GC), which objects have a shard
/// pinned on each device (hardware death), and which objects have a
/// shard spilled to each host's DRAM (host death). The per-key lists are
/// plain `Vec`s — maintenance runs once per object/shard on the
/// steady-state path, so it uses O(1) pushes and swap-removes (no tree
/// nodes), and the rare blast-radius queries sort their snapshot
/// instead. Empty lists stay in the map on purpose: their capacity is
/// reused by the next object on the same key, so a steady-state step
/// allocates nothing here.
#[derive(Default)]
pub(crate) struct StoreInner {
    pub(crate) objects: FxHashMap<ObjectId, ObjectEntry>,
    pub(crate) by_owner: FxHashMap<ClientId, Vec<ObjectId>>,
    pub(crate) by_device: FxHashMap<DeviceId, Vec<ObjectId>>,
    pub(crate) by_dram_host: FxHashMap<HostId, Vec<ObjectId>>,
    pub(crate) tier: Option<TierState>,
}

/// Removes one occurrence of `id` (pushes and removals are 1:1).
pub(crate) fn unindex(list: &mut Vec<ObjectId>, id: ObjectId) {
    if let Some(pos) = list.iter().position(|x| *x == id) {
        list.swap_remove(pos);
    }
}

impl StoreInner {
    /// Unthreads one shard from the index and byte ledger of the tier it
    /// occupies (the shard is leaving the store, or leaving that tier).
    pub(crate) fn untier_shard(&mut self, id: ObjectId, shard: &StoredShard) {
        match shard.tier {
            Tier::Hbm => {
                if let Some(objs) = self.by_device.get_mut(&shard.device) {
                    unindex(objs, id);
                }
                if let Some(ts) = self.tier.as_mut() {
                    ts.hbm.uncharge(shard.bytes);
                }
            }
            Tier::Dram => {
                if let Some(host) = shard.host {
                    if let Some(objs) = self.by_dram_host.get_mut(&host) {
                        unindex(objs, id);
                    }
                    if let Some(ts) = self.tier.as_mut() {
                        ts.dram.uncharge(host, shard.bytes);
                    }
                }
            }
            Tier::Disk => {
                if let Some(ts) = self.tier.as_mut() {
                    let ext = shard.extent.expect("disk shard without extent");
                    ts.disk.uncharge(ext);
                }
            }
        }
    }

    /// Removes an object and unthreads it from every index and ledger
    /// (shards *and* its checkpoint chain's disk extents). An in-flight
    /// recovery is released (its waiters unblock; the recovery task
    /// observes the missing entry and abandons).
    pub(crate) fn remove_object(&mut self, id: ObjectId) -> Option<ObjectEntry> {
        let entry = self.objects.remove(&id)?;
        if let Some(owned) = self.by_owner.get_mut(&entry.owner) {
            unindex(owned, id);
        }
        for shard in entry.shards.values() {
            self.untier_shard(id, shard);
        }
        if let Some(ts) = self.tier.as_mut() {
            ts.release_chain(&entry.checkpoints);
        }
        if let Some(rec) = &entry.recovering {
            rec.set();
        }
        Some(entry)
    }
}

/// The cluster-wide sharded object store.
///
/// One instance is shared by all host executors in the simulation (each
/// host only ever touches shards of its local devices; the shared map
/// models the per-host stores plus the client's logical handle table).
#[derive(Clone)]
pub struct ObjectStore {
    pub(crate) inner: Arc<Lock<StoreInner>>,
}

impl Default for ObjectStore {
    fn default() -> Self {
        ObjectStore {
            // Named: the store is the controller's most shared structure
            // and the first suspect in any threaded contention profile.
            inner: Arc::new(Lock::named("core.store", StoreInner::default())),
        }
    }
}

impl fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectStore")
            .field("objects", &self.inner.lock().objects.len())
            .field("tiered", &self.inner.lock().tier.is_some())
            .finish()
    }
}

impl ObjectStore {
    /// Creates an empty single-tier (HBM-only) store: no spill, no
    /// checkpoints, `ProducerFailed` terminal — the seed semantics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty *tiered* store: HBM pressure spills
    /// least-recently-used ready shards to host DRAM (cascading to disk
    /// under DRAM pressure), and completed lineage-bearing objects are
    /// periodically delta-checkpointed to disk on the timer wheel.
    pub fn with_tiers(handle: SimHandle, topo: Arc<Topology>, cfg: TierConfig) -> Self {
        let store = Self::default();
        store.inner.lock().tier = Some(TierState::new(handle, topo, cfg));
        store
    }

    /// Registers an object owned by `owner` with refcount 1. Idempotent
    /// per object: shards are added with [`ObjectStore::put_shard`].
    pub fn create(&self, id: ObjectId, owner: ClientId) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.objects.entry(id).or_insert_with(|| {
            inner.by_owner.entry(owner).or_default().push(id);
            ObjectEntry::new(owner)
        });
    }

    /// Declares an object with `shards` shards *before it is produced*,
    /// eagerly creating one readiness event per shard, and returns those
    /// events in shard order.
    ///
    /// Idempotent like [`ObjectStore::create`]: only the *first* call
    /// for an id installs the entry, and its initial refcount of 1
    /// belongs to that caller (the client's `ObjectRef`). A repeat call
    /// takes **no** additional reference — it merely fills in and
    /// returns the shard events — so a second independent handle must
    /// [`retain`](ObjectStore::retain) explicitly.
    pub fn declare(&self, id: ObjectId, owner: ClientId, shards: u32) -> Vec<Event> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let entry = inner.objects.entry(id).or_insert_with(|| {
            inner.by_owner.entry(owner).or_default().push(id);
            ObjectEntry::new(owner)
        });
        (0..shards)
            .map(|s| entry.ready.entry(s).or_default().clone())
            .collect()
    }

    /// Reserves HBM on `device` for shard `shard` of `id` and records it.
    /// On a tiered store, HBM pressure first spills LRU ready shards to
    /// a host's DRAM; only if nothing is spillable does the put await
    /// classic back-pressure.
    ///
    /// If the object is unknown — its last reference was dropped or its
    /// owner was garbage-collected while the producing run was still in
    /// flight — the output is discarded: nothing is pinned and a fresh,
    /// never-set event is returned.
    ///
    /// # Panics
    ///
    /// Panics if the shard already exists (untiered store; a tiered
    /// store treats the duplicate as a stale write racing recovery and
    /// discards it).
    pub async fn put_shard(
        &self,
        id: ObjectId,
        shard: u32,
        device: &DeviceHandle,
        bytes: u64,
    ) -> Event {
        {
            let inner = self.inner.lock();
            match inner.objects.get(&id) {
                None => return Event::new(),
                // A failed object's output is discarded: its events are
                // already set, nothing gets pinned.
                Some(e) if e.error.is_some() => {
                    let ev = Event::new();
                    ev.set();
                    return ev;
                }
                Some(_) => {}
            }
        }
        // Tiered stores relieve HBM pressure by spilling before the
        // allocation can stall; both happen outside the store borrow.
        self.ensure_room(device, bytes).await;
        let lease = device.hbm().allocate(bytes).await;
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let Some(entry) = inner.objects.get_mut(&id) else {
            // Released while we waited on back-pressure: discard.
            return Event::new();
        };
        if entry.error.is_some() {
            // Failed while we waited on back-pressure: discard.
            let ev = Event::new();
            ev.set();
            return ev;
        }
        if inner.tier.is_some() && (entry.recovering.is_some() || entry.shards.contains_key(&shard))
        {
            // Recovery owns this object's shards now (or already
            // rematerialized this one): the late write from the aborted
            // production is discarded, the lease returns.
            return entry.ready.entry(shard).or_default().clone();
        }
        let ready = entry.ready.entry(shard).or_insert_with(Event::new).clone();
        let last_access = match inner.tier.as_mut() {
            Some(ts) => {
                ts.clock += 1;
                ts.hbm.charge(bytes);
                ts.clock
            }
            None => 0,
        };
        let prev = entry.shards.insert(
            shard,
            StoredShard {
                device: device.id(),
                bytes,
                lease: Some(lease),
                ready: ready.clone(),
                tier: Tier::Hbm,
                host: None,
                last_access,
                dirty: true,
                extent: None,
            },
        );
        assert!(prev.is_none(), "{id} shard {shard} stored twice");
        inner.by_device.entry(device.id()).or_default().push(id);
        ready
    }

    /// Marks shard `shard` of `id` ready (producing kernel finished).
    /// On a tiered store with checkpointing, the mark that completes the
    /// object schedules its disk checkpoint at the next interval
    /// boundary on the timer wheel.
    ///
    /// Late marks on released objects are ignored — the consumer is gone.
    pub fn mark_ready(&self, id: ObjectId, shard: u32) {
        let schedule_checkpoint = {
            let inner = self.inner.lock();
            let Some(entry) = inner.objects.get(&id) else {
                return;
            };
            if let Some(ev) = entry.ready.get(&shard) {
                ev.set();
            }
            matches!(
                inner.tier.as_ref(),
                Some(ts) if ts.cfg.checkpoint_interval.is_some()
            ) && entry.checkpoint_candidate()
        };
        if schedule_checkpoint {
            self.spawn_checkpoint(id);
        }
    }

    /// Readiness event of a shard, if the object (and its declared or
    /// stored shard) is present.
    pub fn shard_ready(&self, id: ObjectId, shard: u32) -> Option<Event> {
        self.inner
            .lock()
            .objects
            .get(&id)
            .and_then(|e| e.ready.get(&shard).cloned())
    }

    /// Increments the logical refcount.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownObject`] if the object is gone — e.g.
    /// an `ObjectRef` clone racing a client-failure GC. Callers that can
    /// tolerate the race (handle duplication) treat this as a no-op.
    pub fn retain(&self, id: ObjectId) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        match inner.objects.get_mut(&id) {
            Some(entry) => {
                entry.refcount += 1;
                Ok(())
            }
            None => Err(StoreError::UnknownObject(id)),
        }
    }

    /// Decrements the logical refcount, freeing all shards (their HBM
    /// leases drop, tier ledgers uncharge) when it reaches zero. A
    /// release of an unknown object is a no-op (the GC got there first).
    pub fn release(&self, id: ObjectId) {
        // The entry's lineage record (if any) holds ObjectRefs whose own
        // drops re-enter the store; it must outlive the borrow.
        let _deferred = {
            let mut inner = self.inner.lock();
            let Some(entry) = inner.objects.get_mut(&id) else {
                return;
            };
            entry.refcount -= 1;
            if entry.refcount == 0 {
                let mut removed = inner.remove_object(id);
                // HBM leases return inside the borrow (seed ordering);
                // only the re-entrant lineage drop is deferred.
                if let Some(entry) = removed.as_mut() {
                    entry.shards.clear();
                }
                removed
            } else {
                None
            }
        };
    }

    /// Frees every object owned by `client`, regardless of refcount —
    /// the failure-GC path: "objects are tagged with ownership labels so
    /// that they can be garbage collected if a program or client fails".
    ///
    /// Readiness events of reclaimed objects are fired so that consumers
    /// already gated on them unblock (they observe the producer as done;
    /// cross-client failure containment is the consumer's problem) and
    /// the simulation stays quiescent-able.
    pub fn gc_client(&self, client: ClientId) -> usize {
        // Lineage records drop after the borrow ends (their ObjectRefs
        // re-enter the store); leases and events keep the seed ordering.
        let deferred: Vec<ObjectEntry> = {
            let mut inner = self.inner.lock();
            let mut doomed: Vec<ObjectId> = inner
                .by_owner
                .get(&client)
                .map(|owned| owned.to_vec())
                .unwrap_or_default();
            // Swap-removes scramble the list; restore the ascending id
            // order deterministic fault replay relies on.
            doomed.sort_unstable();
            doomed
                .into_iter()
                .filter_map(|id| {
                    let mut entry = inner.remove_object(id)?;
                    for ev in entry.ready.values() {
                        ev.set();
                    }
                    entry.shards.clear();
                    Some(entry)
                })
                .collect()
        };
        deferred.len()
    }

    /// Marks `id` failed with `reason`: its shards are dropped (HBM
    /// leases return, tier ledgers uncharge), its checkpoint chain and
    /// lineage are discarded, its readiness events fire so gated
    /// consumers unblock, and [`ObjectStore::object_error`] reports the
    /// error from now on. The entry itself survives until its refcount
    /// drains, so live `ObjectRef`s resolve to the typed error rather
    /// than stale data. The first failure reason wins. Returns false for
    /// unknown objects.
    ///
    /// With recovery enabled this is the *terminal* verdict — the fault
    /// injector routes hardware loss through the recovery manager first
    /// and only calls this when recovery is impossible or exhausted.
    pub fn fail_object(&self, id: ObjectId, reason: FailureReason) -> bool {
        let _deferred = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let (shards, chain, lineage) = {
                let Some(entry) = inner.objects.get_mut(&id) else {
                    return false;
                };
                if entry.error.is_none() {
                    entry.error = Some(ObjectError::ProducerFailed { object: id, reason });
                }
                let shards: Vec<StoredShard> = entry.shards.drain().map(|(_, s)| s).collect();
                let chain = std::mem::take(&mut entry.checkpoints);
                let lineage = entry.lineage.take();
                if let Some(rec) = entry.recovering.take() {
                    rec.set();
                }
                for ev in entry.ready.values() {
                    ev.set();
                }
                (shards, chain, lineage)
            };
            for shard in &shards {
                inner.untier_shard(id, shard);
            }
            if let Some(ts) = inner.tier.as_mut() {
                ts.release_chain(&chain);
            }
            // Leases return here, inside the borrow (seed ordering);
            // the lineage's ObjectRefs drop after it ends.
            drop(shards);
            lineage
        };
        true
    }

    /// The recorded failure of `id`, if any. An object missing from the
    /// store while someone still holds a handle to it was reclaimed by a
    /// failure-GC; that is reported as [`FailureReason::OwnerGone`].
    pub fn object_error(&self, id: ObjectId) -> Option<ObjectError> {
        match self.inner.lock().objects.get(&id) {
            Some(entry) => entry.error,
            None => Some(ObjectError::ProducerFailed {
                object: id,
                reason: FailureReason::OwnerGone,
            }),
        }
    }

    /// True if the store still holds an entry for `id`.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.inner.lock().objects.contains_key(&id)
    }

    /// The owner of `id`, if it is still in the store.
    pub fn owner_of(&self, id: ObjectId) -> Option<ClientId> {
        self.inner.lock().objects.get(&id).map(|e| e.owner)
    }

    /// Ids of all objects with a live HBM shard on `device`, ascending
    /// and deduplicated — the deterministic blast-radius snapshot.
    pub(crate) fn objects_on_device(&self, device: DeviceId) -> Vec<ObjectId> {
        // The device index holds exactly the objects with a live HBM
        // shard here (failed/spilled shards were unindexed when they
        // left) — one occurrence per shard, so objects with several
        // shards on this device are deduplicated along with the
        // determinism sort.
        let mut ids: Vec<ObjectId> = self
            .inner
            .lock()
            .by_device
            .get(&device)
            .map(|objs| objs.to_vec())
            .unwrap_or_default();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Ids of all objects with a shard spilled to `host`'s DRAM,
    /// ascending and deduplicated (host-death blast radius).
    pub(crate) fn objects_with_dram_on(&self, host: HostId) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self
            .inner
            .lock()
            .by_dram_host
            .get(&host)
            .map(|objs| objs.to_vec())
            .unwrap_or_default();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Fails every object with a shard pinned on `device` (the data is
    /// gone with the hardware). Returns the failed ids in ascending
    /// order — deterministic, so fault injection replays identically.
    pub fn fail_objects_on_device(&self, device: DeviceId, reason: FailureReason) -> Vec<ObjectId> {
        let doomed = self.objects_on_device(device);
        for id in &doomed {
            self.fail_object(*id, reason);
        }
        doomed
    }

    /// Ids of all live objects owned by `client`, in ascending order.
    pub fn objects_owned_by(&self, client: ClientId) -> Vec<ObjectId> {
        let mut owned: Vec<ObjectId> = self
            .inner
            .lock()
            .by_owner
            .get(&client)
            .map(|owned| owned.to_vec())
            .unwrap_or_default();
        owned.sort_unstable();
        owned
    }

    /// Number of live logical objects.
    pub fn len(&self) -> usize {
        self.inner.lock().objects.len()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().objects.is_empty()
    }

    /// Total bytes held across all shards of `id` (every tier).
    pub fn object_bytes(&self, id: ObjectId) -> u64 {
        self.inner
            .lock()
            .objects
            .get(&id)
            .map(|e| e.shards.values().map(|s| s.bytes).sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{device, obj};
    use super::*;
    use pathways_sim::sync::Event;
    use pathways_sim::Sim;

    #[test]
    fn refcount_is_per_logical_object() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            for shard in 0..4 {
                store2.put_shard(obj(0, 0), shard, &dev2, 100).await;
            }
            assert_eq!(dev2.hbm().used(), 400);
            // One retain + one release leaves the object alive: the count
            // is logical, covering all 4 shards.
            store2.retain(obj(0, 0)).unwrap();
            store2.release(obj(0, 0));
            assert_eq!(store2.len(), 1);
            store2.release(obj(0, 0));
            assert_eq!(store2.len(), 0);
            assert_eq!(dev2.hbm().used(), 0);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn retain_on_unknown_object_is_a_typed_error() {
        // Regression: a racing client-failure GC must not abort the
        // simulation when a stale handle is duplicated.
        let store = ObjectStore::new();
        assert_eq!(
            store.retain(obj(7, 7)),
            Err(StoreError::UnknownObject(obj(7, 7)))
        );
        // And after a GC reclaimed the object mid-flight:
        store.create(obj(1, 0), ClientId(3));
        store.retain(obj(1, 0)).unwrap();
        assert_eq!(store.gc_client(ClientId(3)), 1);
        assert_eq!(
            store.retain(obj(1, 0)),
            Err(StoreError::UnknownObject(obj(1, 0)))
        );
        // release mirrors this as a documented no-op.
        store.release(obj(1, 0));
        assert!(store.is_empty());
    }

    #[test]
    fn declare_creates_ready_events_before_production() {
        let store = ObjectStore::new();
        let events = store.declare(obj(0, 1), ClientId(0), 3);
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| !e.is_set()));
        // The declared events are the ones mark_ready fires.
        store.mark_ready(obj(0, 1), 2);
        assert!(events[2].is_set());
        assert!(!events[0].is_set());
        assert_eq!(
            store.shard_ready(obj(0, 1), 0).unwrap().is_set(),
            events[0].is_set()
        );
    }

    #[test]
    fn put_shard_on_released_object_discards_output() {
        // A sink whose ObjectRef was dropped (or GC'd) before the kernel
        // produced data: the late put pins nothing and panics nowhere.
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.declare(obj(0, 0), ClientId(0), 1);
            store2.release(obj(0, 0)); // refcount 1 -> 0, entry gone
            let ev = store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            assert!(!ev.is_set());
            assert_eq!(dev.hbm().used(), 0);
            store2.mark_ready(obj(0, 0), 0); // no-op, no panic
            assert!(store2.is_empty());
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn gc_fires_ready_events_of_reclaimed_objects() {
        let store = ObjectStore::new();
        let events = store.declare(obj(0, 0), ClientId(0), 2);
        assert_eq!(store.gc_client(ClientId(0)), 1);
        assert!(events.iter().all(|e| e.is_set()), "consumers must unblock");
    }

    #[test]
    fn gc_client_frees_only_that_owner() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev2, 100).await;
            store2.create(obj(1, 0), ClientId(1));
            store2.put_shard(obj(1, 0), 0, &dev2, 200).await;
            // Even with extra refs, failure-GC removes client 0's object.
            store2.retain(obj(0, 0)).unwrap();
            assert_eq!(store2.gc_client(ClientId(0)), 1);
            assert_eq!(store2.len(), 1);
            assert_eq!(dev2.hbm().used(), 200);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn back_pressure_delays_put_shard() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        let dev2 = dev.clone();
        let h = sim.handle();
        sim.spawn("first", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev2, 80).await;
            h.sleep(pathways_sim::SimDuration::from_micros(50)).await;
            store2.release(obj(0, 0));
        });
        let store3 = store.clone();
        let dev3 = dev.clone();
        let h2 = sim.handle();
        let second = sim.spawn("second", async move {
            h2.sleep(pathways_sim::SimDuration::from_micros(1)).await;
            store3.create(obj(1, 0), ClientId(0));
            store3.put_shard(obj(1, 0), 0, &dev3, 50).await;
            h2.now().as_nanos()
        });
        sim.run_to_quiescence();
        // Stalled until the first object released at t=50us.
        assert_eq!(second.try_take().unwrap(), 50_000);
    }

    #[test]
    fn readiness_events_fire_consumers() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        let h = sim.handle();
        let consumer = sim.spawn("flow", async move {
            store2.create(obj(0, 0), ClientId(0));
            let ready = store2.put_shard(obj(0, 0), 0, &dev2, 10).await;
            let store3 = store2.clone();
            let h2 = h.clone();
            h.spawn("producer", async move {
                h2.sleep(pathways_sim::SimDuration::from_micros(7)).await;
                store3.mark_ready(obj(0, 0), 0);
            });
            ready.wait().await;
            h.now().as_nanos()
        });
        sim.run_to_quiescence();
        assert_eq!(consumer.try_take().unwrap(), 7_000);
    }

    #[test]
    fn object_bytes_sums_shards() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            store2.put_shard(obj(0, 0), 1, &dev, 150).await;
            assert_eq!(store2.object_bytes(obj(0, 0)), 250);
            assert_eq!(store2.object_bytes(obj(9, 9)), 0);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn fail_object_frees_hbm_fires_events_and_records_error() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        sim.spawn("t", async move {
            let events = store2.declare(obj(0, 0), ClientId(0), 2);
            store2.put_shard(obj(0, 0), 0, &dev2, 100).await;
            assert_eq!(dev2.hbm().used(), 100);
            assert!(store2.fail_object(obj(0, 0), FailureReason::Device(DeviceId(0))));
            assert_eq!(dev2.hbm().used(), 0, "failed shards release HBM");
            assert!(events.iter().all(Event::is_set), "consumers unblock");
            let err = store2.object_error(obj(0, 0)).unwrap();
            assert_eq!(err.reason(), FailureReason::Device(DeviceId(0)));
            // A second failure does not overwrite the first reason.
            store2.fail_object(obj(0, 0), FailureReason::OwnerGone);
            assert_eq!(
                store2.object_error(obj(0, 0)).unwrap().reason(),
                FailureReason::Device(DeviceId(0))
            );
            // Late puts to a failed object are discarded but report ready.
            let ev = store2.put_shard(obj(0, 0), 1, &dev2, 100).await;
            assert!(ev.is_set());
            assert_eq!(dev2.hbm().used(), 0);
            // The entry drains through the normal refcount path.
            assert_eq!(store2.len(), 1);
            store2.release(obj(0, 0));
            assert!(store2.is_empty());
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn fail_objects_on_device_is_scoped_and_sorted() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let d0 = device(&sim, 0, 1_000);
        let d1 = device(&sim, 1, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.create(obj(2, 0), ClientId(0));
            store2.put_shard(obj(2, 0), 0, &d0, 10).await;
            store2.create(obj(1, 0), ClientId(0));
            store2.put_shard(obj(1, 0), 0, &d0, 10).await;
            store2.create(obj(3, 0), ClientId(0));
            store2.put_shard(obj(3, 0), 0, &d1, 10).await;
            let doomed =
                store2.fail_objects_on_device(DeviceId(0), FailureReason::Device(DeviceId(0)));
            assert_eq!(doomed, vec![obj(1, 0), obj(2, 0)]);
            assert!(
                store2.object_error(obj(3, 0)).is_none(),
                "other device intact"
            );
            assert_eq!(d1.hbm().used(), 10);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn missing_object_reports_owner_gone() {
        let store = ObjectStore::new();
        store.declare(obj(0, 0), ClientId(5), 1);
        assert!(store.object_error(obj(0, 0)).is_none());
        assert_eq!(store.owner_of(obj(0, 0)), Some(ClientId(5)));
        store.gc_client(ClientId(5));
        assert_eq!(
            store.object_error(obj(0, 0)).map(|e| e.reason()),
            Some(FailureReason::OwnerGone)
        );
        assert!(!store.fail_object(obj(0, 0), FailureReason::OwnerGone));
    }

    #[test]
    #[should_panic(expected = "stored twice")]
    fn duplicate_shard_panics() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        sim.spawn("t", async move {
            store.create(obj(0, 0), ClientId(0));
            store.put_shard(obj(0, 0), 0, &dev, 10).await;
            store.put_shard(obj(0, 0), 0, &dev, 10).await;
        });
        sim.run_to_quiescence();
    }
}
