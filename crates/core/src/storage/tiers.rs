//! Tier vocabulary and tier *backends*: HBM, host DRAM, and a
//! segmented append-only disk.
//!
//! The seed store modeled exactly one tier — device HBM — so every byte
//! of produced data died with its device and `ProducerFailed` was
//! terminal. [`TierConfig`] turns on the memory hierarchy the paper's
//! deployment sits on: under per-device HBM pressure the store spills
//! least-recently-used ready shards to host DRAM (and cascades DRAM
//! overflow to disk), periodic checkpoints copy completed sink objects
//! to disk, and the recovery manager restores or recomputes objects
//! lost to hardware death before surfacing an error. Every tier
//! transition is a virtual-time transfer cost on the simulation wheel
//! and is stamped onto the `tiers` trace track, so tiered runs replay
//! bit-identically.
//!
//! Each tier's byte accounting lives behind the [`TierBackend`] trait:
//!
//! * [`HbmBackend`] — a pure ledger; residency itself is owned by the
//!   per-device [`HbmPool`](pathways_device::HbmPool) leases, the
//!   backend just mirrors the bytes the *store* has pinned so
//!   conservation is checkable from one place.
//! * [`DramBackend`] — per-host spill ledgers (capacity decisions are
//!   per host).
//! * [`DiskBackend`] — an append-only segment format: every disk write
//!   (demoted shard, checkpoint epoch) allocates an [`ExtentRef`] in
//!   the active segment; a segment seals when full and is reclaimed
//!   once every extent in it has died. Live bytes ([`TierBackend::used`])
//!   drain to zero with the objects; *occupied* bytes (live + dead in
//!   unreclaimed segments) are what the disk durably holds — the metric
//!   checkpoint GC exists to bound.

use std::fmt;
use std::sync::Arc;

use pathways_net::{FxHashMap, FxHashSet, HostId, Topology};
use pathways_sim::{SimDuration, SimHandle, SimTime};

use super::index::{ObjectId, ObjectStore};
use super::placement::PlacementPolicy;

/// Where one shard's bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Pinned in a device's HBM (the only tier of the untiered store).
    Hbm,
    /// Spilled (or restored) to a host's DRAM; lost if that host dies.
    Dram,
    /// On cluster-durable disk; survives device and host death.
    Disk,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Hbm => write!(f, "hbm"),
            Tier::Dram => write!(f, "dram"),
            Tier::Disk => write!(f, "disk"),
        }
    }
}

/// Configuration of the tiered store and its recovery machinery.
///
/// Installed through
/// [`PathwaysConfig::tiers`](crate::PathwaysConfig::tiers); `None`
/// (the default) keeps the seed behavior: HBM only, no spill, no
/// checkpoints, `ProducerFailed` terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierConfig {
    /// Host-DRAM spill capacity per host.
    pub dram_per_host: u64,
    /// HBM↔DRAM staging bandwidth (PCIe class), bytes per second.
    pub hbm_dram_bw: u64,
    /// DRAM↔disk bandwidth, bytes per second.
    pub dram_disk_bw: u64,
    /// Cross-host staging bandwidth (DCN class) paid *on top of* the
    /// local leg when a placement policy spills or restores a shard
    /// into a remote host's DRAM.
    pub cross_host_bw: u64,
    /// Fixed per-operation disk access latency (seek + request).
    pub disk_latency: SimDuration,
    /// Capacity of one append-only disk segment: writes append into the
    /// active segment, a full segment seals, and a sealed segment whose
    /// extents have all died is reclaimed.
    pub disk_segment_bytes: u64,
    /// Periodic checkpoint cadence: completed sink objects are copied
    /// to disk at the next multiple of this interval. `None` disables
    /// checkpointing (recovery then relies on lineage alone).
    pub checkpoint_interval: Option<SimDuration>,
    /// Checkpoint-GC policy: keep the last K epochs of every object's
    /// checkpoint chain. Epochs older than K are reclaimed *unless*
    /// they still hold the newest durable copy of some shard (the
    /// restore set) — GC never collects an epoch a live restore could
    /// need.
    pub checkpoint_keep: u32,
    /// Which host's DRAM receives spilled and restored shards.
    pub placement: PlacementPolicy,
    /// Attempt restore-from-checkpoint, then recompute-via-lineage,
    /// before surfacing `ProducerFailed` for objects lost to hardware
    /// death.
    pub recovery: bool,
    /// Recovery attempts per object before the failure becomes terminal.
    pub max_recovery_attempts: u32,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            dram_per_host: 64 << 30,
            hbm_dram_bw: 16_000_000_000,
            dram_disk_bw: 2_000_000_000,
            cross_host_bw: 12_500_000_000,
            disk_latency: SimDuration::from_micros(200),
            disk_segment_bytes: 64 << 20,
            checkpoint_interval: Some(SimDuration::from_micros(500)),
            checkpoint_keep: 2,
            placement: PlacementPolicy::LocalFirst,
            recovery: true,
            max_recovery_attempts: 2,
        }
    }
}

impl TierConfig {
    /// Virtual time to move `bytes` between HBM and host DRAM.
    pub fn hbm_dram_time(&self, bytes: u64) -> SimDuration {
        xfer_time(bytes, self.hbm_dram_bw)
    }

    /// Virtual time to move `bytes` between DRAM and disk (one disk
    /// latency plus the bandwidth term).
    pub fn disk_time(&self, bytes: u64) -> SimDuration {
        self.disk_latency + xfer_time(bytes, self.dram_disk_bw)
    }

    /// Extra virtual time to stage `bytes` across hosts (remote spill
    /// or restore under a non-local placement policy).
    pub fn cross_host_time(&self, bytes: u64) -> SimDuration {
        xfer_time(bytes, self.cross_host_bw)
    }
}

/// One tier transition of one shard — spills, disk demotions, restores
/// and recompute materializations all log these (the store's
/// [`spill_events`](crate::ObjectStore::spill_events)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// The logical object.
    pub object: ObjectId,
    /// The shard that moved.
    pub shard: u32,
    /// Shard size.
    pub bytes: u64,
    /// Tier the bytes left.
    pub from: Tier,
    /// Tier the bytes landed in.
    pub to: Tier,
    /// Host whose DRAM is involved (accounting key for DRAM legs).
    pub host: HostId,
}

impl fmt::Display for SpillEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} {}B {}->{} ({})",
            self.object, self.shard, self.bytes, self.from, self.to, self.host
        )
    }
}

/// Duration of moving `bytes` at `bw` bytes/sec (u128 intermediate so
/// multi-GiB shards cannot overflow).
pub(crate) fn xfer_time(bytes: u64, bw: u64) -> SimDuration {
    let ns = (u128::from(bytes) * 1_000_000_000) / u128::from(bw.max(1));
    SimDuration::from_nanos(ns.min(u128::from(u64::MAX)) as u64)
}

/// Counters over all tier transitions so far (monotonic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// HBM → DRAM spills under HBM pressure.
    pub spills: u64,
    /// DRAM → disk demotions under DRAM pressure.
    pub demotions: u64,
    /// Disk checkpoint epochs committed.
    pub checkpoints: u64,
    /// Objects rematerialized from a checkpoint.
    pub restores: u64,
    /// Objects rematerialized by lineage recompute.
    pub recomputes: u64,
}

/// Subtracts from a tier byte ledger, treating underflow as a hard
/// invariant violation (the "no masking" accounting contract).
pub(crate) fn ledger_sub(ledger: &mut u64, bytes: u64, what: &str) {
    assert!(
        *ledger >= bytes,
        "{what} ledger underflow: accounting drift ({} < {bytes})",
        *ledger
    );
    *ledger -= bytes;
}

// ---------------------------------------------------------------------
// Tier backends
// ---------------------------------------------------------------------

/// Byte accounting of one storage tier. Charges and uncharges are
/// backend-specific (DRAM is keyed by host, disk by extent), so the
/// trait carries the tier-agnostic surface: identity, live bytes, and
/// the virtual-time transfer model the store's data path uses.
pub(crate) trait TierBackend {
    /// Which tier this backend accounts for.
    fn tier(&self) -> Tier;
    /// Live bytes currently charged to the tier.
    fn used(&self) -> u64;
    /// Virtual time to write `bytes` into this tier (from the tier
    /// above it).
    fn write_time(&self, cfg: &TierConfig, bytes: u64) -> SimDuration;
    /// Virtual time to stage `bytes` back out for a consuming read.
    fn read_time(&self, cfg: &TierConfig, bytes: u64) -> SimDuration;
}

/// HBM ledger: mirrors the bytes the store has pinned across all
/// devices (the leases themselves live in the per-device pools). Lets
/// [`ObjectStore::tiers_conserved`] recompute *every* tier from the
/// object table.
#[derive(Default)]
pub(crate) struct HbmBackend {
    used: u64,
}

impl HbmBackend {
    pub(crate) fn charge(&mut self, bytes: u64) {
        self.used += bytes;
    }

    pub(crate) fn uncharge(&mut self, bytes: u64) {
        ledger_sub(&mut self.used, bytes, "HBM");
    }
}

impl TierBackend for HbmBackend {
    fn tier(&self) -> Tier {
        Tier::Hbm
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn write_time(&self, _cfg: &TierConfig, _bytes: u64) -> SimDuration {
        SimDuration::ZERO
    }

    fn read_time(&self, _cfg: &TierConfig, _bytes: u64) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Host-DRAM spill ledgers, one per host (capacity decisions are per
/// host; see [`TierConfig::dram_per_host`]).
#[derive(Default)]
pub(crate) struct DramBackend {
    per_host: FxHashMap<HostId, u64>,
}

impl DramBackend {
    pub(crate) fn charge(&mut self, host: HostId, bytes: u64) {
        *self.per_host.entry(host).or_default() += bytes;
    }

    pub(crate) fn uncharge(&mut self, host: HostId, bytes: u64) {
        let used = self.per_host.entry(host).or_default();
        ledger_sub(used, bytes, "host-DRAM");
    }

    pub(crate) fn used_on(&self, host: HostId) -> u64 {
        self.per_host.get(&host).copied().unwrap_or(0)
    }

    pub(crate) fn per_host(&self) -> &FxHashMap<HostId, u64> {
        &self.per_host
    }
}

impl TierBackend for DramBackend {
    fn tier(&self) -> Tier {
        Tier::Dram
    }

    fn used(&self) -> u64 {
        self.per_host.values().sum()
    }

    fn write_time(&self, cfg: &TierConfig, bytes: u64) -> SimDuration {
        cfg.hbm_dram_time(bytes)
    }

    fn read_time(&self, cfg: &TierConfig, bytes: u64) -> SimDuration {
        cfg.hbm_dram_time(bytes)
    }
}

/// One allocation in the segmented disk: which segment holds the bytes.
/// Held by disk-tier shards and checkpoint epochs; uncharging the
/// extent is what lets its segment eventually be reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ExtentRef {
    pub(crate) segment: u32,
    pub(crate) bytes: u64,
}

/// One append-only disk segment.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Segment {
    /// Bytes appended so far (append cursor; never decreases).
    pub(crate) alloc: u64,
    /// Bytes of extents still alive.
    pub(crate) live: u64,
    /// Bytes of extents that died (await reclaim with the segment).
    pub(crate) dead: u64,
    /// Full (or force-sealed): no further appends.
    pub(crate) sealed: bool,
    /// Sealed and fully dead: space returned to the cluster.
    pub(crate) reclaimed: bool,
}

/// Observability snapshot of the disk backend's segment accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segments ever created.
    pub segments: u64,
    /// Segments sealed (full).
    pub sealed: u64,
    /// Sealed segments whose extents all died and were reclaimed.
    pub reclaimed: u64,
    /// Live bytes across all segments (drains to zero with the objects).
    pub live_bytes: u64,
    /// Live + dead bytes in unreclaimed segments — what the disk
    /// durably holds; checkpoint GC exists to bound this.
    pub occupied_bytes: u64,
}

/// Append-only segmented disk. Demoted shards and checkpoint epochs
/// charge extents in the active segment; a full segment seals; a sealed
/// segment whose live bytes drain to zero is reclaimed whole (the
/// log-structured reclaim unit).
pub(crate) struct DiskBackend {
    segment_bytes: u64,
    segments: Vec<Segment>,
    live: u64,
}

impl DiskBackend {
    pub(crate) fn new(segment_bytes: u64) -> Self {
        DiskBackend {
            segment_bytes: segment_bytes.max(1),
            segments: Vec::new(),
            live: 0,
        }
    }

    /// Appends `bytes` into the active segment (sealing and opening
    /// segments as needed) and returns the extent.
    pub(crate) fn charge(&mut self, bytes: u64) -> ExtentRef {
        let needs_new = match self.segments.last() {
            None => true,
            Some(seg) => seg.sealed || (seg.alloc > 0 && seg.alloc + bytes > self.segment_bytes),
        };
        if needs_new {
            if let Some(seg) = self.segments.last_mut() {
                if !seg.sealed {
                    seg.sealed = true;
                    Self::maybe_reclaim(seg);
                }
            }
            self.segments.push(Segment::default());
        }
        let idx = self.segments.len() - 1;
        let seg = &mut self.segments[idx];
        seg.alloc += bytes;
        seg.live += bytes;
        self.live += bytes;
        if seg.alloc >= self.segment_bytes {
            seg.sealed = true;
        }
        ExtentRef {
            segment: idx as u32,
            bytes,
        }
    }

    /// Kills one extent: its bytes flip live → dead, and a sealed
    /// segment whose last live extent died is reclaimed whole.
    pub(crate) fn uncharge(&mut self, ext: ExtentRef) {
        ledger_sub(&mut self.live, ext.bytes, "disk");
        let seg = &mut self.segments[ext.segment as usize];
        ledger_sub(&mut seg.live, ext.bytes, "disk segment");
        seg.dead += ext.bytes;
        Self::maybe_reclaim(seg);
    }

    fn maybe_reclaim(seg: &mut Segment) {
        if seg.sealed && seg.live == 0 && !seg.reclaimed {
            seg.reclaimed = true;
            seg.dead = 0;
        }
    }

    /// Live + dead bytes in unreclaimed segments.
    pub(crate) fn occupied(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| !s.reclaimed)
            .map(|s| s.live + s.dead)
            .sum()
    }

    pub(crate) fn stats(&self) -> SegmentStats {
        SegmentStats {
            segments: self.segments.len() as u64,
            sealed: self.segments.iter().filter(|s| s.sealed).count() as u64,
            reclaimed: self.segments.iter().filter(|s| s.reclaimed).count() as u64,
            live_bytes: self.live,
            occupied_bytes: self.occupied(),
        }
    }

    /// Internal consistency: the total ledger equals the per-segment
    /// live sums (checked by [`ObjectStore::tiers_conserved`]).
    pub(crate) fn segments_consistent(&self) -> bool {
        self.live == self.segments.iter().map(|s| s.live).sum::<u64>()
            && self
                .segments
                .iter()
                .all(|s| !s.reclaimed || (s.sealed && s.live == 0 && s.dead == 0))
    }
}

impl TierBackend for DiskBackend {
    fn tier(&self) -> Tier {
        Tier::Disk
    }

    fn used(&self) -> u64 {
        self.live
    }

    fn write_time(&self, cfg: &TierConfig, bytes: u64) -> SimDuration {
        cfg.disk_time(bytes)
    }

    fn read_time(&self, cfg: &TierConfig, bytes: u64) -> SimDuration {
        cfg.disk_time(bytes)
    }
}

// ---------------------------------------------------------------------
// Tier machinery state
// ---------------------------------------------------------------------

/// Tier machinery state, present only on tiered stores.
pub(crate) struct TierState {
    pub(crate) cfg: TierConfig,
    pub(crate) handle: SimHandle,
    pub(crate) topo: Arc<Topology>,
    /// LRU clock: bumped on every shard store/read.
    pub(crate) clock: u64,
    pub(crate) hbm: HbmBackend,
    pub(crate) dram: DramBackend,
    pub(crate) disk: DiskBackend,
    pub(crate) log: Vec<SpillEvent>,
    pub(crate) stats: TierStats,
    /// Round-robin cursor of the `Spread` placement policy.
    pub(crate) placement_cursor: u64,
    /// Hosts the fault injector declared dead — non-local placement
    /// policies never target them.
    pub(crate) down_hosts: FxHashSet<HostId>,
}

impl TierState {
    pub(crate) fn new(handle: SimHandle, topo: Arc<Topology>, cfg: TierConfig) -> Self {
        let disk = DiskBackend::new(cfg.disk_segment_bytes);
        TierState {
            cfg,
            handle,
            topo,
            clock: 0,
            hbm: HbmBackend::default(),
            dram: DramBackend::default(),
            disk,
            log: Vec::new(),
            stats: TierStats::default(),
            placement_cursor: 0,
            down_hosts: FxHashSet::default(),
        }
    }

    /// Uncharges every epoch of a dropped checkpoint chain.
    pub(crate) fn release_chain(&mut self, chain: &super::checkpoint::CheckpointChain) {
        for epoch in &chain.epochs {
            self.disk.uncharge(epoch.extent);
        }
    }
}

// ---------------------------------------------------------------------
// ObjectStore: tier data path (spill, demote, read penalties) and tier
// observability
// ---------------------------------------------------------------------

use pathways_device::DeviceHandle;
use pathways_net::DeviceId;

use super::index::unindex;

impl ObjectStore {
    /// The tier config, sim handle and topology, if this store is
    /// tiered.
    pub(crate) fn tier_env(&self) -> Option<(SimHandle, Arc<Topology>, TierConfig)> {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| (ts.handle.clone(), Arc::clone(&ts.topo), ts.cfg.clone()))
    }

    /// True if this store records lineage and recovers lost objects
    /// (tiered with `recovery` on). Gates the client's lineage
    /// registration so untiered runs keep seed-identical refcounts.
    pub fn lineage_enabled(&self) -> bool {
        self.inner
            .lock()
            .tier
            .as_ref()
            .is_some_and(|ts| ts.cfg.recovery)
    }

    /// Frees HBM on `device` until `bytes` fit (or nothing ready is
    /// left to spill), by moving least-recently-used ready shards to a
    /// host's DRAM at the configured staging bandwidth — cascading to
    /// disk when the DRAM budget overflows. The receiving host is the
    /// device's own under [`PlacementPolicy::LocalFirst`]; other
    /// policies may pick a remote host and pay the cross-host leg.
    /// No-op on untiered stores; callers then rely on classic HBM
    /// back-pressure.
    pub async fn ensure_room(&self, device: &DeviceHandle, bytes: u64) {
        let Some((handle, topo, _cfg)) = self.tier_env() else {
            return;
        };
        let d = device.id();
        let local = topo.host_of_device(d);
        loop {
            if device.hbm().free() >= bytes {
                return;
            }
            // LRU victim among ready HBM shards on this device; ties
            // break on (object, shard) so replay is order-independent.
            // The receiving host is chosen with the victim (placement
            // policy over live hosts).
            let victim = {
                let mut inner = self.inner.lock();
                let inner = &mut *inner;
                let mut best: Option<(u64, ObjectId, u32, u64)> = None;
                if let Some(ids) = inner.by_device.get(&d) {
                    for &oid in ids {
                        let Some(entry) = inner.objects.get(&oid) else {
                            continue;
                        };
                        for (s, sh) in &entry.shards {
                            if sh.tier == Tier::Hbm && sh.device == d && sh.ready.is_set() {
                                let key = (sh.last_access, oid, *s, sh.bytes);
                                if best.is_none_or(|b| (key.0, key.1, key.2) < (b.0, b.1, b.2)) {
                                    best = Some(key);
                                }
                            }
                        }
                    }
                }
                best.map(|(_, vid, vshard, vbytes)| {
                    let ts = inner.tier.as_mut().expect("tiered");
                    let host = ts.spill_host(local);
                    let mut cost = ts.dram.write_time(&ts.cfg, vbytes);
                    if host != local {
                        cost += ts.cfg.cross_host_time(vbytes);
                    }
                    (vid, vshard, vbytes, host, cost)
                })
            };
            let Some((vid, vshard, vbytes, host, cost)) = victim else {
                // Nothing spillable (all HBM residents are unready or
                // transient staging): fall back to back-pressure.
                return;
            };
            let t0 = handle.now();
            handle.sleep(cost).await;
            // Revalidate after the staging copy: the shard may have been
            // freed, failed, or spilled by a concurrent caller.
            let (committed, lease) = {
                let mut inner = self.inner.lock();
                let inner = &mut *inner;
                let mut lease = None;
                let mut ok = false;
                if let Some(entry) = inner.objects.get_mut(&vid) {
                    if let Some(sh) = entry.shards.get_mut(&vshard) {
                        if sh.tier == Tier::Hbm && sh.device == d && sh.ready.is_set() {
                            sh.tier = Tier::Dram;
                            sh.host = Some(host);
                            lease = sh.lease.take();
                            ok = true;
                        }
                    }
                }
                if ok {
                    if let Some(objs) = inner.by_device.get_mut(&d) {
                        unindex(objs, vid);
                    }
                    inner.by_dram_host.entry(host).or_default().push(vid);
                    if let Some(ts) = inner.tier.as_mut() {
                        ts.hbm.uncharge(vbytes);
                        ts.dram.charge(host, vbytes);
                        ts.stats.spills += 1;
                        ts.log.push(SpillEvent {
                            at: ts.handle.now(),
                            object: vid,
                            shard: vshard,
                            bytes: vbytes,
                            from: ts.hbm.tier(),
                            to: ts.dram.tier(),
                            host,
                        });
                    }
                }
                (ok, lease)
            };
            drop(lease); // HBM returns outside the store borrow
            if committed {
                handle.trace_span("tiers", format!("spill {vid}#{vshard}"), t0, handle.now());
                self.drain_dram(host).await;
            }
        }
    }

    /// Demotes oldest DRAM shards on `host` to disk until the host is
    /// back under its DRAM budget. Each demotion appends an extent into
    /// the disk backend's active segment.
    pub(crate) async fn drain_dram(&self, host: HostId) {
        let Some((handle, _topo, _cfg)) = self.tier_env() else {
            return;
        };
        loop {
            let victim = {
                let inner = self.inner.lock();
                let Some(ts) = inner.tier.as_ref() else {
                    return;
                };
                if ts.dram.used_on(host) <= ts.cfg.dram_per_host {
                    return;
                }
                let mut best: Option<(u64, ObjectId, u32, u64)> = None;
                if let Some(ids) = inner.by_dram_host.get(&host) {
                    for &oid in ids {
                        let Some(entry) = inner.objects.get(&oid) else {
                            continue;
                        };
                        for (s, sh) in &entry.shards {
                            if sh.tier == Tier::Dram && sh.host == Some(host) {
                                let key = (sh.last_access, oid, *s, sh.bytes);
                                if best.is_none_or(|b| (key.0, key.1, key.2) < (b.0, b.1, b.2)) {
                                    best = Some(key);
                                }
                            }
                        }
                    }
                }
                best.map(|(_, vid, vshard, vbytes)| {
                    (vid, vshard, vbytes, ts.disk.write_time(&ts.cfg, vbytes))
                })
            };
            let Some((vid, vshard, vbytes, cost)) = victim else {
                return;
            };
            let t0 = handle.now();
            handle.sleep(cost).await;
            let committed = {
                let mut inner = self.inner.lock();
                let inner = &mut *inner;
                let mut ok = false;
                if let Some(entry) = inner.objects.get_mut(&vid) {
                    if let Some(sh) = entry.shards.get_mut(&vshard) {
                        if sh.tier == Tier::Dram && sh.host == Some(host) {
                            sh.tier = Tier::Disk;
                            sh.host = None;
                            if let Some(ts) = inner.tier.as_mut() {
                                sh.extent = Some(ts.disk.charge(vbytes));
                            }
                            ok = true;
                        }
                    }
                }
                if ok {
                    if let Some(objs) = inner.by_dram_host.get_mut(&host) {
                        unindex(objs, vid);
                    }
                    if let Some(ts) = inner.tier.as_mut() {
                        ts.dram.uncharge(host, vbytes);
                        ts.stats.demotions += 1;
                        ts.log.push(SpillEvent {
                            at: ts.handle.now(),
                            object: vid,
                            shard: vshard,
                            bytes: vbytes,
                            from: ts.dram.tier(),
                            to: ts.disk.tier(),
                            host,
                        });
                    }
                }
                ok
            };
            if committed {
                handle.trace_span("tiers", format!("demote {vid}#{vshard}"), t0, handle.now());
            }
        }
    }

    /// Resolves shard `shard` of `id` for a consuming transfer: bumps
    /// the LRU clock and returns the device the read stages through plus
    /// the staging penalty for non-HBM tiers (the backend's
    /// [`TierBackend::read_time`]). `None` on untiered stores (the seed
    /// data path is then byte-identical) and for absent shards.
    pub fn read_shard(
        &self,
        id: ObjectId,
        shard: u32,
    ) -> Option<(DeviceId, pathways_sim::SimDuration)> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let ts = inner.tier.as_mut()?;
        let entry = inner.objects.get_mut(&id)?;
        let sh = entry.shards.get_mut(&shard)?;
        ts.clock += 1;
        sh.last_access = ts.clock;
        let penalty = match sh.tier {
            Tier::Hbm => ts.hbm.read_time(&ts.cfg, sh.bytes),
            Tier::Dram => ts.dram.read_time(&ts.cfg, sh.bytes),
            Tier::Disk => ts.disk.read_time(&ts.cfg, sh.bytes),
        };
        Some((sh.device, penalty))
    }

    // -----------------------------------------------------------------
    // Tier observability (benches, chaos invariants, tests)
    // -----------------------------------------------------------------

    /// Monotonic tier-transition counters (all zero on untiered stores).
    pub fn tier_stats(&self) -> TierStats {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.stats)
            .unwrap_or_default()
    }

    /// Every tier transition so far, in event order.
    pub fn spill_events(&self) -> Vec<SpillEvent> {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.log.clone())
            .unwrap_or_default()
    }

    /// Total bytes currently in host DRAM across all hosts.
    pub fn dram_used(&self) -> u64 {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.dram.used())
            .unwrap_or(0)
    }

    /// Total *live* bytes currently on disk (demoted shards +
    /// checkpoint epochs). Drains to zero with the objects.
    pub fn disk_used(&self) -> u64 {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.disk.used())
            .unwrap_or(0)
    }

    /// Bytes the disk durably holds: live + dead bytes in unreclaimed
    /// segments. The gap to [`ObjectStore::disk_used`] is garbage
    /// awaiting segment reclaim — what checkpoint GC bounds.
    pub fn disk_occupied(&self) -> u64 {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.disk.occupied())
            .unwrap_or(0)
    }

    /// Segment accounting snapshot of the disk backend.
    pub fn segment_stats(&self) -> SegmentStats {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.disk.stats())
            .unwrap_or_default()
    }

    /// The tier shard `shard` of `id` currently lives in.
    pub fn shard_tier(&self, id: ObjectId, shard: u32) -> Option<Tier> {
        self.inner
            .lock()
            .objects
            .get(&id)
            .and_then(|e| e.shards.get(&shard))
            .map(|s| s.tier)
    }

    /// Byte conservation across tiers: recomputes the per-host DRAM,
    /// disk, and HBM totals from the object table and checks them
    /// against the backends' incremental ledgers (plus the disk
    /// backend's internal segment sums). True on untiered stores. A
    /// `false` here means a tier transition charged and uncharged
    /// asymmetrically — the accounting-drift class of bug this
    /// subsystem makes un-maskable.
    pub fn tiers_conserved(&self) -> bool {
        let inner = self.inner.lock();
        let Some(ts) = inner.tier.as_ref() else {
            return true;
        };
        let mut hbm = 0u64;
        let mut dram: FxHashMap<HostId, u64> = FxHashMap::default();
        let mut disk = 0u64;
        for entry in inner.objects.values() {
            for sh in entry.shards.values() {
                match sh.tier {
                    Tier::Hbm => hbm += sh.bytes,
                    Tier::Dram => {
                        if let Some(h) = sh.host {
                            *dram.entry(h).or_default() += sh.bytes;
                        }
                    }
                    Tier::Disk => disk += sh.bytes,
                }
            }
            disk += entry.checkpoints.total();
        }
        hbm == ts.hbm.used()
            && disk == ts.disk.used()
            && ts.disk.segments_consistent()
            && ts
                .dram
                .per_host()
                .iter()
                .all(|(h, b)| dram.get(h).copied().unwrap_or(0) == *b)
            && dram.iter().all(|(h, b)| ts.dram.used_on(*h) == *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TierConfig::default();
        assert!(c.dram_per_host > 0 && c.hbm_dram_bw > c.dram_disk_bw);
        assert!(c.recovery && c.max_recovery_attempts >= 1);
        assert!(c.disk_segment_bytes > 0 && c.checkpoint_keep >= 1);
        assert_eq!(c.placement, PlacementPolicy::LocalFirst);
    }

    #[test]
    fn transfer_times_scale_with_bytes() {
        let c = TierConfig::default();
        assert_eq!(xfer_time(0, c.hbm_dram_bw), SimDuration::ZERO);
        assert_eq!(
            xfer_time(c.hbm_dram_bw, c.hbm_dram_bw),
            SimDuration::from_nanos(1_000_000_000)
        );
        // Disk ops always pay the fixed latency.
        assert!(c.disk_time(0) >= c.disk_latency);
        // No overflow at warehouse sizes.
        let big = xfer_time(u64::MAX, 1);
        assert!(big > SimDuration::ZERO);
    }

    #[test]
    fn disk_segments_seal_and_reclaim() {
        let mut disk = DiskBackend::new(100);
        let a = disk.charge(60);
        let b = disk.charge(60); // does not fit segment 0: seals it
        assert_eq!((a.segment, b.segment), (0, 1));
        let stats = disk.stats();
        assert_eq!(stats.segments, 2);
        assert_eq!(stats.sealed, 1);
        assert_eq!(stats.live_bytes, 120);
        assert_eq!(stats.occupied_bytes, 120);
        // Killing extent a drains segment 0 -> reclaimed whole.
        disk.uncharge(a);
        let stats = disk.stats();
        assert_eq!(stats.reclaimed, 1);
        assert_eq!(stats.live_bytes, 60);
        assert_eq!(stats.occupied_bytes, 60, "reclaimed space is returned");
        // Killing extent b leaves segment 1 unsealed: dead bytes occupy
        // it until a later seal.
        disk.uncharge(b);
        let stats = disk.stats();
        assert_eq!(stats.live_bytes, 0);
        assert_eq!(stats.occupied_bytes, 60, "unsealed garbage lingers");
        // The next charge that overflows segment 1 seals it -> reclaim.
        let c = disk.charge(80);
        assert_eq!(c.segment, 2);
        assert_eq!(disk.stats().reclaimed, 2);
        assert!(disk.segments_consistent());
    }

    #[test]
    fn oversized_extents_get_their_own_segment() {
        let mut disk = DiskBackend::new(100);
        let big = disk.charge(1000); // larger than a segment: sealed at once
        assert_eq!(big.segment, 0);
        assert_eq!(disk.stats().sealed, 1);
        disk.uncharge(big);
        assert_eq!(disk.stats().reclaimed, 1);
        assert_eq!(disk.occupied(), 0);
    }
}
