//! The checkpoint engine: incremental (delta) checkpoints with a
//! keep-last-K GC policy.
//!
//! A checkpoint of an object is not one monolithic disk copy but a
//! *chain* of epochs. Each epoch persists exactly the shards dirty
//! since the previous durable epoch — fresh productions and recomputes
//! dirty their shards, restores and commits clean them — so steady
//! state pays delta-sized disk writes instead of whole-object copies.
//! A restore reads the **restore set**: the newest durable copy of
//! every shard, drawn from however many epochs that takes (each touched
//! epoch costs one disk latency; the bytes stream at DRAM↔disk
//! bandwidth).
//!
//! Epochs are garbage-collected with a keep-last-K policy
//! ([`TierConfig::checkpoint_keep`](super::tiers::TierConfig)): after
//! every commit, epochs older than the last K are reclaimed **unless**
//! they still contribute a shard to the restore set. Retaining the
//! union of {last K} ∪ {restore set} makes the policy restore-safe *by
//! construction* — the epochs a restore walks are precisely the restore
//! set's, and those are never collected (property-tested below against
//! a shadow model). Reclaimed epochs uncharge their disk extents, which
//! is what lets sealed segments of the append-only disk be reclaimed
//! whole.

use pathways_net::FxHashSet;
use pathways_sim::{SimDuration, SimTime};

use super::index::{ObjectId, ObjectStore};
use super::tiers::{xfer_time, DiskBackend, ExtentRef};

/// One durable checkpoint epoch: the dirty shards it persisted, and the
/// disk extent holding their bytes.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointEpoch {
    /// Monotonic epoch number within the object's chain.
    pub(crate) epoch: u64,
    /// `(shard, bytes)` persisted by this epoch, ascending shard order.
    pub(crate) shards: Vec<(u32, u64)>,
    /// Total bytes of the epoch's extent.
    pub(crate) total: u64,
    /// Where the bytes live in the segmented disk.
    pub(crate) extent: ExtentRef,
}

/// An object's delta-checkpoint chain, oldest epoch first.
#[derive(Debug, Clone, Default)]
pub(crate) struct CheckpointChain {
    pub(crate) epochs: Vec<CheckpointEpoch>,
    pub(crate) next_epoch: u64,
}

impl CheckpointChain {
    pub(crate) fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Total disk bytes the chain currently charges.
    pub(crate) fn total(&self) -> u64 {
        self.epochs.iter().map(|e| e.total).sum()
    }

    /// Commits a new epoch persisting `shards` (already sorted), charging
    /// its extent on `disk`. Returns the epoch's byte total.
    pub(crate) fn commit(&mut self, shards: Vec<(u32, u64)>, disk: &mut DiskBackend) -> u64 {
        let total: u64 = shards.iter().map(|(_, b)| *b).sum();
        let extent = disk.charge(total);
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.epochs.push(CheckpointEpoch {
            epoch,
            shards,
            total,
            extent,
        });
        total
    }

    /// The restore set: the newest durable copy of every checkpointed
    /// shard, ascending shard order.
    pub(crate) fn restore_set(&self) -> Vec<(u32, u64)> {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut set: Vec<(u32, u64)> = Vec::new();
        for epoch in self.epochs.iter().rev() {
            for (shard, bytes) in &epoch.shards {
                if seen.insert(*shard) {
                    set.push((*shard, *bytes));
                }
            }
        }
        set.sort_unstable();
        set
    }

    /// Epoch numbers that contribute at least one shard to the restore
    /// set — the epochs a restore must read, and the epochs GC must
    /// never collect.
    pub(crate) fn reachable_epochs(&self) -> FxHashSet<u64> {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut reachable: FxHashSet<u64> = FxHashSet::default();
        for epoch in self.epochs.iter().rev() {
            for (shard, _) in &epoch.shards {
                if seen.insert(*shard) {
                    reachable.insert(epoch.epoch);
                }
            }
        }
        reachable
    }

    /// Keep-last-K GC: reclaims epochs older than the last `keep`
    /// unless they are restore-reachable, uncharging their extents.
    /// Restore-safe by construction: the retained set is
    /// {last K} ∪ {restore set}.
    pub(crate) fn gc(&mut self, keep: u32, disk: &mut DiskBackend) {
        let n = self.epochs.len();
        let keep = keep as usize;
        if n <= keep {
            return;
        }
        let reachable = self.reachable_epochs();
        let cutoff = n - keep;
        let mut kept = Vec::with_capacity(keep + 1);
        for (i, e) in std::mem::take(&mut self.epochs).into_iter().enumerate() {
            if i >= cutoff || reachable.contains(&e.epoch) {
                kept.push(e);
            } else {
                disk.uncharge(e.extent);
            }
        }
        self.epochs = kept;
    }
}

// ---------------------------------------------------------------------
// ObjectStore: checkpoint scheduling, commit, and restore planning
// ---------------------------------------------------------------------

impl ObjectStore {
    /// Schedules the disk checkpoint of `id` at the next multiple of the
    /// configured interval — scripted on the timer wheel, so checkpoint
    /// instants are part of the deterministic schedule. One-shot: the
    /// task validates, copies, commits and exits (no perpetual timer, so
    /// the simulation still quiesces).
    pub(crate) fn spawn_checkpoint(&self, id: ObjectId) {
        let Some((handle, _topo, cfg)) = self.tier_env() else {
            return;
        };
        let Some(interval) = cfg.checkpoint_interval else {
            return;
        };
        let iv = interval.as_nanos().max(1);
        let store = self.clone();
        let h = handle.clone();
        handle.spawn(format!("ckpt-{id}"), async move {
            let next = (h.now().as_nanos() / iv + 1).saturating_mul(iv);
            h.sleep_until(SimTime::from_nanos(next)).await;
            let Some(dirty) = store.checkpoint_dirty_bytes(id) else {
                return;
            };
            let t0 = h.now();
            h.sleep(cfg.disk_time(dirty)).await;
            if store.commit_checkpoint(id).is_some() {
                h.trace_span("tiers", format!("ckpt {id}"), t0, h.now());
            }
        });
    }

    /// Re-checks candidacy of `id` and schedules a (delta) checkpoint if
    /// it qualifies — the hook the recovery manager calls after a
    /// recompute re-dirtied an object's shards.
    pub(crate) fn maybe_schedule_checkpoint(&self, id: ObjectId) {
        let schedule = {
            let inner = self.inner.lock();
            let Some(entry) = inner.objects.get(&id) else {
                return;
            };
            matches!(
                inner.tier.as_ref(),
                Some(ts) if ts.cfg.checkpoint_interval.is_some()
            ) && entry.checkpoint_candidate()
        };
        if schedule {
            self.spawn_checkpoint(id);
        }
    }

    /// Bytes the next delta epoch of `id` would persist, if it is
    /// (still) a scheduled-checkpoint candidate.
    pub(crate) fn checkpoint_dirty_bytes(&self, id: ObjectId) -> Option<u64> {
        let inner = self.inner.lock();
        let entry = inner.objects.get(&id)?;
        if !entry.checkpoint_candidate() {
            return None;
        }
        Some(
            entry
                .shards
                .values()
                .filter(|s| s.dirty)
                .map(|s| s.bytes)
                .sum(),
        )
    }

    /// Commits a delta epoch for `id`'s dirty shards and runs keep-last-K
    /// GC on the chain. Revalidates candidacy (the copy took virtual
    /// time; the object may have failed, been released, or drained its
    /// dirty set to a racing task meanwhile). Scheduled-checkpoint path:
    /// requires lineage.
    pub(crate) fn commit_checkpoint(&self, id: ObjectId) -> Option<u64> {
        self.commit_epoch(id, true)
    }

    /// Immediately commits a delta epoch for `id` if it is complete,
    /// healthy, and has dirty shards — without requiring lineage and
    /// without modeling the disk-copy time. A forced-checkpoint knob for
    /// tests and storage-level benchmarks; the runtime path goes through
    /// the scheduled [`ObjectStore::mark_ready`] cadence instead.
    /// Returns the epoch's byte total.
    pub fn checkpoint_now(&self, id: ObjectId) -> Option<u64> {
        self.commit_epoch(id, false)
    }

    fn commit_epoch(&self, id: ObjectId, require_lineage: bool) -> Option<u64> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let entry = inner.objects.get_mut(&id)?;
        let candidate = if require_lineage {
            entry.checkpoint_candidate()
        } else {
            entry.checkpoint_complete_and_dirty()
        };
        if !candidate {
            return None;
        }
        let ts = inner.tier.as_mut()?;
        let mut shards: Vec<(u32, u64)> = entry
            .shards
            .iter()
            .filter(|(_, sh)| sh.dirty)
            .map(|(s, sh)| (*s, sh.bytes))
            .collect();
        shards.sort_unstable();
        let total = entry.checkpoints.commit(shards, &mut ts.disk);
        for sh in entry.shards.values_mut() {
            sh.dirty = false;
        }
        ts.stats.checkpoints += 1;
        entry.checkpoints.gc(ts.cfg.checkpoint_keep, &mut ts.disk);
        Some(total)
    }

    /// Marks shard `shard` of `id` modified since the last durable
    /// epoch, so the next delta checkpoint persists it again. Returns
    /// false if the object or shard is absent. (Recompute paths dirty
    /// shards implicitly; this is the explicit knob for storage-level
    /// tests and benchmarks modeling in-place updates.)
    pub fn dirty_shard(&self, id: ObjectId, shard: u32) -> bool {
        let mut inner = self.inner.lock();
        let Some(entry) = inner.objects.get_mut(&id) else {
            return false;
        };
        match entry.shards.get_mut(&shard) {
            Some(sh) => {
                sh.dirty = true;
                true
            }
            None => false,
        }
    }

    /// True if `id` currently has at least one durable checkpoint epoch.
    pub fn has_checkpoint(&self, id: ObjectId) -> bool {
        self.inner
            .lock()
            .objects
            .get(&id)
            .is_some_and(|e| !e.checkpoints.is_empty())
    }

    /// Number of durable epochs in `id`'s checkpoint chain (after GC).
    pub fn checkpoint_epochs(&self, id: ObjectId) -> usize {
        self.inner
            .lock()
            .objects
            .get(&id)
            .map(|e| e.checkpoints.epochs.len())
            .unwrap_or(0)
    }

    /// Bytes a restore of `id` would rematerialize (the restore set:
    /// newest durable copy of every checkpointed shard), if the entry is
    /// alive, unfailed, and checkpointed.
    pub fn checkpoint_restorable_bytes(&self, id: ObjectId) -> Option<u64> {
        let inner = self.inner.lock();
        let entry = inner.objects.get(&id)?;
        if entry.error.is_some() || entry.checkpoints.is_empty() {
            return None;
        }
        Some(
            entry
                .checkpoints
                .restore_set()
                .iter()
                .map(|(_, b)| *b)
                .sum(),
        )
    }

    /// Cost plan of restoring `id` from its checkpoint chain: the bytes
    /// to rematerialize and the modeled disk time (one disk latency per
    /// epoch the restore set touches, plus the bytes at DRAM↔disk
    /// bandwidth). `None` if the entry is gone, failed, or has no
    /// durable epoch.
    pub(crate) fn checkpoint_restore_plan(&self, id: ObjectId) -> Option<(u64, SimDuration)> {
        let inner = self.inner.lock();
        let entry = inner.objects.get(&id)?;
        if entry.error.is_some() || entry.checkpoints.is_empty() {
            return None;
        }
        let ts = inner.tier.as_ref()?;
        let bytes: u64 = entry
            .checkpoints
            .restore_set()
            .iter()
            .map(|(_, b)| *b)
            .sum();
        let epochs = entry.checkpoints.reachable_epochs().len() as u64;
        let latency =
            SimDuration::from_nanos(ts.cfg.disk_latency.as_nanos().saturating_mul(epochs));
        Some((bytes, latency + xfer_time(bytes, ts.cfg.dram_disk_bw)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::tiers::TierBackend;
    use pathways_net::FxHashMap;
    use proptest::prelude::*;

    /// Shadow model of a delta-checkpoint chain: the newest durable copy
    /// of each shard, tracked independently of the chain structure.
    #[derive(Default)]
    struct Shadow {
        newest: FxHashMap<u32, (u64, u64)>, // shard -> (epoch, bytes)
    }

    impl Shadow {
        fn commit(&mut self, epoch: u64, shards: &[(u32, u64)]) {
            for (s, b) in shards {
                self.newest.insert(*s, (epoch, *b));
            }
        }

        fn restore_set(&self) -> Vec<(u32, u64)> {
            let mut v: Vec<(u32, u64)> = self.newest.iter().map(|(s, (_, b))| (*s, *b)).collect();
            v.sort_unstable();
            v
        }

        fn reachable(&self) -> std::collections::BTreeSet<u64> {
            self.newest.values().map(|(e, _)| *e).collect()
        }
    }

    proptest! {
        /// Restore from base+deltas is byte-identical to what a full
        /// checkpoint of the current shard state would hold, GC never
        /// collects a restore-reachable epoch, and disk live bytes track
        /// the chain exactly (draining to zero when it drops).
        #[test]
        fn delta_chain_matches_shadow_model(
            schedule in proptest::collection::vec(
                (proptest::collection::vec(0u32..6, 1..7), 1u64..512),
                1..24,
            ),
            keep in 0u32..5,
            segment_bytes in 64u64..2048,
        ) {
            let mut disk = DiskBackend::new(segment_bytes);
            let mut chain = CheckpointChain::default();
            let mut shadow = Shadow::default();
            // Current logical contents of each shard (what a *full*
            // checkpoint taken now would persist).
            let mut current: FxHashMap<u32, u64> = FxHashMap::default();
            for (dirty_shards, bytes) in &schedule {
                // "Dirty" a random subset of shards with new contents,
                // then commit exactly those as a delta epoch.
                let dirty: std::collections::BTreeSet<u32> =
                    dirty_shards.iter().copied().collect();
                let delta: Vec<(u32, u64)> = dirty
                    .iter()
                    .map(|s| (*s, *bytes + u64::from(*s)))
                    .collect();
                for (s, b) in &delta {
                    current.insert(*s, *b);
                }
                let epoch = chain.next_epoch;
                chain.commit(delta.clone(), &mut disk);
                shadow.commit(epoch, &delta);
                chain.gc(keep, &mut disk);

                // (1) The restore set equals the newest-copy shadow and
                // matches what a full checkpoint of current state holds.
                let set = chain.restore_set();
                prop_assert_eq!(&set, &shadow.restore_set());
                let mut full: Vec<(u32, u64)> =
                    current.iter().map(|(s, b)| (*s, *b)).collect();
                full.sort_unstable();
                prop_assert_eq!(&set, &full, "restore base+deltas == full checkpoint");

                // (2) GC retained every restore-reachable epoch.
                let live: std::collections::BTreeSet<u64> =
                    chain.epochs.iter().map(|e| e.epoch).collect();
                for needed in shadow.reachable() {
                    prop_assert!(
                        live.contains(&needed),
                        "GC collected restore-reachable epoch {} (live: {:?})",
                        needed,
                        live
                    );
                }

                // (3) Disk live bytes == chain total; segments consistent.
                prop_assert_eq!(disk.used(), chain.total());
                prop_assert!(disk.segments_consistent());
                prop_assert!(disk.occupied() >= disk.used());
            }
            // (4) Dropping the chain drains disk live bytes to zero.
            for e in std::mem::take(&mut chain.epochs) {
                disk.uncharge(e.extent);
            }
            prop_assert_eq!(disk.used(), 0);
            prop_assert!(disk.segments_consistent());
        }
    }

    #[test]
    fn gc_respects_keep_and_reachability() {
        let mut disk = DiskBackend::new(1 << 20);
        let mut chain = CheckpointChain::default();
        // Epoch 0: shards {0,1}; epoch 1: shard 1; epoch 2: shard 1.
        chain.commit(vec![(0, 100), (1, 100)], &mut disk);
        chain.commit(vec![(1, 120)], &mut disk);
        chain.commit(vec![(1, 130)], &mut disk);
        // keep=1 would collect epochs 0 and 1 — but epoch 0 holds the
        // only durable copy of shard 0, so it must survive.
        chain.gc(1, &mut disk);
        let live: Vec<u64> = chain.epochs.iter().map(|e| e.epoch).collect();
        assert_eq!(live, vec![0, 2]);
        assert_eq!(chain.restore_set(), vec![(0, 100), (1, 130)]);
        assert_eq!(disk.used(), 200 + 130);
    }
}
