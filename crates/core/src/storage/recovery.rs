//! Object recovery: making `ProducerFailed` a last resort — now with
//! *chain* recovery over the lineage DAG.
//!
//! PR 4's healing recovers *capacity* — live slices remap off dead
//! hardware and the next submit re-lowers — but every byte already
//! produced onto that hardware was lost, and
//! [`ObjectError::ProducerFailed`](crate::ObjectError) was terminal. The
//! [`RecoveryManager`] closes that gap with the two mechanisms real
//! deployments use (Ray-style lineage per `crates/baselines`' Ray model,
//! durable checkpoints per the storage engine's checkpoint chains):
//!
//! 1. **Restore from checkpoint** — copy the restore set of the object's
//!    delta-checkpoint chain back into a live host's DRAM (one disk
//!    latency per epoch touched, bytes at disk bandwidth) and fire the
//!    readiness events.
//! 2. **Recompute via lineage** — re-submit the producing program with
//!    its recorded bindings through the client's normal path. Because
//!    the fault injector heals slices *before* recovery tasks run, the
//!    re-submission re-lowers onto the healed mapping (PR 4's
//!    re-lowering path) and lands on live devices. The fresh output is
//!    then staged into DRAM under the original object id.
//! 3. **Surface the error** — only when neither works (no checkpoint, no
//!    lineage, inputs themselves dead, attempts exhausted) does the
//!    object fail terminally and the failure cascade to consumers.
//!
//! A fault that wipes out *several* objects at once (a host death, a
//! cascading client failure) is absorbed as one **batch**: the fault
//! injector's synchronous walk enqueues every absorbed object and
//! launches a single chain-recovery task when the walk completes. The
//! task dedupes the batch — a shared upstream producer lost together
//! with its consumers is rebuilt **exactly once** — walks the lineage
//! DAG restricted to the batch in topological order (upstream first,
//! ascending-id tie-break, so replay is deterministic), and picks
//! per-node between checkpoint restore and lineage recompute by modeled
//! cost, falling back to the other path if the cheap one fails.
//!
//! While a recovery is in flight the store entry carries a `recovering`
//! event; consumers ([`ObjectRef::ready`](crate::ObjectRef::ready), the
//! input-transfer drivers) wait through it transparently, so the client
//! of a consuming run never observes the loss at all.

use pathways_sim::Lock;
use std::fmt;
use std::sync::{Arc, Weak};

use pathways_net::{DeviceId, FxHashMap, FxHashSet, HostId};

use crate::client::Client;
use crate::context::CoreCtx;
use crate::fault::FaultInjector;
use crate::objref::ObjectRef;
use crate::program::{CompId, Program};

use super::index::{FailureReason, ObjectId, ObjectStore, StoredShard};
use super::tiers::{Tier, TierConfig};

/// How to reproduce one object: the producing program plus the exact
/// input bindings of the original submission. The bindings hold
/// [`ObjectRef`] clones, so lineage *retains its inputs* — an input
/// cannot be garbage-collected while something downstream might need it
/// for recompute (this retention is what drives tier spill pressure in
/// long chains, and it is released with the object's last reference).
pub(crate) struct LineageRecord {
    pub(crate) client: Client,
    pub(crate) program: Program,
    pub(crate) bindings: Vec<(CompId, ObjectRef)>,
}

impl fmt::Debug for LineageRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LineageRecord")
            .field("client", &self.client.id())
            .field("inputs", &self.bindings.len())
            .finish()
    }
}

/// Counters over recovery outcomes (monotonic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Objects rematerialized from a disk checkpoint.
    pub restored: u64,
    /// Objects rematerialized by re-running their producing program.
    pub recomputed: u64,
    /// Recoveries that failed terminally (`ProducerFailed` surfaced).
    pub abandoned: u64,
}

/// Absorbs hardware loss of store objects into asynchronous recovery
/// instead of terminal failure. Owned by the [`FaultInjector`], which
/// consults it during the synchronous blast-radius walk: an *absorbed*
/// object is dropped from the walk's doomed set (no error recorded, no
/// cascade) and enqueued; the injector launches one chain-recovery task
/// per walk via [`RecoveryManager::launch_pending`].
pub(crate) struct RecoveryManager {
    core: Arc<CoreCtx>,
    cfg: TierConfig,
    /// Back-reference for the terminal path: an abandoned recovery must
    /// cascade the failure to consumers exactly as the injector would
    /// have, just later in virtual time.
    injector: Weak<FaultInjector>,
    /// Recovery attempts per object, against
    /// [`TierConfig::max_recovery_attempts`].
    attempts: Lock<FxHashMap<ObjectId, u32>>,
    stats: Lock<RecoveryStats>,
    /// Objects absorbed by the current blast-radius walk, awaiting the
    /// walk's single [`RecoveryManager::launch_pending`].
    pending: Lock<Vec<(ObjectId, FailureReason)>>,
}

impl fmt::Debug for RecoveryManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveryManager")
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl RecoveryManager {
    pub(crate) fn new(core: Arc<CoreCtx>, cfg: TierConfig, injector: Weak<FaultInjector>) -> Self {
        RecoveryManager {
            core,
            cfg,
            injector,
            attempts: Lock::new(FxHashMap::default()),
            stats: Lock::new(RecoveryStats::default()),
            pending: Lock::new(Vec::new()),
        }
    }

    /// Outcome counters so far.
    pub(crate) fn stats(&self) -> RecoveryStats {
        *self.stats.lock()
    }

    /// Tries to absorb the loss of `id`'s HBM shards on dead `device`.
    /// True means the object is (already or now) recovering and must not
    /// be failed or cascaded; false means the loss is terminal and the
    /// caller proceeds with `fail_object`.
    pub(crate) fn absorb_device_loss(
        self: &Arc<Self>,
        id: ObjectId,
        device: DeviceId,
        reason: FailureReason,
    ) -> bool {
        let store = &self.core.store;
        if store.recovering(id).is_some() {
            // An earlier fault already opened the window; this fault
            // just killed another replica of the same object.
            store.drop_shards_on_device(id, device);
            return true;
        }
        if !self.budget_and_lineage_allow(id) {
            return false;
        }
        store.drop_shards_on_device(id, device);
        if store.begin_recovery(id).is_none() {
            return false;
        }
        self.note_attempt(id);
        self.pending.lock().push((id, reason));
        true
    }

    /// Tries to absorb the loss of `id`'s DRAM shards spilled to dead
    /// `host`. Same contract as
    /// [`RecoveryManager::absorb_device_loss`].
    pub(crate) fn absorb_dram_loss(
        self: &Arc<Self>,
        id: ObjectId,
        host: HostId,
        reason: FailureReason,
    ) -> bool {
        let store = &self.core.store;
        if store.recovering(id).is_some() {
            store.drop_dram_on_host(id, host);
            return true;
        }
        if !self.budget_and_lineage_allow(id) {
            return false;
        }
        store.drop_dram_on_host(id, host);
        if store.begin_recovery(id).is_none() {
            return false;
        }
        self.note_attempt(id);
        self.pending.lock().push((id, reason));
        true
    }

    /// Tries to absorb the failure of a run whose sink `id` is — the
    /// in-flight production died with its hardware. No shards to drop up
    /// front (partial output is swept by the recompute commit); the
    /// object recovers by lineage re-submission (a checkpoint can only
    /// exist for a *completed* production, i.e. an earlier incarnation).
    pub(crate) fn absorb_run_loss(self: &Arc<Self>, id: ObjectId, reason: FailureReason) -> bool {
        let store = &self.core.store;
        if store.recovering(id).is_some() {
            return true;
        }
        if !self.budget_and_lineage_allow(id) {
            return false;
        }
        if store.begin_recovery(id).is_none() {
            return false;
        }
        self.note_attempt(id);
        self.pending.lock().push((id, reason));
        true
    }

    /// Common absorb gate: the object must be recoverable (checkpoint or
    /// healthy lineage) *and* within its attempt budget. Exhausting the
    /// budget on an otherwise-recoverable object counts as an
    /// abandonment — the loss was in principle survivable.
    fn budget_and_lineage_allow(&self, id: ObjectId) -> bool {
        if !self.core.store.recoverable(id) {
            return false;
        }
        if self.attempts.lock().get(&id).copied().unwrap_or(0) >= self.cfg.max_recovery_attempts {
            self.stats.lock().abandoned += 1;
            return false;
        }
        true
    }

    fn note_attempt(&self, id: ObjectId) {
        *self.attempts.lock().entry(id).or_insert(0) += 1;
    }

    /// Launches one chain-recovery task for everything the walk that
    /// just finished absorbed. Called by the fault injector at the end
    /// of each blast-radius walk (`inject`, client failure, cascade) —
    /// after slice healing, so lineage re-submissions re-lower onto
    /// healed devices. No-op when nothing was absorbed.
    pub(crate) fn launch_pending(self: &Arc<Self>) {
        let mut batch: Vec<(ObjectId, FailureReason)> = std::mem::take(&mut *self.pending.lock());
        if batch.is_empty() {
            return;
        }
        // Dedup by object (first reason wins): a shared upstream lost
        // through several consumers is rebuilt exactly once.
        batch.sort_by_key(|(id, _)| *id);
        batch.dedup_by_key(|(id, _)| *id);
        let this = Arc::clone(self);
        let name = format!("recover-chain-{}", batch[0].0);
        self.core.handle.spawn(name, async move {
            this.recover_chain(batch).await;
        });
    }

    /// Orders the batch by the lineage DAG restricted to the batch's
    /// ids: upstream producers before their consumers, ascending object
    /// id among peers — deterministic Kahn's algorithm.
    fn chain_order(&self, batch: &[(ObjectId, FailureReason)]) -> Vec<(ObjectId, FailureReason)> {
        let store = &self.core.store;
        let ids: FxHashSet<ObjectId> = batch.iter().map(|(id, _)| *id).collect();
        let reasons: FxHashMap<ObjectId, FailureReason> = batch.iter().copied().collect();
        let mut preds: FxHashMap<ObjectId, Vec<ObjectId>> = FxHashMap::default();
        let mut succs: FxHashMap<ObjectId, Vec<ObjectId>> = FxHashMap::default();
        for (id, _) in batch {
            if let Some(lineage) = store.lineage_of(*id) {
                let mut ups: Vec<ObjectId> = lineage
                    .bindings
                    .iter()
                    .map(|(_, r)| r.id())
                    .filter(|up| *up != *id && ids.contains(up))
                    .collect();
                ups.sort_unstable();
                ups.dedup();
                for up in ups {
                    preds.entry(*id).or_default().push(up);
                    succs.entry(up).or_default().push(*id);
                }
            }
        }
        let mut indeg: FxHashMap<ObjectId, usize> = batch
            .iter()
            .map(|(id, _)| (*id, preds.get(id).map(Vec::len).unwrap_or(0)))
            .collect();
        let mut ready: Vec<ObjectId> = batch
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| indeg[id] == 0)
            .collect();
        let mut order: Vec<ObjectId> = Vec::with_capacity(batch.len());
        while !ready.is_empty() {
            // Pop the smallest id (descending sort, pop from the back).
            ready.sort_unstable_by(|a, b| b.cmp(a));
            let id = ready.pop().expect("non-empty");
            order.push(id);
            if let Some(downs) = succs.get(&id) {
                for down in downs {
                    let d = indeg.get_mut(down).expect("batch member");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(*down);
                    }
                }
            }
        }
        if order.len() < batch.len() {
            // Defensive: a cycle cannot arise from producer lineage, but
            // if it ever did, recover the remainder in id order rather
            // than dropping it.
            let seen: FxHashSet<ObjectId> = order.iter().copied().collect();
            let mut rest: Vec<ObjectId> = ids.difference(&seen).copied().collect();
            rest.sort_unstable();
            order.extend(rest);
        }
        order.into_iter().map(|id| (id, reasons[&id])).collect()
    }

    /// Rebuilds a batch of lost objects: topological order over the
    /// lineage DAG, per-node restore-vs-recompute by modeled cost,
    /// fallback to the other path on failure, one terminal cascade at
    /// the end for everything unrecoverable.
    async fn recover_chain(self: Arc<Self>, batch: Vec<(ObjectId, FailureReason)>) {
        let order = self.chain_order(&batch);
        let mut terminal: Vec<ObjectId> = Vec::new();
        for (id, reason) in order {
            if !self.recover_node(id, reason).await {
                terminal.push(id);
            }
        }
        if !terminal.is_empty() {
            if let Some(inj) = self.injector.upgrade() {
                inj.cascade_failure(&terminal);
            }
        }
    }

    /// Rebuilds one object. Returns true if the object was recovered (or
    /// became moot: released / settled elsewhere); false if the failure
    /// is terminal (the object has been failed; the caller cascades).
    async fn recover_node(self: &Arc<Self>, id: ObjectId, reason: FailureReason) -> bool {
        let store = self.core.store.clone();
        if !store.contains(id) {
            return true; // released while the batch was queued
        }
        // Per-node cost choice: modeled restore time (epochs touched ×
        // disk latency + bytes at disk bandwidth) vs the producing
        // program's estimated device time. Restore wins ties.
        let restore_cost = store.checkpoint_restore_plan(id).map(|(_, t)| t);
        let recompute_cost = store
            .lineage_of(id)
            .filter(|l| l.bindings.iter().all(|(_, r)| r.error().is_none()))
            .map(|l| l.program.estimated_device_time());
        let restore_first = match (restore_cost, recompute_cost) {
            (Some(rt), Some(ct)) => rt <= ct,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if restore_first {
            if self.try_restore(id).await {
                return true;
            }
            if !store.contains(id) {
                return true;
            }
            if self.try_recompute(id).await {
                return true;
            }
        } else {
            if self.try_recompute(id).await {
                return true;
            }
            if !store.contains(id) {
                return true;
            }
            if self.try_restore(id).await {
                return true;
            }
        }
        // Terminal: surface ProducerFailed; the chain driver cascades.
        if !store.contains(id) {
            return true;
        }
        self.stats.lock().abandoned += 1;
        store.fail_object(id, reason);
        false
    }

    /// Restore from the checkpoint chain: the restore set streams into a
    /// live host's DRAM, then every shard is servable again.
    async fn try_restore(&self, id: ObjectId) -> bool {
        let h = self.core.handle.clone();
        let store = self.core.store.clone();
        let Some((_bytes, time)) = store.checkpoint_restore_plan(id) else {
            return false;
        };
        let Some((device, host)) = self.restore_target() else {
            return false;
        };
        let t0 = h.now();
        h.sleep(time).await;
        if store.complete_restore(id, device, host) {
            h.trace_span("tiers", format!("restore {id}"), t0, h.now());
            self.stats.lock().restored += 1;
            return true;
        }
        false
    }

    /// Recompute via lineage: re-submit the producing program with its
    /// original bindings. Stale preparations re-lower against the healed
    /// mapping inside submit_with (PR 4's path), so the recompute lands
    /// on live devices without any special casing.
    async fn try_recompute(&self, id: ObjectId) -> bool {
        let h = self.core.handle.clone();
        let store = self.core.store.clone();
        let Some(lineage) = store.lineage_of(id) else {
            return false;
        };
        if !lineage.bindings.iter().all(|(_, r)| r.error().is_none()) {
            return false;
        }
        let t0 = h.now();
        let prepared = lineage.client.prepare(&lineage.program);
        let Ok(run) = lineage
            .client
            .submit_with(&prepared, &lineage.bindings)
            .await
        else {
            return false;
        };
        let out = run.object_ref(id.comp);
        let result = run.finish().await;
        let mut done = false;
        if let Some(out) = out {
            if out.ready().await.is_ok() {
                // Stage the fresh output into DRAM under the original id
                // (one HBM->DRAM copy).
                h.sleep(self.cfg.hbm_dram_time(out.total_bytes())).await;
                let topo = Arc::clone(self.core.fabric.topology());
                let shards: Vec<(u32, u64, DeviceId, HostId)> = out
                    .devices()
                    .iter()
                    .enumerate()
                    .map(|(s, d)| (s as u32, out.bytes_per_shard(), *d, topo.host_of_device(*d)))
                    .collect();
                if store.complete_recompute(id, &shards) {
                    h.trace_span("tiers", format!("recompute {id}"), t0, h.now());
                    self.stats.lock().recomputed += 1;
                    done = true;
                }
            }
        }
        drop(result); // releases the recompute copy
        if done {
            // The recompute re-dirtied the shards: cut a delta epoch at
            // the next checkpoint boundary.
            store.maybe_schedule_checkpoint(id);
        }
        done
    }

    /// Live `(device, host)` restore candidates in host order — where
    /// checkpoint restores stage their data. The placement policy picks
    /// among them (`LocalFirst` keeps the seed choice: the first).
    fn restore_target(&self) -> Option<(DeviceId, HostId)> {
        let topo = Arc::clone(self.core.fabric.topology());
        let failures = &self.core.failures;
        let mut hosts: Vec<HostId> = topo.hosts().collect();
        hosts.sort();
        let mut candidates: Vec<(DeviceId, HostId)> = Vec::new();
        for h in hosts {
            if failures.host_dead(h) {
                continue;
            }
            let mut devs: Vec<DeviceId> = topo.devices_of_host(h).collect();
            devs.sort();
            if let Some(d) = devs.into_iter().find(|d| !failures.device_dead(*d)) {
                candidates.push((d, h));
            }
        }
        self.core.store.choose_restore_target(&candidates)
    }
}

// ---------------------------------------------------------------------
// ObjectStore: recovery surfaces (driven by the RecoveryManager and the
// fault injector)
// ---------------------------------------------------------------------

impl ObjectStore {
    /// The in-flight recovery gate of `id`, if a restore/recompute is
    /// rebuilding it. Consumers loop-wait on this before trusting
    /// [`ObjectStore::object_error`]; it fires when recovery completes
    /// (shards back, no error) or fails terminally (error recorded).
    pub fn recovering(&self, id: ObjectId) -> Option<pathways_sim::sync::Event> {
        self.inner
            .lock()
            .objects
            .get(&id)
            .and_then(|e| e.recovering.clone())
    }

    /// Records how to recompute `id` (first writer wins; repeat submits
    /// of an already-declared sink keep the original lineage).
    pub(crate) fn set_lineage(&self, id: ObjectId, lineage: Arc<LineageRecord>) {
        if let Some(entry) = self.inner.lock().objects.get_mut(&id) {
            if entry.lineage.is_none() {
                entry.lineage = Some(lineage);
            }
        }
    }

    /// The lineage record of `id`, if one was registered.
    pub(crate) fn lineage_of(&self, id: ObjectId) -> Option<Arc<LineageRecord>> {
        self.inner
            .lock()
            .objects
            .get(&id)
            .and_then(|e| e.lineage.clone())
    }

    /// True if `id` exists, is not failed, and could be recovered:
    /// checkpoint chain on disk, or lineage whose inputs are themselves
    /// error-free.
    pub(crate) fn recoverable(&self, id: ObjectId) -> bool {
        let (ckpt, lineage) = {
            let inner = self.inner.lock();
            let Some(entry) = inner.objects.get(&id) else {
                return false;
            };
            if entry.error.is_some() {
                return false;
            }
            (!entry.checkpoints.is_empty(), entry.lineage.clone())
        };
        // The input probes re-borrow the store; they must run outside.
        ckpt || lineage.is_some_and(|l| l.bindings.iter().all(|(_, r)| r.error().is_none()))
    }

    /// Opens the recovery window on `id`: consumers wait on the returned
    /// event instead of observing the transient shard gap. `None` if the
    /// object is gone, failed, or already recovering (the first recovery
    /// owns the window).
    pub(crate) fn begin_recovery(&self, id: ObjectId) -> Option<pathways_sim::sync::Event> {
        let mut inner = self.inner.lock();
        let entry = inner.objects.get_mut(&id)?;
        if entry.error.is_some() || entry.recovering.is_some() {
            return None;
        }
        let ev = pathways_sim::sync::Event::new();
        entry.recovering = Some(ev.clone());
        Some(ev)
    }

    /// Drops the HBM shards of `id` held on `device` (lost with the
    /// hardware) *without* failing the object — the recovery-absorb
    /// path. Returns the bytes dropped.
    pub(crate) fn drop_shards_on_device(&self, id: ObjectId, device: DeviceId) -> u64 {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let taken: Vec<StoredShard> = {
            let Some(entry) = inner.objects.get_mut(&id) else {
                return 0;
            };
            let keys: Vec<u32> = entry
                .shards
                .iter()
                .filter(|(_, s)| s.tier == Tier::Hbm && s.device == device)
                .map(|(k, _)| *k)
                .collect();
            keys.into_iter()
                .filter_map(|k| entry.shards.remove(&k))
                .collect()
        };
        let mut bytes = 0;
        for sh in &taken {
            inner.untier_shard(id, sh);
            bytes += sh.bytes;
        }
        bytes
    }

    /// Drops the DRAM shards of `id` spilled to `host` (lost with the
    /// host) without failing the object. Returns the bytes dropped.
    pub(crate) fn drop_dram_on_host(&self, id: ObjectId, host: HostId) -> u64 {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let taken: Vec<StoredShard> = {
            let Some(entry) = inner.objects.get_mut(&id) else {
                return 0;
            };
            let keys: Vec<u32> = entry
                .shards
                .iter()
                .filter(|(_, s)| s.tier == Tier::Dram && s.host == Some(host))
                .map(|(k, _)| *k)
                .collect();
            keys.into_iter()
                .filter_map(|k| entry.shards.remove(&k))
                .collect()
        };
        let mut bytes = 0;
        for sh in &taken {
            inner.untier_shard(id, sh);
            bytes += sh.bytes;
        }
        bytes
    }

    /// Rematerializes the missing shards of `id` from its checkpoint
    /// chain's restore set into `host`'s DRAM (reads staged through
    /// `device`), fires every readiness event, and closes the recovery
    /// window. The chain itself stays on disk — it remains restorable;
    /// restored shards are *clean* (a delta checkpoint after a pure
    /// restore persists nothing). Returns false if the entry is gone or
    /// terminally failed (the window, if any, is closed regardless).
    pub(crate) fn complete_restore(&self, id: ObjectId, device: DeviceId, host: HostId) -> bool {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let Some(entry) = inner.objects.get_mut(&id) else {
            return false;
        };
        if entry.error.is_some() {
            if let Some(rec) = entry.recovering.take() {
                rec.set();
            }
            return false;
        }
        if entry.checkpoints.is_empty() {
            return false;
        }
        let set = entry.checkpoints.restore_set();
        let Some(ts) = inner.tier.as_mut() else {
            return false;
        };
        let at = ts.handle.now();
        for (shard, bytes) in &set {
            if entry.shards.contains_key(shard) {
                continue;
            }
            ts.clock += 1;
            let ready = entry.ready.entry(*shard).or_default().clone();
            entry.shards.insert(
                *shard,
                StoredShard {
                    device,
                    bytes: *bytes,
                    lease: None,
                    ready,
                    tier: Tier::Dram,
                    host: Some(host),
                    last_access: ts.clock,
                    dirty: false,
                    extent: None,
                },
            );
            ts.dram.charge(host, *bytes);
            inner.by_dram_host.entry(host).or_default().push(id);
            ts.log.push(super::tiers::SpillEvent {
                at,
                object: id,
                shard: *shard,
                bytes: *bytes,
                from: Tier::Disk,
                to: Tier::Dram,
                host,
            });
        }
        ts.stats.restores += 1;
        for ev in entry.ready.values() {
            ev.set();
        }
        if let Some(rec) = entry.recovering.take() {
            rec.set();
        }
        true
    }

    /// Replaces the shards of `id` with freshly recomputed copies
    /// staged into DRAM (one `(shard, bytes, device, host)` per shard of
    /// the recompute run's output), fires every readiness event, and
    /// closes the recovery window. Leftover shards of the aborted
    /// original production are dropped first. Recomputed shards are
    /// *dirty* — the next delta checkpoint persists them.
    pub(crate) fn complete_recompute(
        &self,
        id: ObjectId,
        shards: &[(u32, u64, DeviceId, HostId)],
    ) -> bool {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let old: Vec<StoredShard> = {
            let Some(entry) = inner.objects.get_mut(&id) else {
                return false;
            };
            if entry.error.is_some() {
                if let Some(rec) = entry.recovering.take() {
                    rec.set();
                }
                return false;
            }
            entry.shards.drain().map(|(_, s)| s).collect()
        };
        for sh in &old {
            inner.untier_shard(id, sh);
        }
        drop(old); // surviving leases return
        let Some(entry) = inner.objects.get_mut(&id) else {
            return false;
        };
        let Some(ts) = inner.tier.as_mut() else {
            return false;
        };
        let at = ts.handle.now();
        for (shard, bytes, device, host) in shards {
            ts.clock += 1;
            let ready = entry.ready.entry(*shard).or_default().clone();
            entry.shards.insert(
                *shard,
                StoredShard {
                    device: *device,
                    bytes: *bytes,
                    lease: None,
                    ready,
                    tier: Tier::Dram,
                    host: Some(*host),
                    last_access: ts.clock,
                    dirty: true,
                    extent: None,
                },
            );
            ts.dram.charge(*host, *bytes);
            inner.by_dram_host.entry(*host).or_default().push(id);
            ts.log.push(super::tiers::SpillEvent {
                at,
                object: id,
                shard: *shard,
                bytes: *bytes,
                from: Tier::Hbm,
                to: Tier::Dram,
                host: *host,
            });
        }
        ts.stats.recomputes += 1;
        for ev in entry.ready.values() {
            ev.set();
        }
        if let Some(rec) = entry.recovering.take() {
            rec.set();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{device, obj, tiered};
    use super::*;
    use pathways_net::ClientId;
    use pathways_sim::sync::Event;
    use pathways_sim::Sim;

    #[test]
    fn tiered_duplicate_put_during_recovery_is_discarded() {
        let mut sim = Sim::new(0);
        let store = tiered(&sim);
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.declare(obj(0, 0), ClientId(0), 1);
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            // A recovery window turns the would-be "stored twice" panic
            // into a discard (the stale write raced the recovery).
            let win = store2.begin_recovery(obj(0, 0)).unwrap();
            let ev = store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            assert!(!ev.is_set());
            assert_eq!(dev.hbm().used(), 100);
            assert!(!win.is_set());
            store2.release(obj(0, 0));
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn recompute_rematerializes_shards_in_dram() {
        let mut sim = Sim::new(0);
        let store = tiered(&sim);
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            let events = store2.declare(obj(0, 0), ClientId(0), 2);
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            store2.put_shard(obj(0, 0), 1, &dev, 100).await;
            store2.mark_ready(obj(0, 0), 0);
            store2.mark_ready(obj(0, 0), 1);
            // No lineage -> the scheduled-checkpoint path declines.
            assert!(store2.commit_checkpoint(obj(0, 0)).is_none());
            store2.drop_shards_on_device(obj(0, 0), pathways_net::DeviceId(0));
            assert_eq!(dev.hbm().used(), 0);
            assert_eq!(store2.object_bytes(obj(0, 0)), 0);
            // Recovery window + restore path (no checkpoint: restore is
            // a no-op returning false, window survives until recompute
            // or terminal failure closes it).
            let win = store2.begin_recovery(obj(0, 0)).unwrap();
            assert!(store2.checkpoint_restore_plan(obj(0, 0)).is_none());
            let ok = store2.complete_recompute(
                obj(0, 0),
                &[
                    (0, 100, pathways_net::DeviceId(0), HostId(0)),
                    (1, 100, pathways_net::DeviceId(1), HostId(0)),
                ],
            );
            assert!(ok);
            assert!(win.is_set(), "recovery window closes");
            assert!(store2.recovering(obj(0, 0)).is_none());
            assert_eq!(store2.object_bytes(obj(0, 0)), 200);
            assert_eq!(store2.shard_tier(obj(0, 0), 0), Some(Tier::Dram));
            assert_eq!(store2.dram_used(), 200);
            assert!(events.iter().all(Event::is_set));
            assert!(store2.tiers_conserved());
            store2.release(obj(0, 0));
            assert!(store2.tiers_conserved());
            assert_eq!(store2.dram_used(), 0);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn restore_uses_the_delta_chain_restore_set() {
        let mut sim = Sim::new(0);
        let store = tiered(&sim);
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.declare(obj(0, 0), ClientId(0), 2);
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            store2.put_shard(obj(0, 0), 1, &dev, 100).await;
            store2.mark_ready(obj(0, 0), 0);
            store2.mark_ready(obj(0, 0), 1);
            // Base epoch persists both shards; a delta persists shard 1.
            assert_eq!(store2.checkpoint_now(obj(0, 0)), Some(200));
            assert!(store2.dirty_shard(obj(0, 0), 1));
            assert_eq!(store2.checkpoint_now(obj(0, 0)), Some(100));
            assert_eq!(store2.checkpoint_epochs(obj(0, 0)), 2);
            assert_eq!(store2.checkpoint_restorable_bytes(obj(0, 0)), Some(200));
            assert_eq!(store2.disk_used(), 300, "base + delta live on disk");
            // Lose the live copies, restore from base+delta.
            store2.drop_shards_on_device(obj(0, 0), pathways_net::DeviceId(0));
            let win = store2.begin_recovery(obj(0, 0)).unwrap();
            let (bytes, _time) = store2.checkpoint_restore_plan(obj(0, 0)).unwrap();
            assert_eq!(bytes, 200, "restore set = newest copy of each shard");
            assert!(store2.complete_restore(obj(0, 0), pathways_net::DeviceId(0), HostId(0)));
            assert!(win.is_set());
            assert_eq!(store2.object_bytes(obj(0, 0)), 200);
            assert_eq!(store2.dram_used(), 200);
            // Restored shards are clean: no new epoch to cut.
            assert!(store2.checkpoint_now(obj(0, 0)).is_none());
            assert!(store2.tiers_conserved());
            store2.release(obj(0, 0));
            assert_eq!(store2.disk_used(), 0, "chain uncharges with the object");
            assert!(store2.tiers_conserved());
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn fail_object_closes_recovery_window_and_settles_ledgers() {
        let mut sim = Sim::new(0);
        let store = tiered(&sim);
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.declare(obj(0, 0), ClientId(0), 1);
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            let win = store2.begin_recovery(obj(0, 0)).unwrap();
            // A second recovery cannot open a nested window.
            assert!(store2.begin_recovery(obj(0, 0)).is_none());
            store2.fail_object(obj(0, 0), FailureReason::Device(pathways_net::DeviceId(0)));
            assert!(win.is_set(), "terminal failure closes the window");
            assert!(store2.recovering(obj(0, 0)).is_none());
            assert!(store2.object_error(obj(0, 0)).is_some());
            assert!(store2.tiers_conserved());
            store2.release(obj(0, 0));
        });
        sim.run_to_quiescence();
    }
}
