//! Lowering a traced program to a PLAQUE dataflow, and the operators
//! that execute it.
//!
//! §4.3: *"The low-level PATHWAYS IR is converted directly to a PLAQUE
//! program, represented as a dataflow graph."* [`prepare`] is that
//! conversion: each computation becomes one sharded node (one shard per
//! device), each IR data edge becomes a *forward* edge (output futures +
//! data-ready signals) plus a *backward* edge (consumer input-buffer
//! addresses — the handshake of Figure 4), and every sink computation
//! gains an edge to a single-shard `Result` node at the client's host
//! that delivers output handles back to the client.
//!
//! External-input placeholders ([`crate::ProgramBuilder::input`])
//! lower to [`InputOperator`] nodes on
//! the *client's* host: virtual producers that replay another program's
//! output (an [`ObjectRef`](crate::ObjectRef) bound at submit time)
//! into the consumer's input buffers. Everything control-plane — the
//! address handshake, scheduling, buffer allocation, PCIe enqueue —
//! proceeds eagerly; only the data movement (and hence the consuming
//! *kernel*, which gates on its input futures inside the device queue)
//! waits for the producer's per-shard readiness events in the object
//! store. That is the paper's parallel asynchronous dispatch, extended
//! across program boundaries.

use pathways_sim::hash::FxHashMap;
use std::collections::BTreeMap;
use std::sync::Arc;

use pathways_net::{ClientId, DeviceId, HostId, IslandId};
use pathways_plaque::{EdgeId as PEdge, Emitter, Graph, GraphBuilder, Operator, ShardCtx, Tuple};
use pathways_sim::sync::Event;
use pathways_sim::{join_all, SimDuration};

use crate::context::CoreCtx;
use crate::exec::CompRegistration;
use crate::objref::InputBinding;
use crate::program::{CompId, Program, ShardMapping};
use crate::sched::CompSubmit;
use crate::storage::ObjectId;

/// Control-tuple payloads on forward edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FwdSignal {
    /// Producer enqueued its kernel (or, for an external input, the
    /// bound `ObjectRef` already is the future); carries the output
    /// future.
    Future,
    /// The producer's output has been transferred into the consumer's
    /// input buffer.
    Data,
}

/// Payload on backward edges: consumer's input buffer is allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AddrSignal;

/// Payload on sink→Result edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CompletionSignal {
    pub comp: CompId,
    pub object: ObjectId,
}

const SIGNAL_BYTES: u64 = 16;

/// Immutable lowered-program structures shared by all shard operators.
pub struct ProgInfo {
    /// The traced program.
    pub program: Program,
    /// Owning client.
    pub client: ClientId,
    /// Trace label.
    pub label: String,
    /// Shard count per computation (inputs included).
    pub shards: Vec<u32>,
    /// Physical devices per computation (snapshot at lowering time).
    /// Empty for external inputs — their devices come from the bound
    /// `ObjectRef` at run time.
    pub devices: Vec<Vec<DeviceId>>,
    /// Host of each shard of each computation (inputs: the client host).
    pub hosts: Vec<Vec<HostId>>,
    /// Plaque forward edge per program edge index.
    pub fwd_edges: Vec<PEdge>,
    /// Plaque backward edge per program edge index.
    pub back_edges: Vec<PEdge>,
    /// Plaque edge from each sink computation to the Result node.
    pub result_edges: BTreeMap<CompId, PEdge>,
}

impl std::fmt::Debug for ProgInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgInfo")
            .field("program", &self.program.name())
            .field("client", &self.client)
            .finish()
    }
}

impl ProgInfo {
    /// Producer shards feeding shard `dst_shard` on program edge `e`.
    pub fn feeders(&self, e: usize, dst_shard: u32) -> Vec<u32> {
        let edge = &self.program.edges()[e];
        match edge.mapping {
            ShardMapping::OneToOne => vec![dst_shard],
            ShardMapping::AllToAll => (0..self.shards[edge.src.index()]).collect(),
        }
    }

    /// Consumer shards fed by shard `src_shard` on program edge `e`.
    pub fn feeds(&self, e: usize, src_shard: u32) -> Vec<u32> {
        let edge = &self.program.edges()[e];
        match edge.mapping {
            ShardMapping::OneToOne => vec![src_shard],
            ShardMapping::AllToAll => (0..self.shards[edge.dst.index()]).collect(),
        }
    }

    /// Bytes moved per (src shard, dst shard) pair on program edge `e`.
    pub fn pair_bytes(&self, e: usize) -> u64 {
        let edge = &self.program.edges()[e];
        match edge.mapping {
            ShardMapping::OneToOne => edge.bytes_per_src_shard,
            ShardMapping::AllToAll => {
                let dsts = self.shards[edge.dst.index()] as u64;
                edge.bytes_per_src_shard.div_ceil(dsts)
            }
        }
    }
}

/// A lowered program, ready to run repeatedly.
pub struct PreparedProgram {
    pub(crate) info: Arc<ProgInfo>,
    pub(crate) graph: Graph,
    pub(crate) submits: BTreeMap<IslandId, Vec<CompSubmit>>,
    pub(crate) est_cost: SimDuration,
    /// Mapping generation of each computation's slice at lowering time
    /// (`None` for external inputs). If any slice has been remapped
    /// since — healing, rebalancing, explicit `remap` — this
    /// preparation is stale and must be re-lowered.
    pub(crate) slice_gens: Vec<Option<u64>>,
    /// Cache of the re-lowered form minted when this preparation went
    /// stale, so a long-lived prepared program pays the re-lowering
    /// cost once per remap rather than once per submit.
    pub(crate) relowered: pathways_sim::Lock<Option<std::sync::Arc<PreparedProgram>>>,
}

impl std::fmt::Debug for PreparedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedProgram")
            .field("name", &self.info.program.name())
            .field("plaque_nodes", &self.graph.num_nodes())
            .field("plaque_edges", &self.graph.num_edges())
            .finish()
    }
}

impl PreparedProgram {
    /// The dataflow graph size — one node per computation plus the
    /// Result node, independent of shard counts (§4.3).
    pub fn graph_size(&self) -> (usize, usize) {
        (self.graph.num_nodes(), self.graph.num_edges())
    }

    /// The lowered program structures.
    pub fn info(&self) -> &Arc<ProgInfo> {
        &self.info
    }

    /// Whole-program device-time estimate (sum over islands).
    pub fn estimated_cost(&self) -> SimDuration {
        self.est_cost
    }

    /// True if any slice this program was lowered against has been
    /// remapped since (its generation moved on) — the snapshot of
    /// physical devices in here no longer matches the virtual→physical
    /// mapping. [`Client::submit_with`](crate::Client) re-lowers stale
    /// preparations automatically; callers holding long-lived prepared
    /// programs can poll this to re-prepare eagerly.
    pub fn is_stale(&self) -> bool {
        self.info
            .program
            .computations()
            .iter()
            .zip(&self.slice_gens)
            .any(|(comp, gen)| comp.slice().map(|s| s.generation()) != *gen)
    }
}

/// Lowers `program` for `client` into a runnable PLAQUE dataflow.
///
/// # Panics
///
/// Panics if any computation's slice spans islands (collectives require
/// one island; the resource manager never produces such slices).
pub fn prepare(
    core: &Arc<CoreCtx>,
    client: ClientId,
    client_host: HostId,
    label: &str,
    program: &Program,
) -> PreparedProgram {
    let topo = Arc::clone(core.fabric.topology());
    let n_comps = program.computations().len();

    let shards: Vec<u32> = program.computations().iter().map(|c| c.shards()).collect();
    let devices: Vec<Vec<DeviceId>> = (0..n_comps)
        .map(|c| program.physical_devices(CompId(c as u32)))
        .collect();
    // Kernel shards live with their device's host; input shards live on
    // the client host, where the coordinator drives the replay.
    let hosts: Vec<Vec<HostId>> = (0..n_comps)
        .map(|c| {
            if program.computations()[c].is_input() {
                vec![client_host; shards[c] as usize]
            } else {
                devices[c].iter().map(|d| topo.host_of_device(*d)).collect()
            }
        })
        .collect();

    // Edge ids in the plaque graph are assigned in creation order; we
    // create forward edges, then backward edges, then result edges, so
    // the ids are predictable and can be recorded in ProgInfo before the
    // graph itself is assembled.
    let n_edges = program.edges().len();
    let sinks = program.sinks();
    let fwd_edges: Vec<PEdge> = (0..n_edges).map(|i| PEdge(i as u32)).collect();
    let back_edges: Vec<PEdge> = (0..n_edges).map(|i| PEdge((n_edges + i) as u32)).collect();
    let result_edges: BTreeMap<CompId, PEdge> = sinks
        .iter()
        .enumerate()
        .map(|(i, c)| (*c, PEdge((2 * n_edges + i) as u32)))
        .collect();

    let info = Arc::new(ProgInfo {
        program: program.clone(),
        client,
        label: label.to_string(),
        shards,
        devices,
        hosts,
        fwd_edges,
        back_edges,
        result_edges,
    });

    // Assemble the plaque graph: one node per computation + Result.
    let mut g = GraphBuilder::new(program.name());
    let mut pnodes = Vec::with_capacity(n_comps);
    for c in 0..n_comps {
        let comp = CompId(c as u32);
        let core = Arc::clone(core);
        let info_f = Arc::clone(&info);
        let is_input = program.computations()[c].is_input();
        let node = g.node(
            program.computations()[c].name().to_string(),
            info.hosts[c].clone(),
            move |shard| -> Box<dyn Operator> {
                if is_input {
                    Box::new(InputOperator::new(
                        Arc::clone(&core),
                        Arc::clone(&info_f),
                        comp,
                        shard,
                    ))
                } else {
                    Box::new(CompOperator::new(
                        Arc::clone(&core),
                        Arc::clone(&info_f),
                        comp,
                        shard,
                    ))
                }
            },
        );
        pnodes.push(node);
    }
    let result_node = g.node("Result", vec![client_host], move |_| {
        Box::new(ResultOperator)
    });
    // One-to-one IR edges become one-to-one plaque edges so progress
    // punctuations stay O(1) per shard (the sparse-exchange support of
    // §4.3); resharding edges stay all-to-all.
    let pmap = |m: ShardMapping| match m {
        ShardMapping::OneToOne => pathways_plaque::EdgeMapping::OneToOne,
        ShardMapping::AllToAll => pathways_plaque::EdgeMapping::AllToAll,
    };
    for e in program.edges() {
        let got = g.edge_with_mapping(
            pnodes[e.src.index()],
            pnodes[e.dst.index()],
            pmap(e.mapping),
        );
        debug_assert_eq!(got, info.fwd_edges[got.index()]);
    }
    for e in program.edges() {
        g.edge_with_mapping(
            pnodes[e.dst.index()],
            pnodes[e.src.index()],
            pmap(e.mapping),
        );
    }
    for sink in &sinks {
        let got = g.edge(pnodes[sink.index()], result_node);
        debug_assert_eq!(got, info.result_edges[sink]);
    }
    let graph = g.build().expect("lowering produced an invalid graph");

    // Per-island submissions, kernel computations in topological order.
    // External inputs are not submitted: they occupy no devices and the
    // scheduler never sees them.
    let mut submits: BTreeMap<IslandId, Vec<CompSubmit>> = BTreeMap::new();
    for &comp in program.topo_order() {
        let Some(spec) = program.computations()[comp.index()].fn_spec() else {
            continue;
        };
        let devs = &info.devices[comp.index()];
        let island = topo.island_of_device(devs[0]);
        for d in devs {
            assert_eq!(
                topo.island_of_device(*d),
                island,
                "computation {comp} spans islands"
            );
        }
        let collective = spec.collective.map(|(kind, bytes)| {
            let duration = spec
                .collective_time_override
                .unwrap_or_else(|| core.fabric.ici_collective_time(kind, devs, bytes));
            (kind, bytes, duration)
        });
        let mut by_host: BTreeMap<HostId, Vec<(u32, DeviceId)>> = BTreeMap::new();
        for (shard, d) in devs.iter().enumerate() {
            by_host
                .entry(topo.host_of_device(*d))
                .or_default()
                .push((shard as u32, *d));
        }
        submits.entry(island).or_default().push(CompSubmit {
            comp,
            sink: info.result_edges.contains_key(&comp),
            participants: devs.len() as u32,
            collective,
            compute: spec.compute,
            output_bytes: spec.output_bytes_per_shard,
            input_bytes: spec.input_bytes_per_shard,
            by_host: by_host.into_iter().collect(),
        });
    }

    // Device-time estimate including collective wire time (available
    // here because lowering computed the collective durations).
    let est_cost = submits
        .values()
        .flatten()
        .map(|c| {
            let coll = c.collective.map_or(SimDuration::ZERO, |(_, _, d)| d);
            (c.compute + coll) * c.participants as u64
        })
        .sum();
    let slice_gens = program
        .computations()
        .iter()
        .map(|c| c.slice().map(|s| s.generation()))
        .collect();
    PreparedProgram {
        info,
        graph,
        submits,
        est_cost,
        slice_gens,
        relowered: pathways_sim::Lock::new(None),
    }
}

// ---------------------------------------------------------------------------
// Computation shard operator
// ---------------------------------------------------------------------------

struct OpState {
    /// plaque forward edge → local in-edge index (edges where this comp
    /// is the consumer).
    fwd_in: FxHashMap<PEdge, usize>,
    /// plaque backward edge → local out-edge index (edges where this
    /// comp is the producer, receiving consumer addresses).
    back_in: FxHashMap<PEdge, usize>,
    /// Address events per (local out-edge index, consumer shard).
    addr_events: FxHashMap<(usize, u32), Event>,
    /// Sequential-mode gate.
    prereq: Event,
    futures_needed: u64,
    futures_seen: u64,
}

pub(crate) struct CompOperator {
    core: Arc<CoreCtx>,
    info: Arc<ProgInfo>,
    comp: CompId,
    shard: u32,
    state: Option<OpState>,
}

impl CompOperator {
    pub(crate) fn new(core: Arc<CoreCtx>, info: Arc<ProgInfo>, comp: CompId, shard: u32) -> Self {
        CompOperator {
            core,
            info,
            comp,
            shard,
            state: None,
        }
    }
}

impl Operator for CompOperator {
    fn on_start(&mut self, ctx: &mut ShardCtx<'_>) {
        let run = ctx.run();
        let info = &self.info;
        let in_edges = info.program.in_edges(self.comp);
        let out_edges = info.program.out_edges(self.comp);

        // Input buffers: one slot per in-edge, delivered directly by
        // producer transfers (ICI path — no DCN hop before the kernel
        // can start). Edges from external inputs deliver the same way,
        // driven by the client-side InputOperator replaying the bound
        // ObjectRef.
        let mut input_events = Vec::with_capacity(in_edges.len());
        let mut fwd_in = FxHashMap::default();
        let mut futures_needed = 0u64;
        for (ii, &e) in in_edges.iter().enumerate() {
            let feeders = info.feeders(e, self.shard).len() as u64;
            let slot = crate::context::InputSlot::new(feeders);
            input_events.push(slot.event().clone());
            self.core
                .input_slots
                .lock()
                .insert((run, self.comp, self.shard, ii), slot);
            futures_needed += feeders;
            fwd_in.insert(info.fwd_edges[e], ii);
        }
        let mut back_in = FxHashMap::default();
        let mut addr_events = FxHashMap::default();
        for (oi, &e) in out_edges.iter().enumerate() {
            back_in.insert(info.back_edges[e], oi);
            for d in info.feeds(e, self.shard) {
                addr_events.insert((oi, d), Event::new());
            }
        }
        let prereq = Event::new();
        if futures_needed == 0 {
            prereq.set();
        }

        // Hand the executor what it needs to enqueue our kernel.
        let host = ctx.host();
        let exec = self
            .core
            .executors
            .get(&host)
            .unwrap_or_else(|| panic!("no executor on {host}"))
            .clone();
        let (enq_tx, enq_rx) = pathways_sim::channel::oneshot();
        exec.register(
            (run, self.comp, self.shard),
            CompRegistration {
                input_events: input_events.clone(),
                prereq: Some(prereq.clone()),
                on_enqueued: enq_tx,
            },
        );

        // Spawn the shard driver.
        let emitter = ctx.emitter();
        let core = Arc::clone(&self.core);
        let info = Arc::clone(&self.info);
        let comp = self.comp;
        let shard = self.shard;
        let addr_events_task: Vec<((usize, u32), Event)> = {
            let mut v: Vec<_> = addr_events.iter().map(|(k, ev)| (*k, ev.clone())).collect();
            v.sort_by_key(|(k, _)| *k);
            v
        };
        ctx.handle().spawn(
            format!("driver-{run}-{comp}-{shard}"),
            drive_shard(
                core,
                info,
                comp,
                shard,
                run,
                emitter,
                enq_rx,
                addr_events_task,
            ),
        );

        let _ = input_events;
        self.state = Some(OpState {
            fwd_in,
            back_in,
            addr_events,
            prereq,
            futures_needed,
            futures_seen: 0,
        });
    }

    fn on_tuple(
        &mut self,
        _ctx: &mut ShardCtx<'_>,
        edge: pathways_plaque::EdgeId,
        src_shard: u32,
        tuple: Tuple,
    ) {
        let st = self.state.as_mut().expect("tuple before start");
        if let Some(&ii) = st.fwd_in.get(&edge) {
            let _ = ii;
            match tuple.expect::<FwdSignal>() {
                FwdSignal::Future => {
                    st.futures_seen += 1;
                    if st.futures_seen == st.futures_needed {
                        st.prereq.set();
                    }
                }
                // Data-readiness is delivered in-band with the transfer
                // (InputSlot); the tuple only closes the plaque edge for
                // progress tracking.
                FwdSignal::Data => {}
            }
        } else if let Some(&oi) = st.back_in.get(&edge) {
            tuple.expect::<AddrSignal>();
            st.addr_events
                .get(&(oi, src_shard))
                .unwrap_or_else(|| panic!("address from unexpected shard {src_shard}"))
                .set();
        } else {
            panic!("tuple on unexpected {edge}");
        }
    }

    fn on_all_inputs_complete(&mut self, _ctx: &mut ShardCtx<'_>) {
        // The driver halts the shard after transfers finish.
    }
}

/// The asynchronous life of one computation shard after registration.
///
/// Failure-aware from end to end: an abort before the enqueue (the
/// fault injector swept our registration), a dropped completion (our
/// device died with the kernel queued) and a gang abort (a partner
/// device died) all land in the same wind-down — announce the signals
/// the rest of the dataflow gates on, *poison-deliver* the consumer
/// input buffers instead of moving data, and halt, so the run drains to
/// a clean completion instead of wedging.
#[allow(clippy::too_many_arguments)]
async fn drive_shard(
    core: Arc<CoreCtx>,
    info: Arc<ProgInfo>,
    comp: CompId,
    shard: u32,
    run: pathways_plaque::RunId,
    emitter: Emitter,
    enq_rx: pathways_sim::channel::OneshotReceiver<crate::exec::EnqueueInfo>,
    addr_events: Vec<((usize, u32), Event)>,
) {
    let enq = enq_rx.await.ok();
    let in_edges = info.program.in_edges(comp);
    let out_edges = info.program.out_edges(comp);

    // Announce output futures downstream (sequential-dispatch consumers
    // gate on these)...
    for &e in out_edges.iter() {
        for d in info.feeds(e, shard) {
            emitter.send(
                info.fwd_edges[e],
                d,
                Tuple::new(FwdSignal::Future, SIGNAL_BYTES),
            );
        }
    }
    // ...and our input-buffer addresses upstream (the Figure 4
    // handshake: "Host B allocates B's inputs, transmits the input
    // buffer addresses to host A"). Sent on the abort path too: an
    // upstream producer mid-transfer must not wait forever for the
    // address of a consumer that will never enqueue.
    for &e in &in_edges {
        for s in info.feeders(e, shard) {
            emitter.send(info.back_edges[e], s, Tuple::new(AddrSignal, SIGNAL_BYTES));
        }
    }

    let completed = match enq {
        Some(enq) => {
            // A dropped completion sender is the device's abort signal
            // (it died with this kernel queued, or its gang aborted).
            let done = enq.completion.await.is_ok();
            drop(enq.input_lease);
            done
        }
        None => false,
    };
    let object = ObjectId { run, comp };
    if completed {
        core.store.mark_ready(object, shard);
    }

    // Move outputs to every consumer shard as soon as its buffer address
    // is known; transfers to different consumers proceed concurrently.
    // No readiness gate: this shard's kernel just completed (or aborted,
    // in which case consumers get a zero-byte poison delivery — their
    // runs were failed by the injector, so the error, not the data, is
    // what they observe).
    let addr_map: FxHashMap<(usize, u32), Event> = addr_events.into_iter().collect();
    let src_dev = info.devices[comp.index()][shard as usize];
    let mode = if completed {
        TransferMode::Data
    } else {
        TransferMode::Poison
    };
    let transfers = spawn_output_transfers(
        &core, &info, comp, shard, run, &emitter, &addr_map, src_dev, None, mode,
    );
    join_all(transfers).await;
    // Release this shard's input-slot registrations.
    {
        let mut slots = core.input_slots.lock();
        for ii in 0..in_edges.len() {
            slots.remove(&(run, comp, shard, ii));
        }
    }

    if let Some(&result_edge) = info.result_edges.get(&comp) {
        // Sink: shard 0 delivers the *logical* output handle to the
        // Result node — one handle per sharded buffer, not per shard
        // (the §4.2 amortization). The run still waits for every shard:
        // completion requires all shards to halt. The client's ObjectRef
        // (minted at submit time) owns the object's refcount; nothing is
        // released here. Aborted shards skip the tuple — the plaque edge
        // closes through halt's punctuation.
        if completed && shard == 0 {
            emitter.send(
                result_edge,
                0,
                Tuple::new(CompletionSignal { comp, object }, SIGNAL_BYTES),
            );
        }
    } else {
        // Intermediate output: consumers have their copies (or their
        // poison); release ours. A release of an object the grant never
        // created is a no-op.
        core.store.release(object);
    }
    emitter.halt();
}

/// How a producer shard's output reaches (or fails to reach) each
/// consumer input buffer.
#[derive(Debug, Clone)]
enum TransferMode {
    /// Move the real bytes over the interconnect.
    Data,
    /// The producer aborted: deliver the consumer's input slot without
    /// moving anything, so its kernel unblocks. The consumer's run
    /// carries the typed error; the poison is just the unwedging.
    Poison,
    /// External-input replay: decide per transfer *after* the readiness
    /// gate fires — a producer that failed (events fired by the failure
    /// path, error recorded in the store) poisons instead of replaying
    /// stale or never-written data.
    CheckObject(ObjectId),
}

/// Spawns one transfer task per (out-edge, consumer shard) of `comp`
/// shard `shard` — the producer half of the Figure 4 handshake, shared
/// by kernel shards and external-input replays. Each task waits for the
/// consumer's buffer address (eager: allocated during grant processing),
/// then the optional readiness `gate` (external inputs gate on the
/// producer's per-shard event; kernel shards pass `None` because their
/// kernel already completed), moves the bytes from `src_dev` (unless
/// the `mode` poisons the delivery), delivers the consumer's input slot
/// in-band (the transfer's arrival is the consumer kernel's trigger —
/// no control message in between), and closes the plaque edge off the
/// critical path.
#[allow(clippy::too_many_arguments)]
fn spawn_output_transfers(
    core: &Arc<CoreCtx>,
    info: &Arc<ProgInfo>,
    comp: CompId,
    shard: u32,
    run: pathways_plaque::RunId,
    emitter: &Emitter,
    addr_map: &FxHashMap<(usize, u32), Event>,
    src_dev: DeviceId,
    gate: Option<Event>,
    mode: TransferMode,
) -> Vec<pathways_sim::JoinHandle<()>> {
    let mut transfers = Vec::new();
    for (oi, &e) in info.program.out_edges(comp).iter().enumerate() {
        let bytes = info.pair_bytes(e);
        let dst_comp = info.program.edges()[e].dst;
        let dst_in_idx = info
            .program
            .in_edges(dst_comp)
            .iter()
            .position(|&x| x == e)
            .expect("edge is an in-edge of its consumer");
        for d in info.feeds(e, shard) {
            let addr = addr_map
                .get(&(oi, d))
                .expect("address event missing")
                .clone();
            let gate = gate.clone();
            let mode = mode.clone();
            let dst_dev = info.devices[dst_comp.index()][d as usize];
            let core = Arc::clone(core);
            let info2 = Arc::clone(info);
            let emitter = emitter.clone();
            // The address arrives as a dataflow tuple from the consumer
            // host — which a fault may have silenced (dead NIC, severed
            // link). Racing the wait against the run's failure event
            // keeps the transfer from wedging; the consumer's input slot
            // is still delivered (shared-memory simulation state), so a
            // consumer kernel already sitting on a live device unblocks.
            let cancel = core.failures.failed_event(run);
            transfers.push(core.handle.clone().spawn(
                format!("xfer-{run}-{comp}-{shard}-{d}"),
                async move {
                    event_or_cancel(&addr, cancel.as_ref()).await;
                    if let Some(ready) = &gate {
                        ready.wait().await;
                    }
                    let mut src = src_dev;
                    let mut move_data = addr.is_set();
                    if move_data {
                        match mode {
                            TransferMode::Data => {}
                            TransferMode::Poison => move_data = false,
                            TransferMode::CheckObject(src_obj) => {
                                // Tiered store: a source object mid
                                // restore/recompute is neither stale nor
                                // failed — wait the recovery window out
                                // (racing the consumer's own failure so
                                // a doomed run still unwedges).
                                while let Some(rec) = core.store.recovering(src_obj) {
                                    event_or_cancel(&rec, cancel.as_ref()).await;
                                    if !rec.is_set() {
                                        break;
                                    }
                                }
                                if core.store.object_error(src_obj).is_some() {
                                    move_data = false;
                                } else if let Some((loc, penalty)) =
                                    core.store.read_shard(src_obj, shard)
                                {
                                    // Spilled/restored shards replay from
                                    // their current tier location with the
                                    // staging penalty.
                                    if penalty > pathways_sim::SimDuration::ZERO {
                                        core.handle.sleep(penalty).await;
                                    }
                                    src = loc;
                                }
                            }
                        }
                    }
                    if move_data {
                        core.move_bytes(src, dst_dev, bytes).await;
                    }
                    if let Some(slot) = core.input_slots.lock().get(&(run, dst_comp, d, dst_in_idx))
                    {
                        slot.deliver();
                    }
                    emitter.send(
                        info2.fwd_edges[e],
                        d,
                        Tuple::new(FwdSignal::Data, SIGNAL_BYTES),
                    );
                },
            ));
        }
    }
    transfers
}

/// Resolves when `event` fires — or, if `cancel` is provided, when the
/// cancel event fires first.
pub(crate) async fn event_or_cancel(event: &Event, cancel: Option<&Event>) {
    struct Either {
        a: pathways_sim::sync::EventWait,
        b: Option<pathways_sim::sync::EventWait>,
    }
    impl std::future::Future for Either {
        type Output = ();
        fn poll(
            self: std::pin::Pin<&mut Self>,
            cx: &mut std::task::Context<'_>,
        ) -> std::task::Poll<()> {
            let this = self.get_mut();
            if std::pin::Pin::new(&mut this.a).poll(cx).is_ready() {
                return std::task::Poll::Ready(());
            }
            match &mut this.b {
                Some(b) => std::pin::Pin::new(b).poll(cx),
                None => std::task::Poll::Pending,
            }
        }
    }
    Either {
        a: event.wait(),
        b: cancel.map(Event::wait),
    }
    .await
}

// ---------------------------------------------------------------------------
// External-input operator
// ---------------------------------------------------------------------------

/// One shard of an external-input placeholder, running on the client
/// host. A virtual producer: it speaks the producer half of the Figure 4
/// handshake for a buffer that another program is (or will be) writing.
pub(crate) struct InputOperator {
    core: Arc<CoreCtx>,
    info: Arc<ProgInfo>,
    comp: CompId,
    shard: u32,
    /// plaque backward edge → local out-edge index.
    back_in: FxHashMap<PEdge, usize>,
    /// Address events per (local out-edge index, consumer shard).
    addr_events: FxHashMap<(usize, u32), Event>,
}

impl InputOperator {
    pub(crate) fn new(core: Arc<CoreCtx>, info: Arc<ProgInfo>, comp: CompId, shard: u32) -> Self {
        InputOperator {
            core,
            info,
            comp,
            shard,
            back_in: FxHashMap::default(),
            addr_events: FxHashMap::default(),
        }
    }
}

impl Operator for InputOperator {
    fn on_start(&mut self, ctx: &mut ShardCtx<'_>) {
        let run = ctx.run();
        let info = Arc::clone(&self.info);
        let out_edges = info.program.out_edges(self.comp);
        for (oi, &e) in out_edges.iter().enumerate() {
            self.back_in.insert(info.back_edges[e], oi);
            for d in info.feeds(e, self.shard) {
                self.addr_events.insert((oi, d), Event::new());
            }
        }

        // The bound ObjectRef *is* the output future — announce it
        // downstream immediately, before any data exists. Sequential
        // dispatch within the consuming program therefore never
        // serializes on a cross-program edge.
        for &e in &out_edges {
            for d in info.feeds(e, self.shard) {
                ctx.send(
                    info.fwd_edges[e],
                    d,
                    Tuple::new(FwdSignal::Future, SIGNAL_BYTES),
                );
            }
        }

        let binding = self
            .core
            .bindings
            .lock()
            .get(&(run, self.comp))
            .cloned()
            .unwrap_or_else(|| panic!("no ObjectRef bound for {run} input {}", self.comp));
        let addr_events_task: Vec<((usize, u32), Event)> = {
            let mut v: Vec<_> = self
                .addr_events
                .iter()
                .map(|(k, ev)| (*k, ev.clone()))
                .collect();
            v.sort_by_key(|(k, _)| *k);
            v
        };
        let comp = self.comp;
        let shard = self.shard;
        ctx.handle().spawn(
            format!("input-{run}-{comp}-{shard}"),
            drive_input_shard(
                Arc::clone(&self.core),
                info,
                comp,
                shard,
                run,
                ctx.emitter(),
                binding,
                addr_events_task,
            ),
        );
    }

    fn on_tuple(
        &mut self,
        _ctx: &mut ShardCtx<'_>,
        edge: pathways_plaque::EdgeId,
        src_shard: u32,
        tuple: Tuple,
    ) {
        let Some(&oi) = self.back_in.get(&edge) else {
            panic!("tuple on unexpected {edge}");
        };
        tuple.expect::<AddrSignal>();
        self.addr_events
            .get(&(oi, src_shard))
            .unwrap_or_else(|| panic!("address from unexpected shard {src_shard}"))
            .set();
    }

    fn on_all_inputs_complete(&mut self, _ctx: &mut ShardCtx<'_>) {
        // The driver halts the shard after its transfers finish.
    }
}

/// Replays shard `shard` of a bound object into every consumer buffer.
///
/// The address handshake and the transfer *setup* happen eagerly; the
/// bytes move only once the producer's kernel has marked the shard ready
/// in the object store — the single gate the consuming kernel inherits
/// through its input future.
#[allow(clippy::too_many_arguments)]
async fn drive_input_shard(
    core: Arc<CoreCtx>,
    info: Arc<ProgInfo>,
    comp: CompId,
    shard: u32,
    run: pathways_plaque::RunId,
    emitter: Emitter,
    binding: Arc<InputBinding>,
    addr_events: Vec<((usize, u32), Event)>,
) {
    // Gate every transfer on the producer's per-shard readiness event —
    // the single thing the consuming kernel ends up waiting for. If the
    // producer failed, the failure path fires those events and records
    // the error; the replay then poisons (delivers without data) rather
    // than replaying stale bytes.
    let src_dev = binding.objref.devices()[shard as usize];
    let ready = binding.objref.shard_ready(shard).clone();
    let addr_map: FxHashMap<(usize, u32), Event> = addr_events.into_iter().collect();
    let transfers = spawn_output_transfers(
        &core,
        &info,
        comp,
        shard,
        run,
        &emitter,
        &addr_map,
        src_dev,
        Some(ready),
        TransferMode::CheckObject(binding.objref.id()),
    );
    join_all(transfers).await;
    // Last shard of this input drops the binding, releasing its
    // ObjectRef clone (and with it, possibly, the object).
    let left = binding
        .remaining
        .fetch_sub(1, std::sync::atomic::Ordering::AcqRel)
        - 1;
    if left == 0 {
        core.bindings.lock().remove(&(run, comp));
    }
    emitter.halt();
}

// ---------------------------------------------------------------------------
// Result operator
// ---------------------------------------------------------------------------

/// Terminal single-shard node on the client host. Output handles are
/// minted at submit time as `ObjectRef`s, so the completion tuples are
/// purely structural: they close the sink→Result plaque edges, and the
/// node's halt marks the run complete.
pub(crate) struct ResultOperator;

impl Operator for ResultOperator {
    fn on_tuple(
        &mut self,
        _ctx: &mut ShardCtx<'_>,
        _edge: pathways_plaque::EdgeId,
        _src: u32,
        tuple: Tuple,
    ) {
        let _ = tuple.expect::<CompletionSignal>();
    }
}
