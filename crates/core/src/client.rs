//! The Pathways client library (§4.2).
//!
//! A client traces programs ([`crate::ProgramBuilder`]), lowers them once
//! ([`Client::prepare`]) and then runs the lowered form repeatedly —
//! "it is efficient to repeatedly run the low-level program in the
//! common case that the virtual device locations do not change".
//! Each run costs one Submit RPC per involved island plus the plaque
//! launch; results come back as object-store handles, not data — the
//! outputs stay in HBM (unlike the TF/Ray baselines that copy results
//! back, §5.1).
//!
//! [`Client::submit`] is **non-blocking**: it returns a [`Run`] whose
//! per-sink [`ObjectRef`]s exist immediately, before any kernel has been
//! scheduled. Feeding those refs into another program's external inputs
//! via [`Client::submit_with`] chains programs without ever awaiting an
//! intermediate run — the coordinator dispatches the whole chain while
//! the first program is still executing (parallel asynchronous dispatch
//! across programs), and only the consuming kernels gate on the
//! producers' per-shard readiness events.

use std::fmt;
use std::sync::Arc;

use pathways_net::{ClientId, HostId};
use pathways_plaque::RunId;

use crate::context::CoreCtx;
use crate::fault::RunFootprint;
use crate::objref::{InputBinding, ObjectRef};
use crate::ops::{prepare, PreparedProgram};
use crate::program::{CompId, Program};
use crate::resource::{ResourceError, ResourceManager, SliceRequest, VirtualSlice};
use crate::sched::{ctrl_msg_bytes, CtrlMsg, SubmitMsg};
use crate::storage::{FailureReason, ObjectId};

/// Errors from submitting a prepared program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// A binding referenced a computation id the program does not have
    /// (typically a `CompId` from a *different* program's builder).
    UnknownComputation {
        /// The out-of-range id.
        comp: CompId,
    },
    /// The program declares an external input that was not bound.
    UnboundInput {
        /// The unbound input node.
        comp: CompId,
    },
    /// A binding targeted a computation that is not an external input.
    NotAnInput {
        /// The offending computation.
        comp: CompId,
    },
    /// The same input was bound twice.
    DuplicateBinding {
        /// The doubly-bound input.
        comp: CompId,
    },
    /// A bound `ObjectRef`'s sharding does not match the input's
    /// declared shard count.
    ShardMismatch {
        /// The input node.
        comp: CompId,
        /// Shards the program declared.
        expected: u32,
        /// Shards the bound object has.
        got: u32,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownComputation { comp } => {
                write!(
                    f,
                    "binding references {comp}, which this program does not have"
                )
            }
            SubmitError::UnboundInput { comp } => {
                write!(f, "external input {comp} has no ObjectRef bound")
            }
            SubmitError::NotAnInput { comp } => {
                write!(f, "{comp} is not an external input")
            }
            SubmitError::DuplicateBinding { comp } => {
                write!(f, "external input {comp} bound twice")
            }
            SubmitError::ShardMismatch {
                comp,
                expected,
                got,
            } => write!(
                f,
                "input {comp} expects {expected} shards, bound object has {got}"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Handles to one completed run's outputs. Each handle is an
/// [`ObjectRef`] owning one logical-buffer reference; dropping the
/// result (or individual clones) releases them.
pub struct RunResult {
    run: RunId,
    objects: Vec<(CompId, ObjectId)>,
    refs: Vec<(CompId, ObjectRef)>,
}

impl fmt::Debug for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunResult")
            .field("run", &self.run)
            .field("outputs", &self.objects.len())
            .finish()
    }
}

impl RunResult {
    /// The run id.
    pub fn run(&self) -> RunId {
        self.run
    }

    /// Output handles, one per sink computation, sorted by computation.
    pub fn objects(&self) -> &[(CompId, ObjectId)] {
        &self.objects
    }

    /// The output handle of sink `comp`, if it exists.
    pub fn object(&self, comp: CompId) -> Option<ObjectId> {
        self.objects
            .iter()
            .find(|(c, _)| *c == comp)
            .map(|(_, o)| *o)
    }

    /// A clone of the output [`ObjectRef`] of sink `comp` (retains the
    /// object), usable as a later program's input.
    pub fn object_ref(&self, comp: CompId) -> Option<ObjectRef> {
        self.refs
            .iter()
            .find(|(c, _)| *c == comp)
            .map(|(_, r)| r.clone())
    }

    /// All output refs, one per sink computation.
    pub fn refs(&self) -> &[(CompId, ObjectRef)] {
        &self.refs
    }
}

/// A submitted program. Returned by the non-blocking
/// [`Client::submit`]/[`Client::submit_with`]: the output [`ObjectRef`]s
/// are available immediately and can be fed into further submissions
/// without awaiting this run.
pub struct Run {
    run: RunId,
    /// `None` when the run failed fast at submission (dead island, dead
    /// devices, failed upstream input): nothing was launched, and the
    /// output refs already carry their errors.
    run_handle: Option<pathways_plaque::RunHandle>,
    /// Set by the fault injector when the run fails; [`Run::finish`]
    /// races completion against it so a run partitioned away from its
    /// own wind-down messages is abandoned, not awaited forever.
    failed: pathways_sim::sync::Event,
    refs: Vec<(CompId, ObjectRef)>,
}

impl fmt::Debug for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Run")
            .field("run", &self.run)
            .field("outputs", &self.refs.len())
            .field("failed_fast", &self.run_handle.is_none())
            .finish()
    }
}

impl Run {
    /// The run id.
    pub fn run(&self) -> RunId {
        self.run
    }

    /// A clone of the output future of sink `comp` — valid before the
    /// run (or even its producerless scheduling) has made any progress.
    pub fn object_ref(&self, comp: CompId) -> Option<ObjectRef> {
        self.refs
            .iter()
            .find(|(c, _)| *c == comp)
            .map(|(_, r)| r.clone())
    }

    /// All output futures, one per sink computation, sorted by
    /// computation.
    pub fn refs(&self) -> &[(CompId, ObjectRef)] {
        &self.refs
    }

    /// Waits for the program to complete and collects its results.
    ///
    /// Failure-aware: resolves when the run completes *or* when the
    /// fault injector fails it, whichever comes first. Most failed runs
    /// still wind down to completion (failure propagation force-drains
    /// them), but a run partitioned by a severed link or dead host can
    /// lose the very messages its completion tracking needs — the
    /// client abandons it on the failure notification instead of
    /// blocking forever. The refs then resolve to errors, not data.
    pub async fn finish(self) -> RunResult {
        let run = self.run;
        if let Some(handle) = self.run_handle {
            DoneOrFailed {
                done: handle.into_done_receiver(),
                failed: self.failed.wait(),
            }
            .await;
        }
        let objects = self.refs.iter().map(|(c, r)| (*c, r.id())).collect();
        RunResult {
            run,
            objects,
            refs: self.refs,
        }
    }
}

/// Races run completion against the run's failure notification.
struct DoneOrFailed {
    done: pathways_sim::channel::OneshotReceiver<()>,
    failed: pathways_sim::sync::EventWait,
}

impl std::future::Future for DoneOrFailed {
    type Output = ();

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        let this = self.get_mut();
        if std::pin::Pin::new(&mut this.done).poll(cx).is_ready() {
            return std::task::Poll::Ready(());
        }
        std::pin::Pin::new(&mut this.failed).poll(cx)
    }
}

/// The pre-`ObjectRef` name of [`Run`], kept so existing code compiles.
#[deprecated(
    note = "use `Run`: submit() now returns output ObjectRefs immediately, \
            so chaining no longer requires finish()"
)]
pub type PendingRun = Run;

/// A Pathways client.
#[derive(Clone)]
pub struct Client {
    id: ClientId,
    label: String,
    host: HostId,
    core: Arc<CoreCtx>,
    rm: Arc<ResourceManager>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("host", &self.host)
            .finish()
    }
}

impl Client {
    pub(crate) fn new(
        id: ClientId,
        label: String,
        host: HostId,
        core: Arc<CoreCtx>,
        rm: Arc<ResourceManager>,
    ) -> Self {
        Client {
            id,
            label,
            host,
            core,
            rm,
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The host the client process runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The label used for this client's programs in device traces.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Requests a virtual slice from the resource manager.
    ///
    /// # Errors
    ///
    /// See [`ResourceError`].
    pub fn virtual_slice(&self, request: SliceRequest) -> Result<VirtualSlice, ResourceError> {
        self.rm.allocate(self.id, request)
    }

    /// Starts tracing a new program (the §3 program tracer).
    pub fn trace(&self, name: impl Into<String>) -> crate::program::ProgramBuilder {
        crate::program::ProgramBuilder::new(name)
    }

    /// The shared runtime context.
    pub fn core(&self) -> &Arc<CoreCtx> {
        &self.core
    }

    /// The simulation handle (for timing measurements in benchmarks).
    pub fn handle(&self) -> &pathways_sim::SimHandle {
        &self.core.handle
    }

    /// Lowers a traced program against the current virtual→physical
    /// mapping. A prepared program whose slices are later remapped
    /// (healing, rebalancing, explicit [`ResourceManager::remap`])
    /// becomes stale; [`Client::submit`]/[`Client::submit_with`] detect
    /// this through the slices' mapping generations and re-lower
    /// automatically — "programs simply re-lower".
    pub fn prepare(&self, program: &Program) -> PreparedProgram {
        prepare(&self.core, self.id, self.host, &self.label, program)
    }

    /// Submits a prepared program with no external inputs: pays the
    /// client-side (Python-thread) overhead and sends the control
    /// messages, returning a [`Run`] whose output [`ObjectRef`]s are
    /// valid immediately. Nothing about the run is awaited — chain
    /// further submissions or call [`Run::finish`] when the results are
    /// actually needed.
    ///
    /// # Panics
    ///
    /// Panics if the program declares external inputs (bind them with
    /// [`Client::submit_with`]).
    pub async fn submit(&self, prepared: &PreparedProgram) -> Run {
        self.submit_with(prepared, &[])
            .await
            .unwrap_or_else(|e| panic!("submit: {e}; use submit_with to bind inputs"))
    }

    /// Submits a prepared program, binding each external input to an
    /// [`ObjectRef`] — typically another run's output future. The bound
    /// objects are retained for the duration of the run.
    ///
    /// Control messages, island scheduling, buffer allocation and
    /// transfer setup for this program all proceed immediately; only the
    /// kernels consuming a bound input gate (per shard) on the
    /// producer's readiness events.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub async fn submit_with(
        &self,
        prepared: &PreparedProgram,
        bindings: &[(CompId, ObjectRef)],
    ) -> Result<Run, SubmitError> {
        // Elasticity: if any slice this program was lowered against has
        // been remapped since (device healing after a fault, rebalance,
        // an explicit remap), the preparation's device snapshot is
        // stale. Re-lower against the current virtual→physical mapping
        // — this is the client half of the paper's "remap without the
        // client's cooperation": the next submit lands on the healed
        // devices with no client-code changes. The re-lowered form is
        // cached on the stale preparation, so the cost is paid once per
        // remap, not once per submit.
        let relowered = if prepared.is_stale() {
            Some(self.refreshed(prepared))
        } else {
            None
        };
        let prepared = relowered.as_deref().unwrap_or(prepared);
        let info = &prepared.info;
        let comps = info.program.computations();
        // Validate the binding set against the program's declared inputs.
        for (i, (comp, objref)) in bindings.iter().enumerate() {
            let node = comps
                .get(comp.index())
                .ok_or(SubmitError::UnknownComputation { comp: *comp })?;
            if !node.is_input() {
                return Err(SubmitError::NotAnInput { comp: *comp });
            }
            if bindings[..i].iter().any(|(c, _)| c == comp) {
                return Err(SubmitError::DuplicateBinding { comp: *comp });
            }
            let expected = node.shards();
            if objref.shards() != expected {
                return Err(SubmitError::ShardMismatch {
                    comp: *comp,
                    expected,
                    got: objref.shards(),
                });
            }
        }
        for comp in info.program.inputs() {
            if !bindings.iter().any(|(c, _)| *c == comp) {
                return Err(SubmitError::UnboundInput { comp });
            }
        }

        // Client-side work: Python call, tracing-cache lookup,
        // serialization of the submission.
        let cfg = &self.core.cfg;
        let n_comps = comps.len() as u64;
        self.core
            .handle
            .sleep(cfg.client_overhead + cfg.client_per_comp * n_comps)
            .await;

        // Fail fast if the run cannot execute: a bound input whose
        // producer already failed, or dead hardware anywhere in the
        // run's footprint. The run is never launched; its output refs
        // are minted already carrying the error, so consumers observe
        // `Err(ObjectError::ProducerFailed)` instead of a hang.
        if let Some(reason) = self.submission_blocked(prepared, bindings) {
            let run = self.core.plaque.reserve_run_id();
            let refs = self.mint_output_refs(prepared, run);
            for (_, r) in &refs {
                self.core.store.fail_object(r.id(), reason);
            }
            let failed = pathways_sim::sync::Event::new();
            failed.set();
            return Ok(Run {
                run,
                run_handle: None,
                failed,
                refs,
            });
        }

        // Install the dataflow without Start fan-out: the scheduler's
        // grant messages carry the start signal to every participating
        // host (§4.5's single subgraph message). Input placeholders and
        // the Result node — all local to this client — are started here.
        let run_handle = self.core.plaque.launch_unstarted(&prepared.graph);
        let run = run_handle.id();
        let failed = pathways_sim::sync::Event::new();
        self.core
            .failures
            .register_run(run, self.footprint(prepared, run, failed.clone()));

        // Mint the output futures: declare each sink's object (with its
        // per-shard readiness events) before anything executes.
        let refs = self.mint_output_refs(prepared, run);

        // Lineage (tiered store with recovery only): record each sink's
        // producing program and exact input bindings so a later hardware
        // loss can recompute it by re-submission. The record's ObjectRef
        // clones retain the inputs for as long as the outputs live.
        if self.core.store.lineage_enabled() {
            let record = Arc::new(crate::storage::LineageRecord {
                client: self.clone(),
                program: info.program.clone(),
                bindings: bindings.to_vec(),
            });
            for (_, r) in &refs {
                self.core.store.set_lineage(r.id(), Arc::clone(&record));
            }
        }

        // Bind the inputs, then start their shards (and the Result node)
        // locally.
        for (comp, objref) in bindings {
            let shards = info.shards[comp.index()];
            self.core.bindings.lock().insert(
                (run, *comp),
                Arc::new(InputBinding::new(objref.clone(), shards)),
            );
        }
        let result_node = pathways_plaque::NodeId(comps.len() as u32);
        self.core.plaque.start_local(self.host, run, result_node, 0);
        for comp in info.program.inputs() {
            for shard in 0..info.shards[comp.index()] {
                self.core.plaque.start_local(
                    self.host,
                    run,
                    pathways_plaque::NodeId(comp.0),
                    shard,
                );
            }
        }

        for (island, comps) in &prepared.submits {
            let sched_host = self.core.sched_hosts[island];
            // Occupancy estimate for *this island's* computations only —
            // other islands' work runs in parallel on their own devices.
            let island_cost: pathways_sim::SimDuration = comps
                .iter()
                .map(|c| {
                    let coll = c
                        .collective
                        .map_or(pathways_sim::SimDuration::ZERO, |(_, _, d)| d);
                    (c.compute + coll) * c.participants as u64
                })
                .sum();
            let msg = CtrlMsg::Submit(SubmitMsg {
                client: self.id,
                label: self.label.clone(),
                run,
                est_cost: island_cost,
                comps: comps.clone(),
            });
            let bytes = ctrl_msg_bytes(&msg);
            self.core
                .sched_router
                .send(self.host, sched_host, msg, bytes);
        }

        Ok(Run {
            run,
            run_handle: Some(run_handle),
            failed,
            refs,
        })
    }

    /// The cached re-lowering of a stale preparation, minted on first
    /// use and re-minted only if a further remap staled the cache too.
    fn refreshed(&self, prepared: &PreparedProgram) -> Arc<PreparedProgram> {
        let mut cache = prepared.relowered.lock();
        if let Some(fresh) = cache.as_ref() {
            if !fresh.is_stale() {
                return Arc::clone(fresh);
            }
        }
        let fresh = Arc::new(self.prepare(&prepared.info.program));
        *cache = Some(Arc::clone(&fresh));
        fresh
    }

    /// Declares each sink's object in the store and mints its
    /// [`ObjectRef`] (shared by the normal and fail-fast paths).
    fn mint_output_refs(&self, prepared: &PreparedProgram, run: RunId) -> Vec<(CompId, ObjectRef)> {
        let info = &prepared.info;
        info.program
            .sinks()
            .into_iter()
            .map(|comp| {
                let object = ObjectId { run, comp };
                let shards = info.shards[comp.index()];
                let events = self.core.store.declare(object, self.id, shards);
                let bytes = info.program.computations()[comp.index()]
                    .fn_spec()
                    .expect("sinks are kernels")
                    .output_bytes_per_shard;
                let objref = ObjectRef::new(
                    object,
                    bytes,
                    info.devices[comp.index()].clone(),
                    events,
                    self.core.store.clone(),
                );
                (comp, objref)
            })
            .collect()
    }

    /// Every host a run of `prepared` involves — shard hosts, this
    /// client's host, and the scheduler hosts of the submitted islands —
    /// sorted and deduped. One definition shared by the fail-fast check
    /// and the fault injector's blast-radius footprint so the two can
    /// never disagree.
    fn involved_hosts(&self, prepared: &PreparedProgram) -> Vec<HostId> {
        let mut hosts: Vec<HostId> = prepared.info.hosts.iter().flatten().copied().collect();
        hosts.push(self.host);
        for island in prepared.submits.keys() {
            hosts.push(self.core.sched_hosts[island]);
        }
        hosts.sort();
        hosts.dedup();
        hosts
    }

    /// The run's failure footprint: everything the fault injector needs
    /// to decide whether a later fault dooms this run.
    fn footprint(
        &self,
        prepared: &PreparedProgram,
        run: RunId,
        failed: pathways_sim::sync::Event,
    ) -> RunFootprint {
        let info = &prepared.info;
        let mut devices: Vec<pathways_net::DeviceId> =
            info.devices.iter().flatten().copied().collect();
        devices.sort();
        devices.dedup();
        let islands: Vec<pathways_net::IslandId> = prepared.submits.keys().copied().collect();
        let sinks: Vec<ObjectId> = info
            .program
            .sinks()
            .into_iter()
            .map(|comp| ObjectId { run, comp })
            .collect();
        RunFootprint {
            client: self.id,
            client_host: self.host,
            devices,
            hosts: self.involved_hosts(prepared),
            islands,
            sinks,
            failed,
        }
    }

    /// Checks a submission against the failure registry; `Some(reason)`
    /// if it cannot execute. Checked *before* launch so doomed runs
    /// fail fast with a typed error instead of hanging on control
    /// messages that would be dropped by dead NICs.
    fn submission_blocked(
        &self,
        prepared: &PreparedProgram,
        bindings: &[(CompId, ObjectRef)],
    ) -> Option<FailureReason> {
        let failures = &self.core.failures;
        // A bound input whose producer already failed poisons this run.
        for (_, objref) in bindings {
            if objref.error().is_some() {
                return Some(FailureReason::Upstream(objref.id()));
            }
        }
        let info = &prepared.info;
        if let Some(d) = info
            .devices
            .iter()
            .flatten()
            .find(|d| failures.device_dead(**d))
        {
            return Some(FailureReason::Device(*d));
        }
        for island in prepared.submits.keys() {
            if failures.island_dead(*island) {
                return Some(FailureReason::Island(*island));
            }
        }
        let hosts = self.involved_hosts(prepared);
        if let Some(h) = hosts.iter().find(|h| failures.host_dead(**h)) {
            return Some(FailureReason::Host(*h));
        }
        // Any severed link between two involved hosts partitions the
        // run's control or data plane (grants, plaque signal tuples).
        for (i, a) in hosts.iter().enumerate() {
            for b in &hosts[i + 1..] {
                if failures.link_down(*a, *b) {
                    return Some(FailureReason::Link(*a, *b));
                }
            }
        }
        None
    }

    /// Runs a prepared program to completion, returning output handles.
    ///
    /// Must be called from inside a simulation task.
    pub async fn run(&self, prepared: &PreparedProgram) -> RunResult {
        self.submit(prepared).await.finish().await
    }

    /// Runs a prepared program `n` times back to back (each run awaits
    /// the previous one's results — the OpByOp pattern of §5.1) and
    /// returns the results of the final run.
    pub async fn run_op_by_op(&self, prepared: &PreparedProgram, n: u32) -> Option<RunResult> {
        let mut last = None;
        for _ in 0..n {
            last = Some(self.run(prepared).await);
        }
        last
    }
}
