//! The Pathways client library (§4.2).
//!
//! A client traces programs ([`crate::ProgramBuilder`]), lowers them once
//! ([`Client::prepare`]) and then runs the lowered form repeatedly —
//! "it is efficient to repeatedly run the low-level program in the
//! common case that the virtual device locations do not change".
//! Each run costs one Submit RPC per involved island plus the plaque
//! launch; results come back as object-store handles, not data — the
//! outputs stay in HBM (unlike the TF/Ray baselines that copy results
//! back, §5.1).

use std::fmt;
use std::rc::Rc;

use pathways_net::{ClientId, HostId};
use pathways_plaque::RunId;

use crate::context::CoreCtx;
use crate::ops::{prepare, PreparedProgram};
use crate::program::{CompId, Program};
use crate::resource::{ResourceError, ResourceManager, SliceRequest, VirtualSlice};
use crate::sched::{ctrl_msg_bytes, CtrlMsg, SubmitMsg};
use crate::store::ObjectId;

/// Handles to one completed run's outputs. Dropping the result releases
/// the logical-buffer references (refcounted at object granularity).
pub struct RunResult {
    run: RunId,
    objects: Vec<(CompId, ObjectId)>,
    store: crate::store::ObjectStore,
}

impl fmt::Debug for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunResult")
            .field("run", &self.run)
            .field("outputs", &self.objects.len())
            .finish()
    }
}

impl RunResult {
    /// The run id.
    pub fn run(&self) -> RunId {
        self.run
    }

    /// Output handles, one per sink computation, sorted by computation.
    pub fn objects(&self) -> &[(CompId, ObjectId)] {
        &self.objects
    }

    /// The output handle of sink `comp`, if it exists.
    pub fn object(&self, comp: CompId) -> Option<ObjectId> {
        self.objects
            .iter()
            .find(|(c, _)| *c == comp)
            .map(|(_, o)| *o)
    }
}

impl Drop for RunResult {
    fn drop(&mut self) {
        for (_, obj) in &self.objects {
            self.store.release(*obj);
        }
    }
}

/// A submitted program whose completion has not been awaited yet.
pub struct PendingRun {
    run_handle: pathways_plaque::RunHandle,
    core: Rc<CoreCtx>,
}

impl fmt::Debug for PendingRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingRun")
            .field("run", &self.run_handle.id())
            .finish()
    }
}

impl PendingRun {
    /// The run id.
    pub fn run(&self) -> RunId {
        self.run_handle.id()
    }

    /// Waits for the program to complete and collects its results.
    pub async fn finish(self) -> RunResult {
        let run = self.run_handle.id();
        self.run_handle.await_done().await;
        let mut objects = self
            .core
            .results
            .borrow_mut()
            .remove(&run)
            .unwrap_or_default();
        objects.sort();
        RunResult {
            run,
            objects,
            store: self.core.store.clone(),
        }
    }
}

/// A Pathways client.
#[derive(Clone)]
pub struct Client {
    id: ClientId,
    label: String,
    host: HostId,
    core: Rc<CoreCtx>,
    rm: Rc<ResourceManager>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("host", &self.host)
            .finish()
    }
}

impl Client {
    pub(crate) fn new(
        id: ClientId,
        label: String,
        host: HostId,
        core: Rc<CoreCtx>,
        rm: Rc<ResourceManager>,
    ) -> Self {
        Client {
            id,
            label,
            host,
            core,
            rm,
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The host the client process runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The label used for this client's programs in device traces.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Requests a virtual slice from the resource manager.
    ///
    /// # Errors
    ///
    /// See [`ResourceError`].
    pub fn virtual_slice(&self, request: SliceRequest) -> Result<VirtualSlice, ResourceError> {
        self.rm.allocate(self.id, request)
    }

    /// Starts tracing a new program (the §3 program tracer).
    pub fn trace(&self, name: impl Into<String>) -> crate::program::ProgramBuilder {
        crate::program::ProgramBuilder::new(name)
    }

    /// The shared runtime context.
    pub fn core(&self) -> &Rc<CoreCtx> {
        &self.core
    }

    /// The simulation handle (for timing measurements in benchmarks).
    pub fn handle(&self) -> &pathways_sim::SimHandle {
        &self.core.handle
    }

    /// Lowers a traced program against the current virtual→physical
    /// mapping. Re-prepare after a remap.
    pub fn prepare(&self, program: &Program) -> PreparedProgram {
        prepare(&self.core, self.id, self.host, &self.label, program)
    }

    /// Submits a prepared program: pays the client-side (Python-thread)
    /// overhead and sends the control messages, returning a handle that
    /// resolves to the results. Splitting submission from completion
    /// lets a client pipeline programs the way §5.2's workload does —
    /// while keeping the client-side work serialized, as a real
    /// single-threaded client process would.
    pub async fn submit(&self, prepared: &PreparedProgram) -> PendingRun {
        // Client-side work: Python call, tracing-cache lookup,
        // serialization of the submission.
        let cfg = &self.core.cfg;
        let n_comps = prepared.info.program.computations().len() as u64;
        self.core
            .handle
            .sleep(cfg.client_overhead + cfg.client_per_comp * n_comps)
            .await;

        // Install the dataflow without Start fan-out: the scheduler's
        // grant messages carry the start signal to every participating
        // host (§4.5's single subgraph message). Only the Result node —
        // local to this client — is started here.
        let run_handle = self.core.plaque.launch_unstarted(&prepared.graph);
        let run = run_handle.id();
        let result_node =
            pathways_plaque::NodeId(prepared.info.program.computations().len() as u32);
        self.core.plaque.start_local(self.host, run, result_node, 0);
        for (island, comps) in &prepared.submits {
            let sched_host = self.core.sched_hosts[island];
            // Occupancy estimate for *this island's* computations only —
            // other islands' work runs in parallel on their own devices.
            let island_cost: pathways_sim::SimDuration = comps
                .iter()
                .map(|c| {
                    let coll = c
                        .collective
                        .map_or(pathways_sim::SimDuration::ZERO, |(_, _, d)| d);
                    (c.compute + coll) * c.participants as u64
                })
                .sum();
            let msg = CtrlMsg::Submit(SubmitMsg {
                client: self.id,
                label: self.label.clone(),
                run,
                est_cost: island_cost,
                comps: comps.clone(),
            });
            let bytes = ctrl_msg_bytes(&msg);
            self.core
                .sched_router
                .send(self.host, sched_host, msg, bytes);
        }

        PendingRun {
            run_handle,
            core: Rc::clone(&self.core),
        }
    }

    /// Runs a prepared program to completion, returning output handles.
    ///
    /// Must be called from inside a simulation task.
    pub async fn run(&self, prepared: &PreparedProgram) -> RunResult {
        self.submit(prepared).await.finish().await
    }

    /// Runs a prepared program `n` times back to back (each run awaits
    /// the previous one's results — the OpByOp pattern of §5.1) and
    /// returns the results of the final run.
    pub async fn run_op_by_op(&self, prepared: &PreparedProgram, n: u32) -> Option<RunResult> {
        let mut last = None;
        for _ in 0..n {
            last = Some(self.run(prepared).await);
        }
        last
    }
}
