//! First-class data futures: typed references to (possibly not yet
//! produced) objects in the sharded object store.
//!
//! An [`ObjectRef`] is the client-side handle the paper's client library
//! hands back from `submit`: *a future on an object-store handle*. It
//! carries everything a dependent program needs before the data exists —
//! identity, shape (bytes per shard), sharding (one device per shard,
//! snapshotted at lowering time) and per-shard readiness events — so the
//! coordinator can dispatch the consumer while the producer is still
//! queued (parallel asynchronous dispatch across programs, §4.5).
//!
//! Reference counting lives here, at object granularity: cloning an
//! `ObjectRef` retains the object, dropping it releases. A clone that
//! races a client-failure GC is harmless — [`ObjectStore::retain`]
//! reports [`StoreError`](crate::StoreError) instead of aborting, and
//! the drop-side release of a reclaimed object is a no-op.

use std::fmt;
use std::sync::Arc;

use pathways_net::DeviceId;
use pathways_sim::sync::Event;

use crate::program::CompId;
use crate::storage::{ObjectError, ObjectId, ObjectStore};

/// A future on a (sharded) object in the object store.
///
/// Obtained from [`Run::object_ref`](crate::Run::object_ref) immediately
/// after a non-blocking [`Client::submit`](crate::Client::submit) — no
/// await of the run is needed — and bound to another program's input via
/// [`Client::submit_with`](crate::Client::submit_with).
pub struct ObjectRef {
    id: ObjectId,
    bytes_per_shard: u64,
    /// One producing device per shard (lowering-time snapshot).
    devices: Arc<Vec<DeviceId>>,
    /// One readiness event per shard, fired when the producing kernel
    /// finishes that shard.
    ready: Arc<Vec<Event>>,
    store: ObjectStore,
}

impl fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectRef")
            .field("id", &self.id)
            .field("shards", &self.shards())
            .field("bytes_per_shard", &self.bytes_per_shard)
            .field("ready", &self.ready.iter().filter(|e| e.is_set()).count())
            .finish()
    }
}

impl ObjectRef {
    pub(crate) fn new(
        id: ObjectId,
        bytes_per_shard: u64,
        devices: Vec<DeviceId>,
        ready: Vec<Event>,
        store: ObjectStore,
    ) -> Self {
        debug_assert_eq!(devices.len(), ready.len());
        ObjectRef {
            id,
            bytes_per_shard,
            devices: Arc::new(devices),
            ready: Arc::new(ready),
            store,
        }
    }

    /// The underlying object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The computation (in the producing program) that writes the object.
    pub fn comp(&self) -> CompId {
        self.id.comp
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.devices.len() as u32
    }

    /// Bytes each shard occupies in HBM.
    pub fn bytes_per_shard(&self) -> u64 {
        self.bytes_per_shard
    }

    /// Total logical size.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_shard * self.devices.len() as u64
    }

    /// The device holding (or about to hold) each shard, as lowered when
    /// the producing program was prepared. Stale after a slice remap.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Per-shard readiness event: set once the producing kernel finished
    /// that shard. Exists — and can be awaited — before the producer has
    /// even been granted devices.
    pub fn shard_ready(&self, shard: u32) -> &Event {
        &self.ready[shard as usize]
    }

    /// Resolves when every shard of the object has been produced — or,
    /// if the producer failed (device/host/client death, partition),
    /// with the typed error instead of blocking forever (§4.3's
    /// "delivering errors on failures"). Failure propagation fires the
    /// readiness events of doomed objects, so this never hangs on a
    /// fault.
    ///
    /// # Errors
    ///
    /// [`ObjectError::ProducerFailed`] if the producing run failed or
    /// the data was lost with the hardware holding it.
    pub async fn ready(&self) -> Result<(), ObjectError> {
        for ev in self.ready.iter() {
            ev.wait().await;
        }
        // Recovery transparency (tiered store): if the object's data was
        // lost to hardware death but a restore/recompute is rebuilding
        // it, wait through the recovery window instead of reporting a
        // transient state. The window always closes — with the shards
        // back (Ok below) or a terminal error.
        while let Some(rec) = self.store.recovering(self.id) {
            rec.wait().await;
        }
        match self.error() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Awaits readiness and resolves to the object's id — the "get" of
    /// the paper's client API, minus the bytes (results stay in HBM; the
    /// handle is the value).
    ///
    /// # Errors
    ///
    /// Same as [`ObjectRef::ready`].
    pub async fn get(&self) -> Result<ObjectId, ObjectError> {
        self.ready().await?;
        Ok(self.id)
    }

    /// The recorded failure of this object, if its producer failed. A
    /// handle whose store entry disappeared (failure-GC of the owner)
    /// reports [`FailureReason::OwnerGone`](crate::FailureReason).
    pub fn error(&self) -> Option<ObjectError> {
        self.store.object_error(self.id)
    }

    /// True if every shard has been produced (or the object failed —
    /// failure fires the events; check [`ObjectRef::error`]).
    pub fn is_ready(&self) -> bool {
        self.ready.iter().all(Event::is_set)
    }
}

impl Clone for ObjectRef {
    /// Cloning retains the object (one logical refcount, §4.2). A clone
    /// racing the failure-GC of the owner simply yields a ref to an
    /// already-reclaimed object; its drop is then a no-op.
    fn clone(&self) -> Self {
        let _ = self.store.retain(self.id);
        ObjectRef {
            id: self.id,
            bytes_per_shard: self.bytes_per_shard,
            devices: Arc::clone(&self.devices),
            ready: Arc::clone(&self.ready),
            store: self.store.clone(),
        }
    }
}

impl Drop for ObjectRef {
    fn drop(&mut self) {
        self.store.release(self.id);
    }
}

/// A bound external input of one run: the `ObjectRef` (kept alive for
/// the duration of the run) plus a countdown of input shards that still
/// have transfers to drive. The last shard removes the binding.
pub(crate) struct InputBinding {
    pub objref: ObjectRef,
    pub remaining: std::sync::atomic::AtomicU32,
}

impl InputBinding {
    pub(crate) fn new(objref: ObjectRef, shards: u32) -> Self {
        InputBinding {
            objref,
            remaining: std::sync::atomic::AtomicU32::new(shards),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_net::ClientId;
    use pathways_plaque::RunId;

    fn obj(run: u64, comp: u32) -> ObjectId {
        ObjectId {
            run: RunId(run),
            comp: CompId(comp),
        }
    }

    #[test]
    fn clone_retains_and_drop_releases() {
        let store = ObjectStore::new();
        let ready = store.declare(obj(0, 0), ClientId(0), 2);
        let r = ObjectRef::new(
            obj(0, 0),
            64,
            vec![DeviceId(0), DeviceId(1)],
            ready,
            store.clone(),
        );
        assert_eq!(r.shards(), 2);
        assert_eq!(r.total_bytes(), 128);
        let r2 = r.clone();
        drop(r);
        assert_eq!(store.len(), 1, "clone keeps the object alive");
        drop(r2);
        assert!(store.is_empty());
    }

    #[test]
    fn clone_after_gc_is_harmless() {
        let store = ObjectStore::new();
        let ready = store.declare(obj(0, 0), ClientId(0), 1);
        let r = ObjectRef::new(obj(0, 0), 8, vec![DeviceId(0)], ready, store.clone());
        assert_eq!(store.gc_client(ClientId(0)), 1);
        let r2 = r.clone(); // retain fails internally; no panic
        assert!(r2.is_ready(), "gc fired the readiness events");
        drop(r2);
        drop(r);
        assert!(store.is_empty());
    }
}
