//! Background housekeeping over the coordination substrate.
//!
//! §4.3: *"it is also convenient to use an extensible, general-purpose
//! dataflow engine to handle DCN communication, since this means that
//! PATHWAYS can also use it for background housekeeping tasks such as
//! distributing configuration information, monitoring programs, cleaning
//! them up, delivering errors on failures, and so on."*
//!
//! This module implements four of those as PLAQUE programs:
//!
//! * [`distribute_config`] — broadcast a key/value configuration update
//!   to every host; each host's config store is updated and
//!   acknowledgements gathered back;
//! * [`collect_health`] — fan-out a probe, gather per-host health
//!   (device count, kernels executed, HBM usage) at the controller;
//! * [`deliver_errors`] — fan a failure notification out to every
//!   *live* host so its client agents learn which runs died and why
//!   (the "delivering errors on failures" clause). The
//!   [`FaultInjector`](crate::FaultInjector) launches this
//!   automatically after each injected fault;
//! * heal delivery ([`HealLog`]) — fan a slice-remap notice out to
//!   every live host after elastic healing, so client agents know their
//!   lowered programs are stale and must re-lower before resubmitting.

use pathways_sim::hash::FxHashMap;
use pathways_sim::Lock;
use std::collections::BTreeMap;
use std::sync::Arc;

use pathways_net::{DeviceId, HostId};
use pathways_plaque::{EdgeId, GraphBuilder, Operator, RunId, ShardCtx, Tuple};

use crate::context::CoreCtx;
use crate::fault::FailureState;
use crate::resource::SliceId;

/// A per-host key/value configuration store, updated via housekeeping
/// broadcasts.
#[derive(Clone, Default)]
pub struct ConfigStore {
    inner: Arc<Lock<FxHashMap<(HostId, String), String>>>,
}

impl std::fmt::Debug for ConfigStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConfigStore")
            .field("entries", &self.inner.lock().len())
            .finish()
    }
}

impl ConfigStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads `key` as seen by `host`.
    pub fn get(&self, host: HostId, key: &str) -> Option<String> {
        self.inner.lock().get(&(host, key.to_string())).cloned()
    }

    fn set(&self, host: HostId, key: String, value: String) {
        self.inner.lock().insert((host, key), value);
    }
}

/// One host's health report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostHealth {
    /// Reporting host.
    pub host: HostId,
    /// Devices attached to the host.
    pub devices: u32,
    /// Kernels executed across those devices.
    pub kernels_executed: u64,
    /// Bytes of HBM currently in use across those devices.
    pub hbm_used: u64,
}

#[derive(Debug, Clone)]
struct ConfigMsg {
    key: String,
    value: String,
}

#[derive(Debug, Clone, Copy)]
struct Ack;

struct Broadcaster {
    out: EdgeId,
    msg: ConfigMsg,
}

impl Operator for Broadcaster {
    fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
        ctx.broadcast(self.out, Tuple::new(self.msg.clone(), 64));
        ctx.halt();
    }
}

struct ConfigApplier {
    store: ConfigStore,
    ack_edge: EdgeId,
}

impl Operator for ConfigApplier {
    fn on_tuple(&mut self, ctx: &mut ShardCtx<'_>, _edge: EdgeId, _src: u32, tuple: Tuple) {
        let msg = tuple.expect::<ConfigMsg>();
        self.store
            .set(ctx.host(), msg.key.clone(), msg.value.clone());
        ctx.send(self.ack_edge, 0, Tuple::control(Ack));
    }
}

struct AckCollector {
    acks: Arc<Lock<u32>>,
}

impl Operator for AckCollector {
    fn on_tuple(&mut self, _ctx: &mut ShardCtx<'_>, _e: EdgeId, _s: u32, tuple: Tuple) {
        tuple.expect::<Ack>();
        *self.acks.lock() += 1;
    }
}

/// Broadcasts `key = value` to every host's [`ConfigStore`] via a
/// PLAQUE program launched from `controller`; resolves once every host
/// acknowledged. Returns the number of acknowledgements.
pub async fn distribute_config(
    core: &Arc<CoreCtx>,
    store: &ConfigStore,
    controller: HostId,
    key: impl Into<String>,
    value: impl Into<String>,
) -> u32 {
    let hosts: Vec<HostId> = core.fabric.topology().hosts().collect();
    let acks = Arc::new(Lock::new(0u32));
    let msg = ConfigMsg {
        key: key.into(),
        value: value.into(),
    };
    // Edge ids are assigned in creation order: broadcast = 0, ack = 1.
    let bcast_edge = EdgeId(0);
    let ack_edge = EdgeId(1);
    let mut g = GraphBuilder::new("config-distribution");
    let src = g.node("broadcast", vec![controller], move |_| {
        Box::new(Broadcaster {
            out: bcast_edge,
            msg: msg.clone(),
        })
    });
    let appliers = {
        let store = store.clone();
        g.node("apply", hosts.clone(), move |_| {
            Box::new(ConfigApplier {
                store: store.clone(),
                ack_edge,
            })
        })
    };
    let collector = {
        let acks = Arc::clone(&acks);
        g.node("collect", vec![controller], move |_| {
            Box::new(AckCollector {
                acks: Arc::clone(&acks),
            })
        })
    };
    assert_eq!(g.edge(src, appliers), bcast_edge);
    assert_eq!(g.edge(appliers, collector), ack_edge);
    let graph = g.build().expect("housekeeping graph is valid");
    core.plaque.launch(&graph, controller).await_done().await;
    let n = *acks.lock();
    n
}

struct HealthProbe {
    out: EdgeId,
}

impl Operator for HealthProbe {
    fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
        ctx.broadcast(self.out, Tuple::control(Ack));
        ctx.halt();
    }
}

struct HealthReporter {
    core: Arc<CoreCtx>,
    report_edge: EdgeId,
}

impl Operator for HealthReporter {
    fn on_tuple(&mut self, ctx: &mut ShardCtx<'_>, _e: EdgeId, _s: u32, _t: Tuple) {
        let host = ctx.host();
        let devices: Vec<DeviceId> = self.core.fabric.topology().devices_of_host(host).collect();
        let mut kernels = 0u64;
        let mut hbm_used = 0u64;
        for d in &devices {
            let dev = &self.core.devices[d];
            kernels += dev.stats().kernels;
            hbm_used += dev.hbm().used();
        }
        let report = HostHealth {
            host,
            devices: devices.len() as u32,
            kernels_executed: kernels,
            hbm_used,
        };
        ctx.send(self.report_edge, 0, Tuple::new(report, 48));
    }
}

struct HealthCollector {
    reports: Arc<Lock<BTreeMap<HostId, HostHealth>>>,
}

impl Operator for HealthCollector {
    fn on_tuple(&mut self, _ctx: &mut ShardCtx<'_>, _e: EdgeId, _s: u32, tuple: Tuple) {
        let h = tuple.expect::<HostHealth>().clone();
        self.reports.lock().insert(h.host, h);
    }
}

/// Gathers a health report from every host via a PLAQUE program.
pub async fn collect_health(
    core: &Arc<CoreCtx>,
    controller: HostId,
) -> BTreeMap<HostId, HostHealth> {
    let hosts: Vec<HostId> = core.fabric.topology().hosts().collect();
    let reports = Arc::new(Lock::new(BTreeMap::new()));
    let probe_edge = EdgeId(0);
    let report_edge = EdgeId(1);
    let mut g = GraphBuilder::new("health-monitor");
    let src = g.node("probe", vec![controller], move |_| {
        Box::new(HealthProbe { out: probe_edge })
    });
    let reporters = {
        let core = Arc::clone(core);
        g.node("report", hosts.clone(), move |_| {
            Box::new(HealthReporter {
                core: Arc::clone(&core),
                report_edge,
            })
        })
    };
    let collector = {
        let reports = Arc::clone(&reports);
        g.node("collect", vec![controller], move |_| {
            Box::new(HealthCollector {
                reports: Arc::clone(&reports),
            })
        })
    };
    assert_eq!(g.edge(src, reporters), probe_edge);
    assert_eq!(g.edge(reporters, collector), report_edge);
    let graph = g.build().expect("housekeeping graph is valid");
    core.plaque.launch(&graph, controller).await_done().await;
    let out = reports.lock().clone();
    out
}

// ---------------------------------------------------------------------------
// Error delivery (failures → owning hosts)
// ---------------------------------------------------------------------------

/// One host's delivered failure notices: `(failed run, reason)`.
pub type HostNotices = Vec<(RunId, String)>;

/// Per-host record of failures delivered by housekeeping: which runs
/// died and why, as seen by each host's client agent.
#[derive(Clone, Default)]
pub struct ErrorLog {
    inner: Arc<Lock<BTreeMap<HostId, HostNotices>>>,
}

impl std::fmt::Debug for ErrorLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErrorLog")
            .field("hosts", &self.inner.lock().len())
            .finish()
    }
}

impl ErrorLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Failure notices delivered to `host`, in delivery order.
    pub fn notices(&self, host: HostId) -> HostNotices {
        self.inner.lock().get(&host).cloned().unwrap_or_default()
    }

    /// True if `host` has been told that `run` failed.
    pub fn knows_about(&self, host: HostId, run: RunId) -> bool {
        self.inner
            .lock()
            .get(&host)
            .is_some_and(|v| v.iter().any(|(r, _)| *r == run))
    }

    fn record(&self, host: HostId, run: RunId, reason: String) {
        self.inner
            .lock()
            .entry(host)
            .or_default()
            .push((run, reason));
    }
}

/// A broadcast of `notices` from one controller shard.
#[derive(Debug, Clone)]
struct NoticeMsg<T> {
    notices: Vec<T>,
}

struct NoticeBroadcaster<T> {
    out: EdgeId,
    msg: NoticeMsg<T>,
}

impl<T: Clone + Send + Sync + 'static> Operator for NoticeBroadcaster<T> {
    fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
        let bytes = 32 + 24 * self.msg.notices.len() as u64;
        ctx.broadcast(self.out, Tuple::new(self.msg.clone(), bytes));
        ctx.halt();
    }
}

/// How a host applies one received notice to its local log.
type ApplyNotice<T> = Arc<dyn Fn(HostId, &T) + Send + Sync>;

struct NoticeApplier<T> {
    apply: ApplyNotice<T>,
    ack_edge: EdgeId,
}

impl<T: Clone + Send + Sync + 'static> Operator for NoticeApplier<T> {
    fn on_tuple(&mut self, ctx: &mut ShardCtx<'_>, _edge: EdgeId, _src: u32, tuple: Tuple) {
        let msg = tuple.expect::<NoticeMsg<T>>();
        for notice in &msg.notices {
            (self.apply)(ctx.host(), notice);
        }
        ctx.send(self.ack_edge, 0, Tuple::control(Ack));
    }
}

/// The shared broadcast/apply/ack fan-out shape behind error and heal
/// delivery: one controller shard broadcasts the notices, every host
/// applies them through `apply`, acknowledgements gather back.
fn notice_delivery_graph<T: Clone + Send + Sync + 'static>(
    name: &str,
    controller: HostId,
    hosts: Vec<HostId>,
    notices: Vec<T>,
    apply: ApplyNotice<T>,
    acks: &Arc<Lock<u32>>,
) -> pathways_plaque::Graph {
    let bcast_edge = EdgeId(0);
    let ack_edge = EdgeId(1);
    let mut g = GraphBuilder::new(name);
    let msg = NoticeMsg { notices };
    let src = g.node("broadcast", vec![controller], move |_| {
        Box::new(NoticeBroadcaster {
            out: bcast_edge,
            msg: msg.clone(),
        })
    });
    let appliers = g.node("apply", hosts, move |_| {
        Box::new(NoticeApplier {
            apply: Arc::clone(&apply),
            ack_edge,
        })
    });
    let collector = {
        let acks = Arc::clone(acks);
        g.node("collect", vec![controller], move |_| {
            Box::new(AckCollector {
                acks: Arc::clone(&acks),
            })
        })
    };
    assert_eq!(g.edge(src, appliers), bcast_edge);
    assert_eq!(g.edge(appliers, collector), ack_edge);
    g.build().expect("housekeeping graph is valid")
}

fn error_delivery_graph(
    controller: HostId,
    hosts: Vec<HostId>,
    log: &ErrorLog,
    failures: Vec<(RunId, String)>,
    acks: &Arc<Lock<u32>>,
) -> pathways_plaque::Graph {
    let log = log.clone();
    notice_delivery_graph(
        "error-delivery",
        controller,
        hosts,
        failures,
        Arc::new(move |host, (run, reason): &(RunId, String)| {
            log.record(host, *run, reason.clone());
        }),
        acks,
    )
}

/// Hosts that can still participate in housekeeping from `controller`'s
/// point of view: alive, and with an unsevered link to the controller.
fn reachable_hosts(
    core: &Arc<CoreCtx>,
    failures: &FailureState,
    controller: HostId,
) -> Vec<HostId> {
    core.fabric
        .topology()
        .hosts()
        .filter(|h| !failures.host_dead(*h) && !failures.link_down(controller, *h))
        .collect()
}

/// Builds the delivery program against the hosts currently reachable
/// from the lowest live host; `None` if no host is left alive.
fn prepare_error_delivery(
    core: &Arc<CoreCtx>,
    failures: &FailureState,
    log: &ErrorLog,
    notices: &[(RunId, String)],
) -> Option<(pathways_plaque::Graph, HostId, Arc<Lock<u32>>)> {
    let controller = core
        .fabric
        .topology()
        .hosts()
        .find(|h| !failures.host_dead(*h))?;
    let hosts = reachable_hosts(core, failures, controller);
    let acks = Arc::new(Lock::new(0u32));
    let graph = error_delivery_graph(controller, hosts, log, notices.to_vec(), &acks);
    Some((graph, controller, acks))
}

/// Delivers failure notices to every live, reachable host via a PLAQUE
/// program launched from the lowest live host; resolves once every such
/// host acknowledged. Returns the number of acknowledgements (0 if no
/// host is left alive).
///
/// The reachable-host set is snapshotted at launch: if one of those
/// hosts dies *while the program is in flight*, its applier shard never
/// halts and this future never resolves. Callers that may race further
/// faults must not await delivery — the fault injector uses the
/// fire-and-forget `spawn_error_delivery` internally for exactly that
/// reason. Reserve this awaited form for quiescent-fault settings
/// (tests, post-mortem reporting).
pub async fn deliver_errors(
    core: &Arc<CoreCtx>,
    failures: &FailureState,
    log: &ErrorLog,
    notices: &[(RunId, String)],
) -> u32 {
    let Some((graph, controller, acks)) = prepare_error_delivery(core, failures, log, notices)
    else {
        return 0;
    };
    core.plaque.launch(&graph, controller).await_done().await;
    let n = *acks.lock();
    n
}

/// Fire-and-forget form of [`deliver_errors`], used by the fault
/// injector: the delivery program runs in the background and is *not*
/// awaited, so a second fault landing mid-delivery cannot wedge the
/// injector (shards lost to the newer fault simply never ack).
pub(crate) fn spawn_error_delivery(
    core: &Arc<CoreCtx>,
    failures: &FailureState,
    log: &ErrorLog,
    notices: &[(RunId, String)],
) {
    if let Some((graph, controller, _acks)) = prepare_error_delivery(core, failures, log, notices) {
        drop(core.plaque.launch(&graph, controller));
    }
}

// ---------------------------------------------------------------------------
// Heal delivery (slice remaps → owning hosts)
// ---------------------------------------------------------------------------

/// One host's delivered heal notices: `(remapped slice, description)`.
pub type HealNotices = Vec<(SliceId, String)>;

/// Per-host record of slice heals delivered by housekeeping: which
/// virtual slices were remapped off dead hardware (and onto what), as
/// seen by each host's client agent. The notice is the trigger for the
/// client side of elasticity: programs lowered against a remapped slice
/// are stale and re-lower on their next submit.
#[derive(Clone, Default)]
pub struct HealLog {
    inner: Arc<Lock<BTreeMap<HostId, HealNotices>>>,
}

impl std::fmt::Debug for HealLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealLog")
            .field("hosts", &self.inner.lock().len())
            .finish()
    }
}

impl HealLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heal notices delivered to `host`, in delivery order.
    pub fn notices(&self, host: HostId) -> HealNotices {
        self.inner.lock().get(&host).cloned().unwrap_or_default()
    }

    /// True if `host` has been told that `slice` was remapped.
    pub fn knows_about(&self, host: HostId, slice: SliceId) -> bool {
        self.inner
            .lock()
            .get(&host)
            .is_some_and(|v| v.iter().any(|(s, _)| *s == slice))
    }

    fn record(&self, host: HostId, slice: SliceId, detail: String) {
        self.inner
            .lock()
            .entry(host)
            .or_default()
            .push((slice, detail));
    }
}

/// Fire-and-forget heal-notice fan-out to every live, reachable host,
/// launched by the fault injector right after the resource manager
/// remapped slices off dead hardware. Mirrors `spawn_error_delivery`:
/// not awaited, so an overlapping fault cannot wedge the injector.
pub(crate) fn spawn_heal_delivery(
    core: &Arc<CoreCtx>,
    failures: &FailureState,
    log: &HealLog,
    notices: &[(SliceId, String)],
) {
    let Some(controller) = core
        .fabric
        .topology()
        .hosts()
        .find(|h| !failures.host_dead(*h))
    else {
        return;
    };
    let hosts = reachable_hosts(core, failures, controller);
    let acks = Arc::new(Lock::new(0u32));
    let log = log.clone();
    let graph = notice_delivery_graph(
        "heal-delivery",
        controller,
        hosts,
        notices.to_vec(),
        Arc::new(move |host, (slice, detail): &(SliceId, String)| {
            log.record(host, *slice, detail.clone());
        }),
        &acks,
    );
    drop(core.plaque.launch(&graph, controller));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
    use pathways_net::{ClusterSpec, NetworkParams};
    use pathways_sim::{Sim, SimDuration};

    fn runtime(sim: &Sim, hosts: u32) -> PathwaysRuntime {
        PathwaysRuntime::new(
            sim,
            ClusterSpec::config_b(hosts),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        )
    }

    #[test]
    fn config_reaches_every_host() {
        let mut sim = Sim::new(0);
        let rt = runtime(&sim, 4);
        let store = ConfigStore::new();
        let core = Arc::clone(rt.core());
        let store2 = store.clone();
        let job = sim.spawn("hk", async move {
            distribute_config(&core, &store2, HostId(0), "sched/policy", "fifo").await
        });
        sim.run_to_quiescence();
        assert_eq!(job.try_take(), Some(4));
        for h in 0..4 {
            assert_eq!(
                store.get(HostId(h), "sched/policy").as_deref(),
                Some("fifo")
            );
        }
    }

    #[test]
    fn health_reflects_executed_work() {
        let mut sim = Sim::new(0);
        let rt = runtime(&sim, 2);
        // Run a program so device stats are non-zero.
        let client = rt.client(HostId(0));
        let slice = client.virtual_slice(SliceRequest::devices(16)).unwrap();
        let mut b = client.trace("work");
        b.computation(
            FnSpec::compute_only("f", SimDuration::from_micros(10)).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = client.prepare(&program);
        let core = Arc::clone(rt.core());
        let job = sim.spawn("flow", async move {
            client.run(&prepared).await;
            collect_health(&core, HostId(0)).await
        });
        sim.run_to_quiescence();
        let health = job.try_take().unwrap();
        assert_eq!(health.len(), 2);
        let total_kernels: u64 = health.values().map(|h| h.kernels_executed).sum();
        assert_eq!(total_kernels, 16);
        assert!(health.values().all(|h| h.devices == 8));
    }

    #[test]
    fn error_delivery_skips_dead_hosts_and_reaches_the_rest() {
        use crate::fault::FaultSpec;
        use pathways_plaque::RunId;

        let mut sim = Sim::new(0);
        let rt = runtime(&sim, 4);
        // Kill host 3 through the injector so both the fabric and the
        // failure registry know about it.
        rt.faults().inject(&FaultSpec::Host(HostId(3)));
        let core = Arc::clone(rt.core());
        let failures = rt.faults().state().clone();
        let log = ErrorLog::new();
        let notices = vec![(RunId(9), "dev3 failed".to_string())];
        let log2 = log.clone();
        let job = sim.spawn("deliver", async move {
            deliver_errors(&core, &failures, &log2, &notices).await
        });
        sim.run_to_quiescence();
        assert_eq!(job.try_take(), Some(3), "three live hosts acknowledge");
        for h in 0..3 {
            assert!(
                log.knows_about(HostId(h), RunId(9)),
                "host {h} missed the notice"
            );
            assert_eq!(log.notices(HostId(h))[0].1, "dev3 failed");
        }
        assert!(
            log.notices(HostId(3)).is_empty(),
            "dead host learns nothing"
        );
    }

    #[test]
    fn housekeeping_runs_alongside_training() {
        // Config distribution and training programs share the substrate
        // without interfering.
        let mut sim = Sim::new(0);
        let rt = runtime(&sim, 2);
        let client = rt.client(HostId(1));
        let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = client.trace("train");
        b.computation(
            FnSpec::compute_only("f", SimDuration::from_micros(200)).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = client.prepare(&program);
        sim.spawn("train", async move {
            for _ in 0..10 {
                client.run(&prepared).await;
            }
        });
        let store = ConfigStore::new();
        let core = Arc::clone(rt.core());
        let store2 = store.clone();
        let h = sim.handle();
        let hk = sim.spawn("hk", async move {
            let mut acks = 0;
            for i in 0..5 {
                h.sleep(SimDuration::from_micros(150)).await;
                acks += distribute_config(&core, &store2, HostId(0), "epoch", format!("{i}")).await;
            }
            acks
        });
        assert!(sim.run().is_quiescent());
        assert_eq!(hk.try_take(), Some(10));
        assert_eq!(store.get(HostId(1), "epoch").as_deref(), Some("4"));
    }
}
