//! Assembly of the full Pathways backend over a simulated cluster.

use pathways_sim::hash::FxHashMap;
use pathways_sim::Lock;
use std::fmt;
use std::sync::Arc;

use pathways_device::{CollectiveRendezvous, DeviceConfig, DeviceHandle};
use pathways_net::{
    ClientId, ClusterSpec, DeviceId, Fabric, HostId, NetworkParams, Router, Topology,
};
use pathways_plaque::PlaqueRuntime;
use pathways_sim::{Executor, ExecutorRef, FaultPlan};

use crate::client::Client;
use crate::config::PathwaysConfig;
use crate::context::CoreCtx;
use crate::exec::{spawn_executor, ExecutorShared};
use crate::fault::{FailureState, FaultInjector, FaultSpec};
use crate::resource::ResourceManager;
use crate::sched::{scheduler_hosts, spawn_scheduler, SchedulerHandle};
use crate::storage::ObjectStore;

/// A fully-assembled Pathways backend: devices, executors, schedulers,
/// object store, coordination substrate and resource manager, all
/// running as tasks on one simulation.
pub struct PathwaysRuntime {
    core: Arc<CoreCtx>,
    rm: Arc<ResourceManager>,
    schedulers: FxHashMap<pathways_net::IslandId, SchedulerHandle>,
    injector: Arc<FaultInjector>,
    next_client: Lock<u32>,
}

impl fmt::Debug for PathwaysRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PathwaysRuntime")
            .field("devices", &self.core.devices.len())
            .field("islands", &self.schedulers.len())
            .finish()
    }
}

impl PathwaysRuntime {
    /// Builds an executor from `cfg.executor` and the backend on top of
    /// it. Convenience for the common case where the caller does not
    /// need to share the executor with other components before the
    /// runtime exists.
    pub fn launch(
        seed: u64,
        spec: ClusterSpec,
        net: NetworkParams,
        cfg: PathwaysConfig,
    ) -> (Executor, Self) {
        let exec = Executor::new(cfg.executor, seed);
        let rt = Self::new(&exec, spec, net, cfg);
        (exec, rt)
    }

    /// Builds the backend on `exec` for the given cluster. `exec` is
    /// anything that exposes a [`SimHandle`](pathways_sim::SimHandle) —
    /// a [`Sim`](pathways_sim::Sim), a
    /// [`ThreadedExecutor`](pathways_sim::ThreadedExecutor), or the
    /// backend-erased [`Executor`].
    pub fn new(
        exec: &impl ExecutorRef,
        spec: ClusterSpec,
        net: NetworkParams,
        cfg: PathwaysConfig,
    ) -> Self {
        let handle = exec.executor_handle();
        let topo = Arc::new(spec.build());
        let fabric = Fabric::new(handle.clone(), Arc::clone(&topo), net);

        // Devices, with one collective rendezvous per island.
        let mut devices: FxHashMap<DeviceId, DeviceHandle> = FxHashMap::default();
        for island in topo.islands() {
            let rz = CollectiveRendezvous::new(handle.clone());
            for d in topo.devices_of_island(island) {
                devices.insert(
                    d,
                    DeviceHandle::spawn(
                        &handle,
                        d,
                        rz.clone(),
                        DeviceConfig {
                            hbm_capacity: cfg.hbm_per_device,
                        },
                    ),
                );
            }
        }
        let devices = Arc::new(devices);

        let store = match &cfg.tiers {
            Some(tc) => ObjectStore::with_tiers(handle.clone(), Arc::clone(&topo), tc.clone()),
            None => ObjectStore::new(),
        };
        let sched_router: Router<crate::sched::CtrlMsg> = Router::new(fabric.clone());
        let exec_router: Router<crate::sched::CtrlMsg> = Router::new(fabric.clone());
        let plaque = PlaqueRuntime::new(fabric.clone());
        let failures = FailureState::new();

        // Executors: one per host.
        let mut executors = FxHashMap::default();
        for host in topo.hosts() {
            let shared = ExecutorShared::new();
            spawn_executor(
                &handle,
                host,
                &exec_router,
                shared.clone(),
                fabric.clone(),
                store.clone(),
                Arc::clone(&devices),
                plaque.clone(),
                failures.clone(),
                cfg.dispatch,
            );
            executors.insert(host, shared);
        }

        // Schedulers: one per island, on the island's first host.
        // Submissions arrive on the sched router; grants leave on the
        // exec router (separate namespaces, one shared physical NIC).
        let sched_hosts = scheduler_hosts(&topo);
        let mut schedulers = FxHashMap::default();
        for island in topo.islands() {
            let host = sched_hosts[&island];
            let sh = spawn_scheduler(
                &handle,
                sched_router.clone(),
                exec_router.clone(),
                island,
                host,
                topo.devices_of_island(island).len() as u32,
                &cfg.policy,
                cfg.sched_decision,
                cfg.sched_horizon,
                cfg.batch_grants,
                failures.clone(),
            );
            schedulers.insert(island, sh);
        }
        let core = Arc::new(CoreCtx {
            handle: handle.clone(),
            fabric,
            store,
            plaque,
            sched_router,
            exec_router,
            devices,
            executors,
            sched_hosts,
            bindings: Lock::named("core.bindings", FxHashMap::default()),
            input_slots: Lock::named("core.input_slots", FxHashMap::default()),
            failures,
            cfg,
        });
        let rm = Arc::new(ResourceManager::new(Arc::clone(&topo)));
        let injector = Arc::new(FaultInjector::new(
            Arc::clone(&core),
            Arc::clone(&rm),
            core.failures.clone(),
        ));
        if core.cfg.tiers.as_ref().is_some_and(|t| t.recovery) {
            FaultInjector::enable_recovery(&injector);
        }
        PathwaysRuntime {
            core,
            rm,
            schedulers,
            injector,
            next_client: Lock::new(0),
        }
    }

    /// The shared context (for advanced integrations and tests).
    pub fn core(&self) -> &Arc<CoreCtx> {
        &self.core
    }

    /// The resource manager.
    pub fn resource_manager(&self) -> &Arc<ResourceManager> {
        &self.rm
    }

    /// The topology.
    pub fn topology(&self) -> Arc<Topology> {
        Arc::clone(self.core.fabric.topology())
    }

    /// Per-island scheduler handles.
    pub fn scheduler(&self, island: pathways_net::IslandId) -> &SchedulerHandle {
        &self.schedulers[&island]
    }

    /// Creates a client on `host` with an auto-generated label.
    pub fn client(&self, host: HostId) -> Client {
        let id = {
            let mut n = self.next_client.lock();
            let id = ClientId(*n);
            *n += 1;
            id
        };
        let label = label_for(id);
        Client::new(
            id,
            label,
            host,
            Arc::clone(&self.core),
            Arc::clone(&self.rm),
        )
    }

    /// Creates a client with an explicit trace label (Figure 9 uses
    /// single letters).
    pub fn client_labeled(&self, host: HostId, label: impl Into<String>) -> Client {
        let id = {
            let mut n = self.next_client.lock();
            let id = ClientId(*n);
            *n += 1;
            id
        };
        Client::new(
            id,
            label.into(),
            host,
            Arc::clone(&self.core),
            Arc::clone(&self.rm),
        )
    }

    /// The fault injector: apply [`FaultSpec`]s immediately or inspect
    /// the failure registry, housekeeping error log, and heal log.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Runs the resource manager's churn defragmenter
    /// ([`ResourceManager::rebalance`]): re-places live slices whose
    /// mapping is worse than a fresh placement (or uses detached
    /// devices), compacting load after attach/detach cycles. Returns
    /// the number of slices moved; affected programs re-lower on their
    /// next submit. Call at a safe point between runs.
    pub fn rebalance(&self) -> usize {
        self.rm.rebalance()
    }

    /// Registers a scripted [`FaultPlan`] on the simulation: each fault
    /// is injected at its exact virtual time (and stamped onto the
    /// trace's `faults` track, so fault schedules are part of the
    /// replayable event trace).
    pub fn install_fault_plan(&self, plan: FaultPlan<FaultSpec>) {
        self.injector.install_plan(&self.core.handle, plan);
    }

    /// Simulates abrupt failure of a client: its in-flight runs fail
    /// (downstream consumers observe `Err(ObjectError::ProducerFailed)`
    /// rather than stale data), every object it owns is
    /// garbage-collected, and its slices are released. (The client's
    /// tasks should separately be aborted by the test harness.) Returns
    /// the number of objects freed.
    pub fn fail_client(&self, client: ClientId) -> usize {
        self.injector.fail_client(client)
    }
}

fn label_for(id: ClientId) -> String {
    // A, B, ..., Z, a, b, ... for readable trace renderings.
    let n = id.0;
    let ch = if n < 26 {
        (b'A' + n as u8) as char
    } else if n < 52 {
        (b'a' + (n - 26) as u8) as char
    } else {
        '#'
    };
    format!("{ch}")
}
