//! Pluggable island-scheduling policies.
//!
//! The per-island gang scheduler (§4.4) consistently orders all
//! computations sharing an island; *which* order is a policy decision.
//! This module extracts that decision behind [`SchedPolicyImpl`] so new
//! multi-tenancy policies (§6.2 sketches deadline, backfill, …) are
//! ~100-line drop-ins instead of new arms threaded through the
//! scheduler loop.
//!
//! A policy never touches the queues themselves: the scheduler owns one
//! FIFO backlog per client (preserving per-client program order, which
//! the deadlock-freedom argument relies on) and asks the policy only to
//! choose *whose* head program is granted next. Policies see arrivals
//! and grants through hooks and keep whatever accounting state they
//! need.
//!
//! Four policies ship in-tree:
//!
//! * [`FifoPolicy`] — global arrival order (the paper's own
//!   implementation: "our current implementation simply enqueues work
//!   in FIFO order");
//! * [`StridePolicy`] — stride scheduling, the proportional-share
//!   policy behind Figure 9's 1:2:4:8 interleaving;
//! * [`PriorityPolicy`] — strict priority with documented starvation;
//! * [`WfqPolicy`] — gang-aware weighted-fair queueing with per-client
//!   deficit counters, which the old hard-coded enum could not express:
//!   it charges each grant the program's *whole-gang* device time, so
//!   fairness holds in device-seconds even when tenants submit gangs of
//!   very different sizes.

use std::collections::BTreeMap;

use pathways_net::ClientId;
use pathways_sim::SimDuration;

use super::SubmitMsg;

/// One client's backlog as a policy sees it: the head (earliest)
/// pending program plus queue depth. Queues with no pending work are
/// never shown to a policy.
#[derive(Debug)]
pub struct QueuedProgram<'a> {
    /// The client owning this queue.
    pub client: ClientId,
    /// The earliest pending submission of this client — the only
    /// program of the client eligible for the next grant (per-client
    /// order is FIFO by construction).
    pub head: &'a SubmitMsg,
    /// Number of pending submissions, including `head`.
    pub backlog: usize,
}

/// An island-scheduling policy: chooses, under contention, whose
/// program the centralized scheduler grants next.
///
/// Implementations are per-island and single-threaded; the scheduler
/// calls the three hooks in a strict arrival → pick → grant order, so
/// internal accounting needs no synchronization.
pub trait SchedPolicyImpl: Send {
    /// Human-readable policy name (used in `Debug` output and traces).
    fn name(&self) -> &'static str;

    /// Arrival hook: `msg` was appended to its client's queue. Called
    /// before the next [`pick_next`](Self::pick_next).
    fn on_arrival(&mut self, msg: &SubmitMsg) {
        let _ = msg;
    }

    /// Picks the client whose head program is granted next.
    ///
    /// `queues` holds every client with pending work (ascending client
    /// id, never empty). Returning a client not present in `queues` is
    /// a policy bug and makes the scheduler panic; returning `None`
    /// leaves the backlog untouched (no policy in-tree does).
    fn pick_next(&mut self, queues: &[QueuedProgram<'_>]) -> Option<ClientId>;

    /// Accounting hook: `msg` (the head chosen by the last
    /// [`pick_next`](Self::pick_next)) was granted. `queue_now_empty`
    /// is true when this grant drained the client's backlog — policies
    /// that bank credit (e.g. deficit counters) should forfeit it here
    /// so an idle tenant cannot burst later.
    fn on_grant(&mut self, msg: &SubmitMsg, queue_now_empty: bool) {
        let _ = (msg, queue_now_empty);
    }
}

/// Grants programs in global arrival order.
///
/// Arrival order is approximated by [`RunId`](pathways_plaque::RunId),
/// which is allocated monotonically at submission time.
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl SchedPolicyImpl for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick_next(&mut self, queues: &[QueuedProgram<'_>]) -> Option<ClientId> {
        queues.iter().min_by_key(|q| q.head.run).map(|q| q.client)
    }
}

/// Stride scheduling: each client receives device time proportional to
/// its weight when the island is contended.
///
/// Every client carries a virtual time ("pass"); the lowest pass is
/// served and advanced by `cost / weight`. A client absent from the
/// weight map defaults to weight 1. Pass values persist across idle
/// periods, but because a sleeping client's pass does not advance, it
/// holds the minimum when it returns and is served promptly without
/// accumulating an unbounded backlog advantage.
#[derive(Debug)]
pub struct StridePolicy {
    weights: BTreeMap<ClientId, u32>,
    pass: BTreeMap<ClientId, u64>,
}

impl StridePolicy {
    /// A stride scheduler with the given per-client weights.
    pub fn new(weights: BTreeMap<ClientId, u32>) -> Self {
        StridePolicy {
            weights,
            pass: BTreeMap::new(),
        }
    }
}

impl SchedPolicyImpl for StridePolicy {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn pick_next(&mut self, queues: &[QueuedProgram<'_>]) -> Option<ClientId> {
        queues
            .iter()
            .min_by_key(|q| (self.pass.get(&q.client).copied().unwrap_or(0), q.client))
            .map(|q| q.client)
    }

    fn on_grant(&mut self, msg: &SubmitMsg, _queue_now_empty: bool) {
        let weight = self.weights.get(&msg.client).copied().unwrap_or(1).max(1) as u64;
        let cost = msg.est_cost.as_nanos().max(1);
        *self.pass.entry(msg.client).or_insert(0) += cost / weight;
    }
}

/// Strict priority: the highest-priority backlogged client wins; ties
/// break in arrival order.
///
/// One of the §6.2 multi-tenancy policies the centralized scheduler
/// makes possible. **Contract:** low-priority clients starve for as
/// long as any higher-priority client has pending work — that is the
/// policy's documented behaviour, not a bug (see
/// `priority_starves_low_under_sustained_load` in this module's tests).
#[derive(Debug)]
pub struct PriorityPolicy {
    priorities: BTreeMap<ClientId, u32>,
}

impl PriorityPolicy {
    /// A priority scheduler; clients absent from the map get priority 0.
    pub fn new(priorities: BTreeMap<ClientId, u32>) -> Self {
        PriorityPolicy { priorities }
    }
}

impl SchedPolicyImpl for PriorityPolicy {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn pick_next(&mut self, queues: &[QueuedProgram<'_>]) -> Option<ClientId> {
        queues
            .iter()
            .max_by_key(|q| {
                let p = self.priorities.get(&q.client).copied().unwrap_or(0);
                // Higher priority first; within a priority, earliest
                // submission (lowest run id) first.
                (p, std::cmp::Reverse(q.head.run))
            })
            .map(|q| q.client)
    }
}

/// Gang-aware weighted-fair queueing with per-client deficit counters
/// (deficit round-robin, Shreedhar & Varghese, adapted to gang grants).
///
/// Clients take turns in a fixed round-robin order. Each turn a client
/// is credited `quantum × weight` of deficit; its head program is
/// granted once the accumulated deficit covers the program's
/// **whole-gang** estimated device time (`est_cost`, summed over every
/// shard). The grant then debits that cost.
///
/// Two properties the stride policy cannot provide:
///
/// * **Gang awareness.** Charging full gang cost makes fairness hold in
///   device-seconds: a tenant submitting 8-device gangs pays 8× per
///   program what a 1-device tenant pays, so mixed gang sizes share an
///   island by device time, not by program count.
/// * **Bounded bursts.** A client whose queue drains forfeits its
///   remaining deficit, so an idle tenant cannot bank credit and later
///   monopolize the island; its burst is bounded by one quantum × weight
///   above steady state (the classic DRR bound).
#[derive(Debug)]
pub struct WfqPolicy {
    weights: BTreeMap<ClientId, u32>,
    quantum: SimDuration,
    /// Accumulated credit, in nanoseconds of gang device time.
    deficit: BTreeMap<ClientId, u64>,
    /// Round-robin order; clients are appended on first arrival.
    order: Vec<ClientId>,
    /// Index into `order` of the next turn.
    cursor: usize,
}

impl WfqPolicy {
    /// A WFQ scheduler with the given weights and per-turn quantum.
    ///
    /// The quantum trades scheduling overhead against burstiness: it
    /// should be at least the typical program's per-turn share. A zero
    /// quantum is clamped to 1 ns (per-turn credit must be positive or
    /// no client could ever afford a grant). Clients absent from the
    /// map get weight 1.
    pub fn new(weights: BTreeMap<ClientId, u32>, quantum: SimDuration) -> Self {
        WfqPolicy {
            weights,
            quantum: quantum.max(SimDuration::from_nanos(1)),
            deficit: BTreeMap::new(),
            order: Vec::new(),
            cursor: 0,
        }
    }

    /// The default quantum: 1 ms of gang device time per unit weight.
    pub const DEFAULT_QUANTUM: SimDuration = SimDuration::from_millis(1);

    fn weight(&self, client: ClientId) -> u64 {
        self.weights.get(&client).copied().unwrap_or(1).max(1) as u64
    }

    /// Rounds of credit `client` still needs before `cost` is covered.
    fn rounds_needed(&self, client: ClientId, cost: u64) -> u64 {
        let have = self.deficit.get(&client).copied().unwrap_or(0);
        let per_round = (self.quantum.as_nanos() * self.weight(client)).max(1);
        cost.saturating_sub(have).div_ceil(per_round)
    }
}

impl SchedPolicyImpl for WfqPolicy {
    fn name(&self) -> &'static str {
        "wfq"
    }

    fn on_arrival(&mut self, msg: &SubmitMsg) {
        if !self.order.contains(&msg.client) {
            self.order.push(msg.client);
        }
    }

    fn pick_next(&mut self, queues: &[QueuedProgram<'_>]) -> Option<ClientId> {
        // Fast-forward the round-robin: credit every backlogged client
        // the minimum number of whole rounds after which at least one
        // of them can afford its head program, then serve the first
        // affordable client at or after the cursor. Equivalent to
        // spinning the textbook DRR loop, without the O(rounds) walk.
        let rounds = queues
            .iter()
            .map(|q| self.rounds_needed(q.client, q.head.est_cost.as_nanos().max(1)))
            .min()?;
        if rounds > 0 {
            for q in queues {
                let credit = rounds * self.quantum.as_nanos() * self.weight(q.client);
                *self.deficit.entry(q.client).or_insert(0) += credit;
            }
        }
        let affordable =
            |c: ClientId, cost: u64| self.deficit.get(&c).copied().unwrap_or(0) >= cost;
        let n = self.order.len();
        for step in 0..n {
            let client = self.order[(self.cursor + step) % n];
            if let Some(q) = queues.iter().find(|q| q.client == client) {
                if affordable(client, q.head.est_cost.as_nanos().max(1)) {
                    self.cursor = (self.cursor + step + 1) % n;
                    return Some(client);
                }
            }
        }
        // Reached only if a caller skipped on_arrival (empty `order`):
        // fall back to the first backlogged client rather than panic.
        queues.first().map(|q| q.client)
    }

    fn on_grant(&mut self, msg: &SubmitMsg, queue_now_empty: bool) {
        let cost = msg.est_cost.as_nanos().max(1);
        let d = self.deficit.entry(msg.client).or_insert(0);
        *d = d.saturating_sub(cost);
        if queue_now_empty {
            // Forfeit banked credit: an idle tenant must not be able to
            // burst past its share when it returns.
            *d = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::SchedPolicy;
    use super::*;
    use pathways_plaque::RunId;

    fn submit(client: u32, run: u64, cost_us: u64) -> SubmitMsg {
        SubmitMsg {
            client: ClientId(client),
            label: format!("c{client}"),
            run: RunId(run),
            est_cost: SimDuration::from_micros(cost_us),
            comps: vec![],
        }
    }

    /// Drives a policy the way the scheduler does, with every client's
    /// queue kept saturated with equal programs, and counts grants.
    fn saturated_grant_counts(
        policy: &mut dyn SchedPolicyImpl,
        costs_us: &[u64],
        grants: usize,
    ) -> Vec<u64> {
        let mut counts = vec![0u64; costs_us.len()];
        let mut next_run = 0u64;
        let mut heads: Vec<SubmitMsg> = costs_us
            .iter()
            .enumerate()
            .map(|(c, us)| {
                next_run += 1;
                let m = submit(c as u32, next_run, *us);
                policy.on_arrival(&m);
                m
            })
            .collect();
        for _ in 0..grants {
            let queues: Vec<QueuedProgram<'_>> = heads
                .iter()
                .map(|m| QueuedProgram {
                    client: m.client,
                    head: m,
                    backlog: 2, // saturated: never reports empty
                })
                .collect();
            let picked = policy.pick_next(&queues).expect("backlog nonempty");
            let i = picked.0 as usize;
            counts[i] += 1;
            policy.on_grant(&heads[i], false);
            next_run += 1;
            let refill = submit(picked.0, next_run, costs_us[i]);
            policy.on_arrival(&refill);
            heads[i] = refill;
        }
        counts
    }

    fn weights_1248() -> BTreeMap<ClientId, u32> {
        [1u32, 2, 4, 8]
            .into_iter()
            .enumerate()
            .map(|(i, w)| (ClientId(i as u32), w))
            .collect()
    }

    #[test]
    fn stride_honors_1_2_4_8_weights_within_ten_percent() {
        // Satellite acceptance: 1:2:4:8 within ±10% over 1000 grants.
        let mut policy = StridePolicy::new(weights_1248());
        let counts = saturated_grant_counts(&mut policy, &[10, 10, 10, 10], 1000);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 1000);
        for (i, want_share) in [1.0, 2.0, 4.0, 8.0].iter().enumerate() {
            let expected = 1000.0 * want_share / 15.0;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() <= expected * 0.10,
                "client {i}: got {got} grants, expected {expected:.0} ±10% (all: {counts:?})"
            );
        }
    }

    #[test]
    fn wfq_honors_1_2_4_8_weights_within_ten_percent() {
        let mut policy = WfqPolicy::new(weights_1248(), SimDuration::from_micros(10));
        let counts = saturated_grant_counts(&mut policy, &[10, 10, 10, 10], 1000);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 1000);
        for (i, want_share) in [1.0, 2.0, 4.0, 8.0].iter().enumerate() {
            let expected = 1000.0 * want_share / 15.0;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() <= expected * 0.10,
                "client {i}: got {got} grants, expected {expected:.0} ±10% (all: {counts:?})"
            );
        }
    }

    #[test]
    fn wfq_is_gang_aware_charging_whole_gang_cost() {
        // Equal weights, but client 0 submits 4×-cost gangs (e.g. 4×
        // the devices per program). Fairness in device-seconds means it
        // gets ~1/4 as many *grants*.
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 1)].into_iter().collect();
        let mut policy = WfqPolicy::new(weights, SimDuration::from_micros(10));
        let counts = saturated_grant_counts(&mut policy, &[40, 10], 1000);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(
            (3.5..=4.5).contains(&ratio),
            "expected ~4:1 grant ratio for 1:4 cost ratio, got {ratio:.2} ({counts:?})"
        );
        // Device-time shares are near-equal.
        let time0 = counts[0] * 40;
        let time1 = counts[1] * 10;
        let tratio = time1 as f64 / time0 as f64;
        assert!(
            (0.85..=1.15).contains(&tratio),
            "device-time shares should be ~equal, got {tratio:.2}"
        );
    }

    #[test]
    fn wfq_forfeits_deficit_when_queue_drains() {
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 1)].into_iter().collect();
        let mut policy = WfqPolicy::new(weights, SimDuration::from_micros(100));
        // Client 0 drains its queue; the final grant reports the queue
        // empty, so any banked credit is forfeited.
        let m = submit(0, 1, 10);
        policy.on_arrival(&m);
        let q = [QueuedProgram {
            client: ClientId(0),
            head: &m,
            backlog: 1,
        }];
        assert_eq!(policy.pick_next(&q), Some(ClientId(0)));
        policy.on_grant(&m, true);
        assert_eq!(policy.deficit.get(&ClientId(0)).copied().unwrap_or(0), 0);
    }

    #[test]
    fn priority_starves_low_under_sustained_load() {
        // Satellite acceptance: the starvation contract. Under
        // sustained high-priority load the low-priority client receives
        // nothing; it is served only once the high queue drains.
        let prio: BTreeMap<ClientId, u32> =
            [(ClientId(0), 0), (ClientId(1), 10)].into_iter().collect();
        let mut policy = PriorityPolicy::new(prio);
        let low: Vec<SubmitMsg> = (0..50).map(|i| submit(0, i, 10)).collect();
        let mut high: Vec<SubmitMsg> = (0..200).map(|i| submit(1, 100 + i, 10)).collect();
        // While client 1 has backlog, every single grant goes to it.
        for round in 0..200 {
            let queues = [
                QueuedProgram {
                    client: ClientId(0),
                    head: &low[0],
                    backlog: low.len(),
                },
                QueuedProgram {
                    client: ClientId(1),
                    head: &high[0],
                    backlog: high.len(),
                },
            ];
            let picked = policy.pick_next(&queues).unwrap();
            assert_eq!(
                picked,
                ClientId(1),
                "low-priority client granted at round {round} despite high backlog"
            );
            let granted = high.remove(0);
            policy.on_grant(&granted, high.is_empty());
        }
        // High queue drained: the starved client is finally served.
        let queues = [QueuedProgram {
            client: ClientId(0),
            head: &low[0],
            backlog: low.len(),
        }];
        assert_eq!(policy.pick_next(&queues), Some(ClientId(0)));
    }

    #[test]
    fn fifo_picks_global_arrival_order() {
        let mut policy = FifoPolicy;
        let a = submit(1, 10, 5);
        let b = submit(0, 11, 5);
        let queues = [
            QueuedProgram {
                client: ClientId(0),
                head: &b,
                backlog: 1,
            },
            QueuedProgram {
                client: ClientId(1),
                head: &a,
                backlog: 1,
            },
        ];
        assert_eq!(policy.pick_next(&queues), Some(ClientId(1)));
    }

    #[test]
    fn facade_builds_the_matching_impl() {
        assert_eq!(SchedPolicy::Fifo.build().name(), "fifo");
        assert_eq!(
            SchedPolicy::ProportionalShare(BTreeMap::new())
                .build()
                .name(),
            "stride"
        );
        assert_eq!(
            SchedPolicy::Priority(BTreeMap::new()).build().name(),
            "priority"
        );
        assert_eq!(
            SchedPolicy::weighted_fair(BTreeMap::new()).build().name(),
            "wfq"
        );
        let custom = SchedPolicy::custom("always-fifo", || Box::new(FifoPolicy));
        assert_eq!(custom.build().name(), "fifo");
        assert_eq!(custom, custom.clone());
    }

    #[test]
    fn wfq_builds_fresh_state_per_island() {
        // Two islands built from one facade must not share round-robin
        // or deficit state: advancing one must leave the other behaving
        // like a fresh instance.
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 1)].into_iter().collect();
        let facade = SchedPolicy::WeightedFair {
            weights,
            quantum: SimDuration::from_micros(10),
        };
        let mut a = facade.build();
        let mut b = facade.build();
        let m0 = submit(0, 1, 10);
        let m1 = submit(1, 2, 10);
        for p in [&mut a, &mut b] {
            p.on_arrival(&m0);
            p.on_arrival(&m1);
        }
        fn queues<'a>(m0: &'a SubmitMsg, m1: &'a SubmitMsg) -> [QueuedProgram<'a>; 2] {
            [
                QueuedProgram {
                    client: ClientId(0),
                    head: m0,
                    backlog: 2,
                },
                QueuedProgram {
                    client: ClientId(1),
                    head: m1,
                    backlog: 2,
                },
            ]
        }
        // Advance island A: serve client 0, moving its cursor and
        // spending its deficit.
        assert_eq!(a.pick_next(&queues(&m0, &m1)), Some(ClientId(0)));
        a.on_grant(&m0, false);
        // A's next turn is client 1; a fresh island still starts with
        // client 0. Shared state would make B pick client 1 here.
        assert_eq!(a.pick_next(&queues(&m0, &m1)), Some(ClientId(1)));
        assert_eq!(
            b.pick_next(&queues(&m0, &m1)),
            Some(ClientId(0)),
            "island B inherited island A's round-robin/deficit state"
        );
    }

    #[test]
    fn wfq_zero_quantum_is_clamped_not_starving() {
        // quantum == 0 would make per-turn credit zero and the policy
        // degenerate to lowest-client-id; new() clamps it to 1 ns so
        // weighted sharing still holds.
        let weights: BTreeMap<ClientId, u32> =
            [(ClientId(0), 1), (ClientId(1), 3)].into_iter().collect();
        let mut policy = WfqPolicy::new(weights, SimDuration::ZERO);
        let counts = saturated_grant_counts(&mut policy, &[10, 10], 400);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "zero quantum broke weighted sharing: {counts:?}"
        );
    }

    #[test]
    fn wfq_pick_without_arrival_falls_back_gracefully() {
        // A caller that skips on_arrival (empty round-robin order) must
        // get the documented first-backlogged fallback, not a panic.
        let mut policy = WfqPolicy::new(BTreeMap::new(), SimDuration::from_micros(10));
        let m = submit(3, 1, 10);
        let q = [QueuedProgram {
            client: ClientId(3),
            head: &m,
            backlog: 1,
        }];
        assert_eq!(policy.pick_next(&q), Some(ClientId(3)));
    }
}
