//! The centralized resource manager (§4.1).
//!
//! Owns every device across all islands, hands out *virtual slices*
//! whose virtual devices map 1:1 onto physical devices, and supports
//! dynamic attach/detach of backend resources. The virtual→physical
//! layer of indirection is what lets the single controller remap a
//! client's computation without the client's cooperation: a slice can be
//! remapped and programs simply re-lower.
//!
//! ## Accounting invariant
//!
//! The manager keeps one use-count per physical device — exactly the
//! number of live slices whose current mapping contains it (with
//! multiplicity). Every mapping change moves counts atomically:
//! [`ResourceManager::allocate`] charges, [`ResourceManager::release`]
//! uncharges, and [`ResourceManager::remap`] / [`ResourceManager::heal`]
//! / [`ResourceManager::rebalance`] uncharge the old devices and charge
//! the new ones. Counts live in a ledger that spans *all* devices of the
//! topology, attached or not, so a detach/attach cycle can never reset
//! the load a detached device still carries from live slices. Underflow
//! is a `debug_assert` — drift is caught in tests, never silently
//! saturated away.
//!
//! ## Elasticity
//!
//! [`ResourceManager::heal`] closes the fault loop: given a set of dead
//! devices it remaps every live slice touching them onto spare attached
//! capacity, honoring the slice's original island and contiguity
//! constraints (contiguity is validated against real torus adjacency,
//! not id order). [`ResourceManager::rebalance`] is the churn
//! defragmenter: after attach/detach cycles it re-places slices whose
//! mapping is strictly worse than a fresh placement, compacting load
//! back onto the least-loaded attached devices.

use pathways_sim::Lock;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use pathways_net::{ClientId, DeviceId, IslandId, Topology};

/// Identifier of an allocated virtual slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceId(pub u64);

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice{}", self.0)
    }
}

/// Constraints a client may put on a slice request (§4.1: "virtual
/// slices with specific 2D or 3D mesh shapes ... interconnect topology,
/// memory capacity, etc.").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceRequest {
    /// Number of virtual devices.
    pub devices: u32,
    /// Require all devices in this island (collectives need one island).
    pub island: Option<IslandId>,
    /// Require the devices to form a connected submesh of the torus (a
    /// "mesh shaped" slice rather than scattered devices).
    pub contiguous: bool,
}

impl SliceRequest {
    /// A request for `devices` devices anywhere in one island.
    pub fn devices(devices: u32) -> Self {
        SliceRequest {
            devices,
            island: None,
            contiguous: false,
        }
    }

    /// Pins the request to an island (builder style).
    #[must_use]
    pub fn in_island(mut self, island: IslandId) -> Self {
        self.island = Some(island);
        self
    }

    /// Requires torus-contiguous devices (builder style).
    #[must_use]
    pub fn contiguous(mut self) -> Self {
        self.contiguous = true;
        self
    }
}

/// Errors from slice allocation and healing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// No island has enough attached devices.
    InsufficientDevices {
        /// Devices requested.
        requested: u32,
        /// Largest island's attached device count.
        largest_island: u32,
    },
    /// The requested island does not exist, or is excluded from
    /// placement (e.g. its scheduler died). An existing island whose
    /// devices are all detached reports `InsufficientDevices` instead.
    UnknownIsland {
        /// The island asked for.
        island: IslandId,
    },
    /// Enough devices are attached, but no torus-connected window of the
    /// requested size survives the current detach pattern.
    Fragmented {
        /// Devices requested (contiguously).
        requested: u32,
    },
    /// A zero-device slice was requested.
    EmptyRequest,
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::InsufficientDevices {
                requested,
                largest_island,
            } => write!(
                f,
                "requested {requested} devices but the largest island has {largest_island}"
            ),
            ResourceError::UnknownIsland { island } => write!(f, "unknown {island}"),
            ResourceError::Fragmented { requested } => write!(
                f,
                "no torus-connected window of {requested} attached devices (fragmented)"
            ),
            ResourceError::EmptyRequest => write!(f, "slice request for zero devices"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// The shared, remappable state behind a slice: the current physical
/// mapping plus a generation counter bumped on every remap, so lowered
/// programs can detect staleness and re-lower.
#[derive(Debug)]
struct MappingState {
    devices: Vec<DeviceId>,
    generation: u64,
}

/// A slice of virtual devices with their current physical mapping.
///
/// Cloneable; all clones observe remappings (the mapping is shared).
#[derive(Clone)]
pub struct VirtualSlice {
    id: SliceId,
    state: Arc<Lock<MappingState>>,
}

impl fmt::Debug for VirtualSlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualSlice")
            .field("id", &self.id)
            .field("devices", &self.state.lock().devices.len())
            .field("generation", &self.state.lock().generation)
            .finish()
    }
}

impl VirtualSlice {
    fn new(id: SliceId, devices: Vec<DeviceId>) -> Self {
        VirtualSlice {
            id,
            state: Arc::new(Lock::new(MappingState {
                devices,
                generation: 0,
            })),
        }
    }

    /// The slice id.
    pub fn id(&self) -> SliceId {
        self.id
    }

    /// Number of virtual devices.
    pub fn len(&self) -> usize {
        self.state.lock().devices.len()
    }

    /// True if the slice has no devices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current physical device for each virtual device.
    pub fn physical_devices(&self) -> Vec<DeviceId> {
        self.state.lock().devices.clone()
    }

    /// The mapping generation: starts at 0 and is bumped by every
    /// [`ResourceManager::remap`] / [`ResourceManager::heal`] /
    /// [`ResourceManager::rebalance`] that moves this slice. A program
    /// lowered against generation `g` is stale once the slice's
    /// generation differs — [`Client::submit_with`](crate::Client)
    /// re-lowers automatically.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Test-only constructor with a fixed mapping.
    #[doc(hidden)]
    pub fn for_tests(devices: Vec<DeviceId>) -> Self {
        VirtualSlice::new(SliceId(u64::MAX), devices)
    }
}

struct Allocation {
    owner: ClientId,
    request: SliceRequest,
    state: Arc<Lock<MappingState>>,
}

/// Outcome of one [`ResourceManager::try_replace`] transaction.
enum Replace {
    /// The slice was moved onto this new mapping.
    Moved(Vec<DeviceId>),
    /// The candidate placement was declined; the old mapping stands.
    Kept,
    /// No placement was possible; the old mapping stands.
    Failed(ResourceError),
}

/// What healing did to one slice that touched dead hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealEvent {
    /// The affected slice.
    pub slice: SliceId,
    /// Its owning client (to notify for re-lower + resubmit).
    pub owner: ClientId,
    /// The mapping before healing (contains dead devices).
    pub from: Vec<DeviceId>,
    /// The new mapping, or why no placement was possible (the slice
    /// keeps its broken mapping and future submits fail fast).
    pub to: Result<Vec<DeviceId>, ResourceError>,
}

impl HealEvent {
    /// True if the slice was successfully remapped onto live capacity.
    pub fn healed(&self) -> bool {
        self.to.is_ok()
    }
}

/// The global resource manager.
///
/// Alongside the authoritative ledger it maintains three derived
/// indexes so the placement and healing hot paths scale with the blast
/// radius of a change rather than the cluster size:
///
/// * `island_load` — per-island sum of *attached* devices' use-counts,
///   the island ranking key (`place` used to re-sum every island's
///   devices on every allocation);
/// * `by_load` — each island's attached devices ordered by
///   `(use-count, id)`, so least-loaded selection reads the first `w`
///   entries instead of sorting the whole island;
/// * `dev_slices` — which live slices map each device (with
///   multiplicity), so `heal` visits only the slices touching dead
///   hardware instead of filtering every live slice.
///
/// All three are updated at the ledger's single choke points
/// (`charge`/`uncharge`/`detach_device`/`attach_device`), and the
/// `prop_resource` suite checks them against a naive linear-scan model.
pub struct ResourceManager {
    topo: Arc<Topology>,
    /// Attached devices per island (placement candidates).
    attached: Lock<BTreeMap<IslandId, BTreeSet<DeviceId>>>,
    /// Use-count ledger covering every device of the topology, attached
    /// or not: `counts[d]` == live slices currently mapping `d`.
    use_counts: Lock<BTreeMap<DeviceId, u32>>,
    slices: Lock<BTreeMap<SliceId, Allocation>>,
    next_slice: Lock<u64>,
    /// Sum of attached devices' use-counts, per island.
    island_load: Lock<BTreeMap<IslandId, u64>>,
    /// Attached devices of each island in `(use-count, id)` order.
    by_load: Lock<BTreeMap<IslandId, BTreeSet<(u32, DeviceId)>>>,
    /// Live slices mapping each device, with multiplicity (a remap may
    /// map the same physical device more than once).
    dev_slices: Lock<BTreeMap<DeviceId, BTreeMap<SliceId, u32>>>,
}

impl fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourceManager")
            .field("islands", &self.attached.lock().len())
            .field("live_slices", &self.slices.lock().len())
            .field("total_load", &self.total_load())
            .finish()
    }
}

impl ResourceManager {
    /// Creates a manager with every device of `topo` attached.
    pub fn new(topo: Arc<Topology>) -> Self {
        let mut attached = BTreeMap::new();
        let mut use_counts = BTreeMap::new();
        let mut island_load = BTreeMap::new();
        let mut by_load = BTreeMap::new();
        for island in topo.islands() {
            let devs: BTreeSet<DeviceId> = topo.devices_of_island(island).collect();
            for d in &devs {
                use_counts.insert(*d, 0);
            }
            island_load.insert(island, 0u64);
            by_load.insert(island, devs.iter().map(|d| (0u32, *d)).collect());
            attached.insert(island, devs);
        }
        ResourceManager {
            topo,
            attached: Lock::new(attached),
            use_counts: Lock::new(use_counts),
            slices: Lock::named("core.rm.slices", BTreeMap::new()),
            next_slice: Lock::new(0),
            island_load: Lock::new(island_load),
            by_load: Lock::new(by_load),
            dev_slices: Lock::named("core.rm.slices", BTreeMap::new()),
        }
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Total attached devices.
    pub fn attached_devices(&self) -> u32 {
        self.attached.lock().values().map(|m| m.len() as u32).sum()
    }

    /// True if `device` is currently attached (a placement candidate).
    pub fn is_attached(&self, device: DeviceId) -> bool {
        let island = self.topo.island_of_device(device);
        self.attached
            .lock()
            .get(&island)
            .is_some_and(|m| m.contains(&device))
    }

    /// Detaches a device (maintenance or death); existing slices keep
    /// their mapping (and the device keeps the use-count they charge)
    /// until they are remapped or released — see
    /// [`ResourceManager::heal`] / [`ResourceManager::rebalance`] for
    /// moving them off.
    pub fn detach_device(&self, device: DeviceId) {
        let island = self.topo.island_of_device(device);
        if let Some(m) = self.attached.lock().get_mut(&island) {
            if m.remove(&device) {
                let count = self.use_counts.lock()[&device];
                *self
                    .island_load
                    .lock()
                    .get_mut(&island)
                    .expect("island indexed") -= u64::from(count);
                self.by_load
                    .lock()
                    .get_mut(&island)
                    .expect("island indexed")
                    .remove(&(count, device));
            }
        }
    }

    /// Re-attaches a device. The device re-enters placement with the
    /// use-count it still carries from live slices (counts are never
    /// reset by detach/attach cycles).
    ///
    /// # Panics
    ///
    /// Panics if `device` is not part of the topology.
    pub fn attach_device(&self, device: DeviceId) {
        let island = self.topo.island_of_device(device);
        if self
            .attached
            .lock()
            .entry(island)
            .or_default()
            .insert(device)
        {
            let count = self.use_counts.lock()[&device];
            *self.island_load.lock().entry(island).or_insert(0) += u64::from(count);
            self.by_load
                .lock()
                .entry(island)
                .or_default()
                .insert((count, device));
        }
    }

    /// Allocates a virtual slice for `client`.
    ///
    /// The placement heuristic is the paper's "simple heuristic that
    /// attempts to statically balance load by spreading computations
    /// across all available devices": devices with the lowest use-count
    /// are preferred, and islands are tried from least-loaded to
    /// most-loaded. Virtual devices map 1:1 onto physical devices.
    /// Contiguous requests only accept windows that form a connected
    /// submesh of the island's torus — after a detach, an id-consecutive
    /// window can span a torus gap and is skipped.
    ///
    /// # Errors
    ///
    /// See [`ResourceError`].
    pub fn allocate(
        &self,
        client: ClientId,
        request: SliceRequest,
    ) -> Result<VirtualSlice, ResourceError> {
        let chosen = {
            let attached = self.attached.lock();
            let counts = self.use_counts.lock();
            self.place(&request, &attached, &counts, &[])?
        };
        let id = {
            let mut next = self.next_slice.lock();
            let id = SliceId(*next);
            *next += 1;
            id
        };
        self.charge(id, &chosen);
        let slice = VirtualSlice::new(id, chosen);
        self.slices.lock().insert(
            id,
            Allocation {
                owner: client,
                request,
                state: Arc::clone(&slice.state),
            },
        );
        Ok(slice)
    }

    /// Releases a slice, decrementing device use-counts.
    pub fn release(&self, slice: &VirtualSlice) {
        self.release_id(slice.id());
    }

    fn release_id(&self, id: SliceId) {
        if let Some(alloc) = self.slices.lock().remove(&id) {
            let devices = alloc.state.lock().devices.clone();
            self.uncharge(id, &devices);
        }
    }

    /// Releases every slice owned by `client` (used when a client fails).
    pub fn release_client(&self, client: ClientId) {
        let ids: Vec<SliceId> = self
            .slices
            .lock()
            .iter()
            .filter(|(_, a)| a.owner == client)
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            self.release_id(id);
        }
    }

    /// Remaps a slice's virtual devices onto new physical devices (the
    /// suspend/resume and migration hook enabled by the virtual-device
    /// indirection). Existing clones of the slice observe the change;
    /// programs lowered against the old mapping become stale (the
    /// generation bumps) and re-lower on their next submit.
    ///
    /// Use-counts move with the mapping: the old devices are uncharged
    /// and the new ones charged.
    ///
    /// # Panics
    ///
    /// Panics if the new mapping's length differs from the slice size.
    pub fn remap(&self, slice: &VirtualSlice, new_devices: Vec<DeviceId>) {
        assert_eq!(
            new_devices.len(),
            slice.len(),
            "remap must preserve slice size"
        );
        // Only live (tracked) slices are charged in the ledger; test
        // slices built with `for_tests` are not.
        if self.slices.lock().contains_key(&slice.id()) {
            let old = slice.state.lock().devices.clone();
            self.uncharge(slice.id(), &old);
            self.adopt_mapping(slice.id(), &slice.state, new_devices);
        } else {
            Self::set_mapping(&slice.state, new_devices);
        }
    }

    /// Installs `new` as a tracked slice's mapping: charges the new
    /// devices (the caller has already uncharged the old mapping) and
    /// bumps the generation so lowered programs go stale. The single
    /// place where a mapping change and the ledger meet — `remap`,
    /// `heal` and `rebalance` all move slices through here.
    fn adopt_mapping(&self, id: SliceId, state: &Arc<Lock<MappingState>>, new: Vec<DeviceId>) {
        self.charge(id, &new);
        Self::set_mapping(state, new);
    }

    fn set_mapping(state: &Arc<Lock<MappingState>>, new: Vec<DeviceId>) {
        let mut st = state.lock();
        st.devices = new;
        st.generation += 1;
    }

    /// One ledger-safe re-placement transaction, shared by `heal` and
    /// `rebalance`: uncharges the slice (so its own load does not skew
    /// placement), places `request` against the remaining load, and
    /// either adopts the new mapping (when `accept` approves it) or
    /// recharges the old one. The uncharge/recharge pairing lives only
    /// here — the ledger is exact on every exit path.
    ///
    /// `accept` sees the old mapping, the candidate, and the use-counts
    /// *with this slice's own charge removed*.
    fn try_replace(
        &self,
        id: SliceId,
        state: &Arc<Lock<MappingState>>,
        request: &SliceRequest,
        excluded_islands: &[IslandId],
        accept: impl FnOnce(&[DeviceId], &[DeviceId], &BTreeMap<DeviceId, u32>) -> bool,
    ) -> Replace {
        let from = state.lock().devices.clone();
        self.uncharge(id, &from);
        let placed = {
            let attached = self.attached.lock();
            let counts = self.use_counts.lock();
            self.place(request, &attached, &counts, excluded_islands)
        };
        match placed {
            Ok(to) => {
                let accepted = {
                    let counts = self.use_counts.lock();
                    accept(&from, &to, &counts)
                };
                if accepted {
                    self.adopt_mapping(id, state, to.clone());
                    Replace::Moved(to)
                } else {
                    self.charge(id, &from);
                    Replace::Kept
                }
            }
            Err(e) => {
                self.charge(id, &from);
                Replace::Failed(e)
            }
        }
    }

    /// Remaps every live slice that touches any of `dead` onto spare
    /// attached capacity (the dead devices are detached first), honoring
    /// each slice's original island and contiguity constraints. Islands
    /// in `excluded_islands` are never chosen as a new home (the fault
    /// injector passes islands whose scheduler died).
    ///
    /// Slices are healed in id order (deterministic). A slice that
    /// cannot be placed keeps its broken mapping — future submits on it
    /// fail fast with a typed error — and its [`HealEvent::to`] carries
    /// the placement error. Either way, accounting stays exact: a healed
    /// slice's counts move to its new devices; an unhealable slice keeps
    /// charging its old ones until released.
    pub fn heal(&self, dead: &[DeviceId], excluded_islands: &[IslandId]) -> Vec<HealEvent> {
        for d in dead {
            self.detach_device(*d);
        }
        // Blast radius only: the reverse index names the slices touching
        // dead hardware; no scan over the live-slice table. The BTreeSet
        // union preserves heal's deterministic id order.
        let victims: Vec<SliceId> = {
            let dev_slices = self.dev_slices.lock();
            let mut ids = BTreeSet::new();
            for d in dead {
                if let Some(owners) = dev_slices.get(d) {
                    ids.extend(owners.keys().copied());
                }
            }
            ids.into_iter().collect()
        };
        let mut events = Vec::new();
        for id in victims {
            let (owner, request, state) = {
                let slices = self.slices.lock();
                let a = &slices[&id];
                (a.owner, a.request, Arc::clone(&a.state))
            };
            let from = state.lock().devices.clone();
            let to = match self.try_replace(id, &state, &request, excluded_islands, |_, _, _| true)
            {
                Replace::Moved(to) => Ok(to),
                Replace::Failed(e) => Err(e),
                Replace::Kept => unreachable!("heal accepts every successful placement"),
            };
            events.push(HealEvent {
                slice: id,
                owner,
                from,
                to,
            });
        }
        events
    }

    /// Churn defragmenter: re-places each live slice (in id order) and
    /// adopts the fresh placement when it is strictly less loaded than
    /// the current one, or when the current mapping uses detached
    /// devices and an equally-loaded attached placement exists. Returns
    /// the number of slices moved.
    ///
    /// Call at a safe point (between runs): moved slices bump their
    /// generation, so affected programs re-lower on their next submit.
    pub fn rebalance(&self) -> usize {
        let ids: Vec<SliceId> = self.slices.lock().keys().copied().collect();
        let mut moved = 0;
        for id in ids {
            let (request, state) = {
                let slices = self.slices.lock();
                let a = &slices[&id];
                (a.request, Arc::clone(&a.state))
            };
            let outcome = self.try_replace(id, &state, &request, &[], |from, to, counts| {
                if Self::same_devices(to, from) {
                    return false;
                }
                let cur: u64 = from.iter().map(|d| u64::from(counts[d])).sum();
                let new: u64 = to.iter().map(|d| u64::from(counts[d])).sum();
                let off_detached = from.iter().any(|d| !self.is_attached(*d));
                new < cur || (off_detached && new <= cur)
            });
            if matches!(outcome, Replace::Moved(_)) {
                moved += 1;
            }
        }
        moved
    }

    fn same_devices(a: &[DeviceId], b: &[DeviceId]) -> bool {
        let mut a: Vec<DeviceId> = a.to_vec();
        let mut b: Vec<DeviceId> = b.to_vec();
        a.sort();
        b.sort();
        a == b
    }

    /// Current use-count of a device (how many live slices map to it,
    /// whether or not the device is attached).
    pub fn device_load(&self, device: DeviceId) -> u32 {
        self.use_counts.lock().get(&device).copied().unwrap_or(0)
    }

    /// Sum of all device use-counts. Zero exactly when no live slice
    /// exists — the drain invariant chaos tests assert.
    pub fn total_load(&self) -> u64 {
        self.use_counts.lock().values().map(|c| u64::from(*c)).sum()
    }

    /// Number of live (unreleased) slices.
    pub fn live_slice_count(&self) -> usize {
        self.slices.lock().len()
    }

    /// Asserts that every incremental index (`island_load`, `by_load`,
    /// `dev_slices`) agrees with a naive linear-scan recomputation from
    /// the ground-truth ledger and live slices. Test-only hook for the
    /// resource-manager property tests; panics on any drift.
    #[doc(hidden)]
    pub fn assert_indexes_consistent(&self) {
        let counts = self.use_counts.lock();
        let attached = self.attached.lock();
        let slices = self.slices.lock();

        // island_load / by_load: recompute from attached devices' counts.
        for (island, devs) in attached.iter() {
            let want_load: u64 = devs.iter().map(|d| u64::from(counts[d])).sum();
            let got_load = self.island_load.lock().get(island).copied().unwrap_or(0);
            assert_eq!(got_load, want_load, "island_load drift on {island}");
            let want_order: BTreeSet<(u32, DeviceId)> =
                devs.iter().map(|d| (counts[d], *d)).collect();
            let got_order = self.by_load.lock().get(island).cloned().unwrap_or_default();
            assert_eq!(got_order, want_order, "by_load drift on {island}");
        }

        // dev_slices: recompute device -> slice multiplicities from the
        // live slices' current mappings.
        let mut want: BTreeMap<DeviceId, BTreeMap<SliceId, u32>> = BTreeMap::new();
        for (id, alloc) in slices.iter() {
            for d in &alloc.state.lock().devices {
                *want.entry(*d).or_default().entry(*id).or_insert(0) += 1;
            }
        }
        assert_eq!(
            *self.dev_slices.lock(),
            want,
            "dev_slices reverse index drift"
        );
    }

    fn charge(&self, slice: SliceId, devs: &[DeviceId]) {
        let mut counts = self.use_counts.lock();
        let attached = self.attached.lock();
        let mut island_load = self.island_load.lock();
        let mut by_load = self.by_load.lock();
        let mut dev_slices = self.dev_slices.lock();
        for d in devs {
            let c = counts.get_mut(d).expect("device is in the topology");
            let old = *c;
            *c += 1;
            *dev_slices.entry(*d).or_default().entry(slice).or_insert(0) += 1;
            let island = self.topo.island_of_device(*d);
            if attached.get(&island).is_some_and(|m| m.contains(d)) {
                *island_load.get_mut(&island).expect("island indexed") += 1;
                let order = by_load.get_mut(&island).expect("island indexed");
                order.remove(&(old, *d));
                order.insert((old + 1, *d));
            }
        }
    }

    fn uncharge(&self, slice: SliceId, devs: &[DeviceId]) {
        let mut counts = self.use_counts.lock();
        let attached = self.attached.lock();
        let mut island_load = self.island_load.lock();
        let mut by_load = self.by_load.lock();
        let mut dev_slices = self.dev_slices.lock();
        for d in devs {
            let c = counts.get_mut(d).expect("device is in the topology");
            // A hard invariant in every profile: saturating here would
            // mask accounting drift in release builds and let by_load /
            // island_load diverge from the true ledger.
            assert!(*c > 0, "use-count underflow on {d}: accounting drift");
            let old = *c;
            *c -= 1;
            if let Some(owners) = dev_slices.get_mut(d) {
                if let Some(mult) = owners.get_mut(&slice) {
                    *mult -= 1;
                    if *mult == 0 {
                        owners.remove(&slice);
                    }
                }
                if owners.is_empty() {
                    dev_slices.remove(d);
                }
            }
            let island = self.topo.island_of_device(*d);
            if attached.get(&island).is_some_and(|m| m.contains(d)) {
                *island_load.get_mut(&island).expect("island indexed") -= 1;
                let order = by_load.get_mut(&island).expect("island indexed");
                order.remove(&(old, *d));
                order.insert((old - 1, *d));
            }
        }
    }

    /// Pure placement: picks devices for `request` against the given
    /// attach/ledger snapshot, without mutating anything.
    fn place(
        &self,
        request: &SliceRequest,
        attached: &BTreeMap<IslandId, BTreeSet<DeviceId>>,
        counts: &BTreeMap<DeviceId, u32>,
        excluded_islands: &[IslandId],
    ) -> Result<Vec<DeviceId>, ResourceError> {
        if request.devices == 0 {
            return Err(ResourceError::EmptyRequest);
        }
        let candidates: Vec<IslandId> = match request.island {
            Some(i) => {
                if !attached.contains_key(&i) || excluded_islands.contains(&i) {
                    return Err(ResourceError::UnknownIsland { island: i });
                }
                vec![i]
            }
            None => attached
                .keys()
                .copied()
                .filter(|i| !excluded_islands.contains(i))
                .collect(),
        };
        // Islands with enough attached devices, least-loaded first (ties
        // broken by id for determinism). Loads come from the maintained
        // per-island index — O(candidates), not O(devices).
        let mut ranked: Vec<(u64, IslandId)> = {
            let island_load = self.island_load.lock();
            candidates
                .into_iter()
                .filter(|i| attached[i].len() as u32 >= request.devices)
                .map(|i| (island_load.get(&i).copied().unwrap_or(0), i))
                .collect()
        };
        ranked.sort();
        if ranked.is_empty() {
            let largest = attached.values().map(|m| m.len() as u32).max().unwrap_or(0);
            return Err(ResourceError::InsufficientDevices {
                requested: request.devices,
                largest_island: largest,
            });
        }
        for (_, island) in &ranked {
            if let Some(devs) = self.place_in_island(request, *island, &attached[island], counts) {
                return Ok(devs);
            }
        }
        // Capacity exists but no valid (torus-connected) window does.
        Err(ResourceError::Fragmented {
            requested: request.devices,
        })
    }

    fn place_in_island(
        &self,
        request: &SliceRequest,
        island: IslandId,
        devs: &BTreeSet<DeviceId>,
        counts: &BTreeMap<DeviceId, u32>,
    ) -> Option<Vec<DeviceId>> {
        let w = request.devices as usize;
        if request.contiguous {
            // Windows over the attached ids in torus order, keeping only
            // those that are a connected submesh of the real torus, then
            // the one with the lowest aggregate load (ties: lowest
            // start, for determinism). Window loads are prefix-sum
            // differences — O(n) total instead of O(n·w) re-summing.
            let ids: Vec<DeviceId> = devs.iter().copied().collect();
            let mut prefix = Vec::with_capacity(ids.len() + 1);
            let mut sum = 0u64;
            prefix.push(sum);
            for d in &ids {
                sum += u64::from(counts[d]);
                prefix.push(sum);
            }
            let mut best: Option<(u64, usize)> = None;
            for start in 0..=(ids.len() - w) {
                let win = &ids[start..start + w];
                if !self.topo.is_connected_submesh(win) {
                    continue;
                }
                let load = prefix[start + w] - prefix[start];
                if best.is_none_or(|(bl, _)| load < bl) {
                    best = Some((load, start));
                }
            }
            best.map(|(_, start)| ids[start..start + w].to_vec())
        } else {
            // Least-used devices first; ties broken by id — read
            // straight off the maintained `(use-count, id)` order, no
            // per-allocation sort.
            let by_load = self.by_load.lock();
            let order = by_load.get(&island).expect("island indexed");
            debug_assert_eq!(order.len(), devs.len(), "by_load index drift");
            Some(order.iter().take(w).map(|(_, d)| *d).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_net::ClusterSpec;

    fn rm(spec: ClusterSpec) -> ResourceManager {
        ResourceManager::new(Arc::new(spec.build()))
    }

    #[test]
    fn allocates_least_loaded_devices() {
        let rm = rm(ClusterSpec::config_b(2)); // 16 devices
        let c = ClientId(0);
        let s1 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        let s2 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        // The two slices should not overlap: load balancing spreads them.
        let d1 = s1.physical_devices();
        let d2 = s2.physical_devices();
        assert!(d1.iter().all(|d| !d2.contains(d)));
    }

    #[test]
    fn oversubscription_shares_devices() {
        let rm = rm(ClusterSpec::config_b(1)); // 8 devices
        let c = ClientId(0);
        let s1 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        let s2 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        // Time-multiplexing: both slices cover the same 8 devices.
        assert_eq!(s1.physical_devices(), s2.physical_devices());
        assert_eq!(rm.device_load(DeviceId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "use-count underflow")]
    fn uncharge_underflow_is_a_hard_invariant_in_release() {
        let rm = rm(ClusterSpec::config_b(1));
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(2)).unwrap();
        let devs = s.physical_devices();
        rm.uncharge(s.id(), &devs);
        // The ledger is at zero for these devices; a second uncharge
        // must abort in every build profile (this suite runs in release
        // on CI) rather than saturate and silently drift by_load.
        rm.uncharge(s.id(), &devs);
    }

    #[test]
    fn island_constraint_is_respected() {
        let rm = rm(ClusterSpec::config_c());
        let c = ClientId(0);
        let s = rm
            .allocate(c, SliceRequest::devices(32).in_island(IslandId(2)))
            .unwrap();
        for d in s.physical_devices() {
            assert_eq!(rm.topology().island_of_device(d), IslandId(2));
        }
    }

    #[test]
    fn slice_never_spans_islands() {
        let rm = rm(ClusterSpec::config_c()); // 4 islands x 32
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(32)).unwrap();
        let islands: std::collections::BTreeSet<_> = s
            .physical_devices()
            .iter()
            .map(|d| rm.topology().island_of_device(*d))
            .collect();
        assert_eq!(islands.len(), 1);
        // Bigger than any island: refused.
        assert!(matches!(
            rm.allocate(c, SliceRequest::devices(33)),
            Err(ResourceError::InsufficientDevices { .. })
        ));
    }

    #[test]
    fn contiguous_slices_are_torus_windows() {
        let rm = rm(ClusterSpec::config_b(4)); // 32 devices
        let c = ClientId(0);
        let s = rm
            .allocate(c, SliceRequest::devices(4).contiguous())
            .unwrap();
        let devs = s.physical_devices();
        for w in devs.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1, "not contiguous: {devs:?}");
        }
        assert!(rm.topology().is_connected_submesh(&devs));
    }

    #[test]
    fn contiguous_skips_windows_spanning_detach_gaps() {
        // 4x8 torus. Detaching device 1 leaves [0, 2, 3, 4, ...]: the
        // id-window {0, 2, 3, 4} is NOT a connected submesh (0 = (0,0)
        // and 2 = (0,2) are two hops apart), so the allocator must skip
        // it rather than hand out a slice with a torus gap.
        let rm = rm(ClusterSpec::config_b(4));
        rm.detach_device(DeviceId(1));
        let c = ClientId(0);
        let s = rm
            .allocate(c, SliceRequest::devices(4).contiguous())
            .unwrap();
        let devs = s.physical_devices();
        assert!(
            rm.topology().is_connected_submesh(&devs),
            "allocator returned a disconnected 'contiguous' slice: {devs:?}"
        );
        assert!(!devs.contains(&DeviceId(1)));
    }

    #[test]
    fn contiguous_reports_fragmentation() {
        // 2x4 torus (8 devices). Detach every other device: plenty of
        // capacity for 2, but no two attached devices are adjacent.
        let rm = rm(ClusterSpec::config_b(1));
        for d in [1u32, 3, 4, 6] {
            rm.detach_device(DeviceId(d));
        }
        // Attached: {0, 2, 5, 7}. 0=(0,0), 2=(0,2), 5=(1,1), 7=(1,3):
        // pairwise non-adjacent.
        let err = rm
            .allocate(ClientId(0), SliceRequest::devices(2).contiguous())
            .unwrap_err();
        assert_eq!(err, ResourceError::Fragmented { requested: 2 });
        // Non-contiguous requests still succeed on the scattered devices.
        assert!(rm.allocate(ClientId(0), SliceRequest::devices(2)).is_ok());
    }

    #[test]
    fn release_returns_capacity() {
        let rm = rm(ClusterSpec::config_b(1));
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        assert_eq!(rm.device_load(DeviceId(0)), 1);
        rm.release(&s);
        assert_eq!(rm.device_load(DeviceId(0)), 0);
        assert_eq!(rm.total_load(), 0);
    }

    #[test]
    fn release_client_frees_everything() {
        let rm = rm(ClusterSpec::config_b(1));
        let c0 = ClientId(0);
        let c1 = ClientId(1);
        let _s0 = rm.allocate(c0, SliceRequest::devices(4)).unwrap();
        let _s1 = rm.allocate(c0, SliceRequest::devices(4)).unwrap();
        let _s2 = rm.allocate(c1, SliceRequest::devices(4)).unwrap();
        rm.release_client(c0);
        let total_load: u32 = (0..8).map(|d| rm.device_load(DeviceId(d))).sum();
        assert_eq!(total_load, 4); // only c1's slice remains
    }

    #[test]
    fn remap_is_visible_through_clones() {
        let rm = rm(ClusterSpec::config_b(2));
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(2)).unwrap();
        let clone = s.clone();
        assert_eq!(clone.generation(), 0);
        let new = vec![DeviceId(14), DeviceId(15)];
        rm.remap(&s, new.clone());
        assert_eq!(clone.physical_devices(), new);
        assert_eq!(clone.generation(), 1);
    }

    #[test]
    fn remap_moves_use_counts() {
        let rm = rm(ClusterSpec::config_b(2)); // 16 devices
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(2)).unwrap();
        let old = s.physical_devices();
        assert_eq!(old, vec![DeviceId(0), DeviceId(1)]);
        rm.remap(&s, vec![DeviceId(14), DeviceId(15)]);
        // Old devices are no longer charged; new devices are.
        assert_eq!(rm.device_load(DeviceId(0)), 0);
        assert_eq!(rm.device_load(DeviceId(1)), 0);
        assert_eq!(rm.device_load(DeviceId(14)), 1);
        assert_eq!(rm.device_load(DeviceId(15)), 1);
        // A fresh allocation prefers the now-idle original devices.
        let s2 = rm.allocate(c, SliceRequest::devices(2)).unwrap();
        assert_eq!(s2.physical_devices(), vec![DeviceId(0), DeviceId(1)]);
        // Release decrements the *post-remap* devices, exactly once.
        rm.release(&s);
        rm.release(&s2);
        assert_eq!(rm.total_load(), 0);
    }

    #[test]
    fn detach_attach_preserves_use_counts() {
        let rm = rm(ClusterSpec::config_b(1));
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        rm.detach_device(DeviceId(0));
        assert_eq!(rm.device_load(DeviceId(0)), 1, "count survives detach");
        rm.attach_device(DeviceId(0));
        assert_eq!(rm.device_load(DeviceId(0)), 1, "count survives re-attach");
        rm.release(&s);
        assert_eq!(rm.device_load(DeviceId(0)), 0, "no underflow, no drift");
        assert_eq!(rm.total_load(), 0);
    }

    #[test]
    fn detach_prevents_new_allocations_on_device() {
        let rm = rm(ClusterSpec::config_b(1)); // 8 devices
        for d in 0..4 {
            rm.detach_device(DeviceId(d));
        }
        assert_eq!(rm.attached_devices(), 4);
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(4)).unwrap();
        assert!(s.physical_devices().iter().all(|d| d.0 >= 4));
        assert!(rm.allocate(c, SliceRequest::devices(5)).is_err());
        rm.attach_device(DeviceId(0));
        assert!(rm.allocate(c, SliceRequest::devices(5)).is_ok());
    }

    #[test]
    fn heal_remaps_off_dead_devices() {
        let rm = rm(ClusterSpec::config_b(1)); // 8 devices, one island
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(4)).unwrap();
        assert_eq!(
            s.physical_devices(),
            vec![DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)]
        );
        let events = rm.heal(&[DeviceId(2)], &[]);
        assert_eq!(events.len(), 1);
        assert!(events[0].healed());
        assert_eq!(events[0].slice, s.id());
        let new = s.physical_devices();
        assert!(!new.contains(&DeviceId(2)), "dead device still mapped");
        assert_eq!(new.len(), 4);
        assert_eq!(s.generation(), 1);
        // Accounting: dead device uncharged, new devices charged once.
        assert_eq!(rm.device_load(DeviceId(2)), 0);
        for d in &new {
            assert_eq!(rm.device_load(*d), 1);
        }
        rm.release(&s);
        assert_eq!(rm.total_load(), 0);
    }

    #[test]
    fn heal_honors_contiguity() {
        let rm = rm(ClusterSpec::config_b(4)); // 4x8 torus
        let c = ClientId(0);
        let s = rm
            .allocate(c, SliceRequest::devices(4).contiguous())
            .unwrap();
        let events = rm.heal(&[s.physical_devices()[1]], &[]);
        assert!(events[0].healed());
        assert!(
            rm.topology().is_connected_submesh(&s.physical_devices()),
            "healed mapping must stay a connected submesh"
        );
        rm.release(&s);
        assert_eq!(rm.total_load(), 0);
    }

    #[test]
    fn heal_unplaceable_keeps_charge_and_reports_error() {
        let rm = rm(ClusterSpec::config_b(1)); // 8 devices, one island
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        // Killing one device leaves only 7 attached: an 8-wide slice
        // cannot be healed in place.
        let events = rm.heal(&[DeviceId(5)], &[]);
        assert_eq!(events.len(), 1);
        assert!(!events[0].healed());
        assert!(matches!(
            events[0].to,
            Err(ResourceError::InsufficientDevices { .. })
        ));
        // The broken mapping still charges its devices (no leak, no
        // double-free on release).
        assert_eq!(rm.device_load(DeviceId(5)), 1);
        rm.release(&s);
        assert_eq!(rm.total_load(), 0);
    }

    #[test]
    fn heal_respects_excluded_islands() {
        let rm = rm(ClusterSpec::islands_of(2, 1, 8));
        let c = ClientId(0);
        let s = rm
            .allocate(c, SliceRequest::devices(8).in_island(IslandId(0)))
            .unwrap();
        // Island 0 cannot re-fit the slice once a device dies; the
        // request is pinned there and island 1 is excluded anyway.
        let events = rm.heal(&[DeviceId(0)], &[IslandId(0)]);
        assert!(!events[0].healed());
        assert_eq!(
            events[0].to,
            Err(ResourceError::UnknownIsland {
                island: IslandId(0)
            })
        );
        // An unpinned slice moves to the other island instead.
        let s2 = rm.allocate(c, SliceRequest::devices(4)).unwrap();
        let first = s2.physical_devices();
        let dead = first[0];
        let events = rm.heal(&[dead], &[rm.topology().island_of_device(dead)]);
        let healed_ev = events.iter().find(|e| e.slice == s2.id()).unwrap();
        assert!(healed_ev.healed());
        let other = rm.topology().island_of_device(s2.physical_devices()[0]);
        assert_ne!(other, rm.topology().island_of_device(dead));
        rm.release(&s);
        rm.release(&s2);
        assert_eq!(rm.total_load(), 0);
    }

    #[test]
    fn rebalance_compacts_after_churn() {
        let rm = rm(ClusterSpec::config_b(1)); // 8 devices
        let c = ClientId(0);
        // Detach half the island, forcing both slices onto devices 4-7.
        for d in 0..4 {
            rm.detach_device(DeviceId(d));
        }
        let s1 = rm.allocate(c, SliceRequest::devices(4)).unwrap();
        let s2 = rm.allocate(c, SliceRequest::devices(4)).unwrap();
        assert_eq!(rm.device_load(DeviceId(4)), 2);
        // Capacity returns; rebalance spreads the load back out.
        for d in 0..4 {
            rm.attach_device(DeviceId(d));
        }
        let moved = rm.rebalance();
        assert_eq!(moved, 1, "exactly one slice needs to move");
        let max_load = (0..8).map(|d| rm.device_load(DeviceId(d))).max().unwrap();
        assert_eq!(max_load, 1, "load is compacted to one slice per device");
        rm.release(&s1);
        rm.release(&s2);
        assert_eq!(rm.total_load(), 0);
    }

    #[test]
    fn rebalance_moves_slices_off_detached_devices() {
        let rm = rm(ClusterSpec::config_b(1));
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(2)).unwrap();
        assert_eq!(s.physical_devices(), vec![DeviceId(0), DeviceId(1)]);
        // Maintenance detach without a fault: heal is not involved, but
        // rebalance migrates the slice onto attached capacity.
        rm.detach_device(DeviceId(0));
        let moved = rm.rebalance();
        assert_eq!(moved, 1);
        assert!(!s.physical_devices().contains(&DeviceId(0)));
        assert_eq!(rm.device_load(DeviceId(0)), 0);
        rm.release(&s);
        assert_eq!(rm.total_load(), 0);
    }

    #[test]
    fn rebalance_is_stable_when_balanced() {
        let rm = rm(ClusterSpec::config_b(2));
        let c = ClientId(0);
        let s1 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        let s2 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        assert_eq!(rm.rebalance(), 0, "balanced layout must not churn");
        assert_eq!(s1.generation(), 0);
        assert_eq!(s2.generation(), 0);
    }

    #[test]
    fn zero_device_request_rejected() {
        let rm = rm(ClusterSpec::config_b(1));
        assert!(matches!(
            rm.allocate(ClientId(0), SliceRequest::devices(0)),
            Err(ResourceError::EmptyRequest)
        ));
    }
}
