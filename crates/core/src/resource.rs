//! The centralized resource manager (§4.1).
//!
//! Owns every device across all islands, hands out *virtual slices*
//! whose virtual devices map 1:1 onto physical devices, and supports
//! dynamic attach/detach of backend resources. The virtual→physical
//! layer of indirection is what lets the single controller remap a
//! client's computation without the client's cooperation: a slice can be
//! remapped and programs simply re-lower.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use pathways_net::{ClientId, DeviceId, IslandId, Topology};

/// Identifier of an allocated virtual slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceId(pub u64);

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice{}", self.0)
    }
}

/// Constraints a client may put on a slice request (§4.1: "virtual
/// slices with specific 2D or 3D mesh shapes ... interconnect topology,
/// memory capacity, etc.").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceRequest {
    /// Number of virtual devices.
    pub devices: u32,
    /// Require all devices in this island (collectives need one island).
    pub island: Option<IslandId>,
    /// Require the devices to be contiguous in torus order (a "mesh
    /// shaped" slice rather than scattered devices).
    pub contiguous: bool,
}

impl SliceRequest {
    /// A request for `devices` devices anywhere in one island.
    pub fn devices(devices: u32) -> Self {
        SliceRequest {
            devices,
            island: None,
            contiguous: false,
        }
    }

    /// Pins the request to an island (builder style).
    #[must_use]
    pub fn in_island(mut self, island: IslandId) -> Self {
        self.island = Some(island);
        self
    }

    /// Requires torus-contiguous devices (builder style).
    #[must_use]
    pub fn contiguous(mut self) -> Self {
        self.contiguous = true;
        self
    }
}

/// Errors from slice allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// No island has enough attached devices.
    InsufficientDevices {
        /// Devices requested.
        requested: u32,
        /// Largest island's attached device count.
        largest_island: u32,
    },
    /// The requested island does not exist or has been detached.
    UnknownIsland {
        /// The island asked for.
        island: IslandId,
    },
    /// A zero-device slice was requested.
    EmptyRequest,
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::InsufficientDevices {
                requested,
                largest_island,
            } => write!(
                f,
                "requested {requested} devices but the largest island has {largest_island}"
            ),
            ResourceError::UnknownIsland { island } => write!(f, "unknown {island}"),
            ResourceError::EmptyRequest => write!(f, "slice request for zero devices"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// A slice of virtual devices with their current physical mapping.
///
/// Cloneable; all clones observe remappings (the mapping is shared).
#[derive(Clone)]
pub struct VirtualSlice {
    id: SliceId,
    mapping: Rc<RefCell<Vec<DeviceId>>>,
}

impl fmt::Debug for VirtualSlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualSlice")
            .field("id", &self.id)
            .field("devices", &self.mapping.borrow().len())
            .finish()
    }
}

impl VirtualSlice {
    /// The slice id.
    pub fn id(&self) -> SliceId {
        self.id
    }

    /// Number of virtual devices.
    pub fn len(&self) -> usize {
        self.mapping.borrow().len()
    }

    /// True if the slice has no devices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current physical device for each virtual device.
    pub fn physical_devices(&self) -> Vec<DeviceId> {
        self.mapping.borrow().clone()
    }

    /// Test-only constructor with a fixed mapping.
    #[doc(hidden)]
    pub fn for_tests(devices: Vec<DeviceId>) -> Self {
        VirtualSlice {
            id: SliceId(u64::MAX),
            mapping: Rc::new(RefCell::new(devices)),
        }
    }
}

struct Allocation {
    owner: ClientId,
    mapping: Rc<RefCell<Vec<DeviceId>>>,
}

/// The global resource manager.
pub struct ResourceManager {
    topo: Rc<Topology>,
    /// Attached devices per island, with a use-count for load balancing.
    attached: RefCell<BTreeMap<IslandId, BTreeMap<DeviceId, u32>>>,
    slices: RefCell<BTreeMap<SliceId, Allocation>>,
    next_slice: RefCell<u64>,
}

impl fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourceManager")
            .field("islands", &self.attached.borrow().len())
            .field("live_slices", &self.slices.borrow().len())
            .finish()
    }
}

impl ResourceManager {
    /// Creates a manager with every device of `topo` attached.
    pub fn new(topo: Rc<Topology>) -> Self {
        let mut attached = BTreeMap::new();
        for island in topo.islands() {
            let devs: BTreeMap<DeviceId, u32> = topo
                .devices_of_island(island)
                .into_iter()
                .map(|d| (d, 0))
                .collect();
            attached.insert(island, devs);
        }
        ResourceManager {
            topo,
            attached: RefCell::new(attached),
            slices: RefCell::new(BTreeMap::new()),
            next_slice: RefCell::new(0),
        }
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Rc<Topology> {
        &self.topo
    }

    /// Total attached devices.
    pub fn attached_devices(&self) -> u32 {
        self.attached
            .borrow()
            .values()
            .map(|m| m.len() as u32)
            .sum()
    }

    /// Detaches a device (e.g. maintenance); existing slices keep their
    /// mapping until explicitly remapped.
    pub fn detach_device(&self, device: DeviceId) {
        let island = self.topo.island_of_device(device);
        self.attached
            .borrow_mut()
            .get_mut(&island)
            .map(|m| m.remove(&device));
    }

    /// Re-attaches a device.
    ///
    /// # Panics
    ///
    /// Panics if `device` is not part of the topology.
    pub fn attach_device(&self, device: DeviceId) {
        let island = self.topo.island_of_device(device);
        self.attached
            .borrow_mut()
            .entry(island)
            .or_default()
            .entry(device)
            .or_insert(0);
    }

    /// Allocates a virtual slice for `client`.
    ///
    /// The placement heuristic is the paper's "simple heuristic that
    /// attempts to statically balance load by spreading computations
    /// across all available devices": devices with the lowest use-count
    /// are preferred, and the chosen island is the least-loaded one that
    /// fits. Virtual devices map 1:1 onto physical devices.
    ///
    /// # Errors
    ///
    /// See [`ResourceError`].
    pub fn allocate(
        &self,
        client: ClientId,
        request: SliceRequest,
    ) -> Result<VirtualSlice, ResourceError> {
        if request.devices == 0 {
            return Err(ResourceError::EmptyRequest);
        }
        let attached = self.attached.borrow();
        let candidate_islands: Vec<IslandId> = match request.island {
            Some(i) => {
                if !attached.contains_key(&i) {
                    return Err(ResourceError::UnknownIsland { island: i });
                }
                vec![i]
            }
            None => attached.keys().copied().collect(),
        };
        // Pick the island with enough devices and the lowest total load.
        let mut best: Option<(u64, IslandId)> = None;
        for island in candidate_islands {
            let devs = &attached[&island];
            if (devs.len() as u32) < request.devices {
                continue;
            }
            let load: u64 = devs.values().map(|c| *c as u64).sum();
            if best.is_none() || load < best.expect("checked").0 {
                best = Some((load, island));
            }
        }
        let Some((_, island)) = best else {
            let largest = attached.values().map(|m| m.len() as u32).max().unwrap_or(0);
            return Err(ResourceError::InsufficientDevices {
                requested: request.devices,
                largest_island: largest,
            });
        };
        drop(attached);

        let chosen: Vec<DeviceId> = {
            let mut attached = self.attached.borrow_mut();
            let devs = attached.get_mut(&island).expect("island exists");
            let chosen: Vec<DeviceId> = if request.contiguous {
                // Contiguous in device-id (torus) order: pick the window
                // with the lowest aggregate load.
                let ids: Vec<DeviceId> = devs.keys().copied().collect();
                let w = request.devices as usize;
                let mut best_at = 0usize;
                let mut best_load = u64::MAX;
                for start in 0..=(ids.len() - w) {
                    let load: u64 = ids[start..start + w].iter().map(|d| devs[d] as u64).sum();
                    if load < best_load {
                        best_load = load;
                        best_at = start;
                    }
                }
                ids[best_at..best_at + w].to_vec()
            } else {
                // Least-used devices first; ties broken by id for
                // determinism.
                let mut ids: Vec<(u32, DeviceId)> = devs.iter().map(|(d, c)| (*c, *d)).collect();
                ids.sort();
                ids.into_iter()
                    .take(request.devices as usize)
                    .map(|(_, d)| d)
                    .collect()
            };
            for d in &chosen {
                *devs.get_mut(d).expect("chosen from attached") += 1;
            }
            chosen
        };

        let id = {
            let mut next = self.next_slice.borrow_mut();
            let id = SliceId(*next);
            *next += 1;
            id
        };
        let mapping = Rc::new(RefCell::new(chosen));
        self.slices.borrow_mut().insert(
            id,
            Allocation {
                owner: client,
                mapping: Rc::clone(&mapping),
            },
        );
        Ok(VirtualSlice { id, mapping })
    }

    /// Releases a slice, decrementing device use-counts.
    pub fn release(&self, slice: &VirtualSlice) {
        if let Some(alloc) = self.slices.borrow_mut().remove(&slice.id()) {
            let mut attached = self.attached.borrow_mut();
            for d in alloc.mapping.borrow().iter() {
                let island = self.topo.island_of_device(*d);
                if let Some(devs) = attached.get_mut(&island) {
                    if let Some(c) = devs.get_mut(d) {
                        *c = c.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Releases every slice owned by `client` (used when a client fails).
    pub fn release_client(&self, client: ClientId) {
        let ids: Vec<SliceId> = self
            .slices
            .borrow()
            .iter()
            .filter(|(_, a)| a.owner == client)
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            let slice = VirtualSlice {
                id,
                mapping: Rc::clone(&self.slices.borrow()[&id].mapping),
            };
            self.release(&slice);
        }
    }

    /// Remaps a slice's virtual devices onto new physical devices (the
    /// suspend/resume and migration hook enabled by the virtual-device
    /// indirection). Existing clones of the slice observe the change;
    /// programs must re-lower before their next run.
    ///
    /// # Panics
    ///
    /// Panics if the new mapping's length differs from the slice size.
    pub fn remap(&self, slice: &VirtualSlice, new_devices: Vec<DeviceId>) {
        assert_eq!(
            new_devices.len(),
            slice.len(),
            "remap must preserve slice size"
        );
        *slice.mapping.borrow_mut() = new_devices;
    }

    /// Current use-count of a device (how many slices include it).
    pub fn device_load(&self, device: DeviceId) -> u32 {
        let island = self.topo.island_of_device(device);
        self.attached
            .borrow()
            .get(&island)
            .and_then(|m| m.get(&device).copied())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_net::ClusterSpec;

    fn rm(spec: ClusterSpec) -> ResourceManager {
        ResourceManager::new(Rc::new(spec.build()))
    }

    #[test]
    fn allocates_least_loaded_devices() {
        let rm = rm(ClusterSpec::config_b(2)); // 16 devices
        let c = ClientId(0);
        let s1 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        let s2 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        // The two slices should not overlap: load balancing spreads them.
        let d1 = s1.physical_devices();
        let d2 = s2.physical_devices();
        assert!(d1.iter().all(|d| !d2.contains(d)));
    }

    #[test]
    fn oversubscription_shares_devices() {
        let rm = rm(ClusterSpec::config_b(1)); // 8 devices
        let c = ClientId(0);
        let s1 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        let s2 = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        // Time-multiplexing: both slices cover the same 8 devices.
        assert_eq!(s1.physical_devices(), s2.physical_devices());
        assert_eq!(rm.device_load(DeviceId(0)), 2);
    }

    #[test]
    fn island_constraint_is_respected() {
        let rm = rm(ClusterSpec::config_c());
        let c = ClientId(0);
        let s = rm
            .allocate(c, SliceRequest::devices(32).in_island(IslandId(2)))
            .unwrap();
        for d in s.physical_devices() {
            assert_eq!(rm.topology().island_of_device(d), IslandId(2));
        }
    }

    #[test]
    fn slice_never_spans_islands() {
        let rm = rm(ClusterSpec::config_c()); // 4 islands x 32
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(32)).unwrap();
        let islands: std::collections::BTreeSet<_> = s
            .physical_devices()
            .iter()
            .map(|d| rm.topology().island_of_device(*d))
            .collect();
        assert_eq!(islands.len(), 1);
        // Bigger than any island: refused.
        assert!(matches!(
            rm.allocate(c, SliceRequest::devices(33)),
            Err(ResourceError::InsufficientDevices { .. })
        ));
    }

    #[test]
    fn contiguous_slices_are_torus_windows() {
        let rm = rm(ClusterSpec::config_b(4)); // 32 devices
        let c = ClientId(0);
        let s = rm
            .allocate(c, SliceRequest::devices(4).contiguous())
            .unwrap();
        let devs = s.physical_devices();
        for w in devs.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1, "not contiguous: {devs:?}");
        }
    }

    #[test]
    fn release_returns_capacity() {
        let rm = rm(ClusterSpec::config_b(1));
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(8)).unwrap();
        assert_eq!(rm.device_load(DeviceId(0)), 1);
        rm.release(&s);
        assert_eq!(rm.device_load(DeviceId(0)), 0);
    }

    #[test]
    fn release_client_frees_everything() {
        let rm = rm(ClusterSpec::config_b(1));
        let c0 = ClientId(0);
        let c1 = ClientId(1);
        let _s0 = rm.allocate(c0, SliceRequest::devices(4)).unwrap();
        let _s1 = rm.allocate(c0, SliceRequest::devices(4)).unwrap();
        let _s2 = rm.allocate(c1, SliceRequest::devices(4)).unwrap();
        rm.release_client(c0);
        let total_load: u32 = (0..8).map(|d| rm.device_load(DeviceId(d))).sum();
        assert_eq!(total_load, 4); // only c1's slice remains
    }

    #[test]
    fn remap_is_visible_through_clones() {
        let rm = rm(ClusterSpec::config_b(2));
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(2)).unwrap();
        let clone = s.clone();
        let new = vec![DeviceId(14), DeviceId(15)];
        rm.remap(&s, new.clone());
        assert_eq!(clone.physical_devices(), new);
    }

    #[test]
    fn detach_prevents_new_allocations_on_device() {
        let rm = rm(ClusterSpec::config_b(1)); // 8 devices
        for d in 0..4 {
            rm.detach_device(DeviceId(d));
        }
        assert_eq!(rm.attached_devices(), 4);
        let c = ClientId(0);
        let s = rm.allocate(c, SliceRequest::devices(4)).unwrap();
        assert!(s.physical_devices().iter().all(|d| d.0 >= 4));
        assert!(rm.allocate(c, SliceRequest::devices(5)).is_err());
        rm.attach_device(DeviceId(0));
        assert!(rm.allocate(c, SliceRequest::devices(5)).is_ok());
    }

    #[test]
    fn zero_device_request_rejected() {
        let rm = rm(ClusterSpec::config_b(1));
        assert!(matches!(
            rm.allocate(ClientId(0), SliceRequest::devices(0)),
            Err(ResourceError::EmptyRequest)
        ));
    }
}
