//! # pathways-core
//!
//! The Pathways runtime (Barham et al., MLSys 2022) rebuilt in Rust over
//! a simulated TPU cluster:
//!
//! * a **resource manager** handing out virtual device slices with a 1:1
//!   virtual→physical mapping (§4.1), exact per-device use-count
//!   accounting across remap/attach/detach churn, elastic healing
//!   ([`ResourceManager::heal`]: dead hardware → slices remapped onto
//!   spare capacity → programs re-lower on their next submit) and a
//!   churn defragmenter ([`ResourceManager::rebalance`]),
//! * a **client library** that traces programs into a compact sharded IR
//!   and lowers it to a PLAQUE dataflow (§3, §4.2, §4.3), with
//!   non-blocking submission returning typed [`ObjectRef`] data futures
//!   that chain programs through external inputs
//!   ([`ProgramBuilder::input`] + [`Client::submit_with`]) without
//!   awaiting intermediate runs,
//! * per-island **centralized gang schedulers** that consistently order
//!   all computations sharing an island (§4.4), with a pluggable policy
//!   engine ([`sched::policy`]) shipping FIFO, stride proportional
//!   share, strict priority, and gang-aware weighted-fair queueing,
//! * per-host **executors** implementing parallel asynchronous dispatch
//!   with a sequential fallback (§4.5),
//! * a **sharded object store** with logical-buffer refcounting,
//!   ownership-labelled GC, and HBM back-pressure (§4.2, §4.6).
//!
//! ## Quickstart
//!
//! ```
//! use pathways_core::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
//! use pathways_net::{ClusterSpec, HostId, NetworkParams};
//! use pathways_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(0);
//! let rt = PathwaysRuntime::new(
//!     &sim,
//!     ClusterSpec::config_b(2),
//!     NetworkParams::tpu_cluster(),
//!     PathwaysConfig::default(),
//! );
//! let client = rt.client(HostId(0));
//! let slice = client.virtual_slice(SliceRequest::devices(8))?;
//! let mut b = client.trace("step");
//! let f = FnSpec::compute_only("train_step", SimDuration::from_millis(1)).with_allreduce(4);
//! let comp = b.computation(f, &slice);
//! let program = b.build()?;
//! let prepared = client.prepare(&program);
//! let job = sim.spawn("client", async move {
//!     let result = client.run(&prepared).await;
//!     result.objects().len()
//! });
//! sim.run_to_quiescence();
//! assert_eq!(job.try_take().unwrap(), 1);
//! # let _ = comp;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Chaining programs through `ObjectRef` futures
//!
//! ```
//! use pathways_core::{FnSpec, InputSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
//! use pathways_net::{ClusterSpec, HostId, NetworkParams};
//! use pathways_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(0);
//! let rt = PathwaysRuntime::new(
//!     &sim,
//!     ClusterSpec::config_b(2),
//!     NetworkParams::tpu_cluster(),
//!     PathwaysConfig::default(),
//! );
//! let client = rt.client(HostId(0));
//! let slice = client.virtual_slice(SliceRequest::devices(8))?;
//!
//! let mut b = client.trace("producer");
//! let f = b.computation(
//!     FnSpec::compute_only("f", SimDuration::from_micros(100)).with_output_bytes(1 << 10),
//!     &slice,
//! );
//! let producer = client.prepare(&b.build()?);
//!
//! let mut b = client.trace("consumer");
//! let x = b.input(InputSpec::new("x", 8)); // bound at submit time
//! let g = b.computation(FnSpec::compute_only("g", SimDuration::from_micros(100)), &slice);
//! b.edge(x, g, 1 << 10);
//! let consumer = client.prepare(&b.build()?);
//!
//! let job = sim.spawn("client", async move {
//!     let run1 = client.submit(&producer).await; // non-blocking
//!     let fut = run1.object_ref(f).unwrap();     // future, data not produced yet
//!     let run2 = client.submit_with(&consumer, &[(x, fut)]).await.unwrap();
//!     // Both programs are in flight; await only the tail.
//!     let result = run2.finish().await;
//!     run1.finish().await;
//!     result.objects().len()
//! });
//! sim.run_to_quiescence();
//! assert_eq!(job.try_take().unwrap(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod chaos;
mod client;
mod config;
mod context;
mod exec;
mod fault;
pub mod housekeeping;
mod objref;
mod ops;
mod program;
mod resource;
mod runtime;
pub mod sched;
mod storage;

#[allow(deprecated)]
pub use client::PendingRun;
pub use client::{Client, Run, RunResult, SubmitError};
pub use config::{DispatchMode, PathwaysConfig};
pub use context::{CoreCtx, InputKey, InputSlot};
pub use exec::{CompRegistration, EnqueueInfo, ExecutorShared};
pub use fault::{FailureState, FaultInjector, FaultSpec, RunFootprint};
pub use housekeeping::{ErrorLog, HealLog};
pub use objref::ObjectRef;
pub use ops::{PreparedProgram, ProgInfo};
pub use program::{
    CompId, Computation, DataEdge, FnSpec, InputSpec, Program, ProgramBuilder, ProgramError,
    ShardMapping,
};
pub use resource::{
    HealEvent, ResourceError, ResourceManager, SliceId, SliceRequest, VirtualSlice,
};
pub use runtime::PathwaysRuntime;
pub use sched::policy::{
    FifoPolicy, PriorityPolicy, QueuedProgram, SchedPolicyImpl, StridePolicy, WfqPolicy,
};
pub use sched::{SchedPolicy, SchedulerHandle};
pub use storage::{
    FailureReason, ObjectError, ObjectId, ObjectStore, PlacementPolicy, RecoveryStats,
    SegmentStats, SpillEvent, StoreError, StoredShard, Tier, TierConfig, TierStats,
};
