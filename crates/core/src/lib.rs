//! # pathways-core
//!
//! The Pathways runtime (Barham et al., MLSys 2022) rebuilt in Rust over
//! a simulated TPU cluster:
//!
//! * a **resource manager** handing out virtual device slices with a 1:1
//!   virtual→physical mapping (§4.1),
//! * a **client library** that traces programs into a compact sharded IR
//!   and lowers it to a PLAQUE dataflow (§3, §4.2, §4.3),
//! * per-island **centralized gang schedulers** that consistently order
//!   all computations sharing an island (§4.4), with a pluggable policy
//!   engine ([`sched::policy`]) shipping FIFO, stride proportional
//!   share, strict priority, and gang-aware weighted-fair queueing,
//! * per-host **executors** implementing parallel asynchronous dispatch
//!   with a sequential fallback (§4.5),
//! * a **sharded object store** with logical-buffer refcounting,
//!   ownership-labelled GC, and HBM back-pressure (§4.2, §4.6).
//!
//! ## Quickstart
//!
//! ```
//! use pathways_core::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
//! use pathways_net::{ClusterSpec, HostId, NetworkParams};
//! use pathways_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(0);
//! let rt = PathwaysRuntime::new(
//!     &sim,
//!     ClusterSpec::config_b(2),
//!     NetworkParams::tpu_cluster(),
//!     PathwaysConfig::default(),
//! );
//! let client = rt.client(HostId(0));
//! let slice = client.virtual_slice(SliceRequest::devices(8))?;
//! let mut b = client.trace("step");
//! let f = FnSpec::compute_only("train_step", SimDuration::from_millis(1)).with_allreduce(4);
//! let comp = b.computation(f, &slice);
//! let program = b.build()?;
//! let prepared = client.prepare(&program);
//! let job = sim.spawn("client", async move {
//!     let result = client.run(&prepared).await;
//!     result.objects().len()
//! });
//! sim.run_to_quiescence();
//! assert_eq!(job.try_take().unwrap(), 1);
//! # let _ = comp;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod client;
mod config;
mod context;
mod exec;
pub mod housekeeping;
mod ops;
mod program;
mod resource;
mod runtime;
pub mod sched;
mod store;

pub use client::{Client, PendingRun, RunResult};
pub use config::{DispatchMode, PathwaysConfig};
pub use context::{CoreCtx, InputKey, InputSlot};
pub use exec::{CompRegistration, EnqueueInfo, ExecutorShared};
pub use ops::{PreparedProgram, ProgInfo};
pub use program::{
    CompId, Computation, DataEdge, FnSpec, Program, ProgramBuilder, ProgramError, ShardMapping,
};
pub use resource::{ResourceError, ResourceManager, SliceId, SliceRequest, VirtualSlice};
pub use runtime::PathwaysRuntime;
pub use sched::policy::{
    FifoPolicy, PriorityPolicy, QueuedProgram, SchedPolicyImpl, StridePolicy, WfqPolicy,
};
pub use sched::{SchedPolicy, SchedulerHandle};
pub use store::{ObjectId, ObjectStore, StoredShard};
