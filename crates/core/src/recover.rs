//! Object recovery: making `ProducerFailed` a last resort.
//!
//! PR 4's healing recovers *capacity* — live slices remap off dead
//! hardware and the next submit re-lowers — but every byte already
//! produced onto that hardware was lost, and
//! [`ObjectError::ProducerFailed`](crate::ObjectError) was terminal. The
//! [`RecoveryManager`] closes that gap with the two mechanisms real
//! deployments use (Ray-style lineage per `crates/baselines`' Ray model,
//! durable checkpoints per the tiered store):
//!
//! 1. **Restore from checkpoint** — if the object has a disk checkpoint,
//!    copy it back into a live host's DRAM (one disk read on the sim
//!    wheel) and fire the readiness events.
//! 2. **Recompute via lineage** — otherwise, if the object's producing
//!    program and bound inputs were recorded, re-submit the program
//!    through the client's normal path. Because the fault injector heals
//!    slices *before* recovery tasks run, the re-submission re-lowers
//!    onto the healed mapping (PR 4's re-lowering path) and lands on
//!    live devices. The fresh output is then staged into DRAM under the
//!    original object id.
//! 3. **Surface the error** — only when neither works (no checkpoint, no
//!    lineage, inputs themselves dead, attempts exhausted) does the
//!    object fail terminally and the failure cascade to consumers.
//!
//! While a recovery is in flight the store entry carries a `recovering`
//! event; consumers ([`ObjectRef::ready`](crate::ObjectRef::ready), the
//! input-transfer drivers) wait through it transparently, so the client
//! of a consuming run never observes the loss at all — the acceptance
//! bar of this PR.

use pathways_sim::Lock;
use std::fmt;
use std::sync::{Arc, Weak};

use pathways_net::{DeviceId, FxHashMap, HostId};

use crate::client::Client;
use crate::context::CoreCtx;
use crate::fault::FaultInjector;
use crate::objref::ObjectRef;
use crate::program::{CompId, Program};
use crate::store::{FailureReason, ObjectId};
use crate::tier::TierConfig;

/// How to reproduce one object: the producing program plus the exact
/// input bindings of the original submission. The bindings hold
/// [`ObjectRef`] clones, so lineage *retains its inputs* — an input
/// cannot be garbage-collected while something downstream might need it
/// for recompute (this retention is what drives tier spill pressure in
/// long chains, and it is released with the object's last reference).
pub(crate) struct LineageRecord {
    pub(crate) client: Client,
    pub(crate) program: Program,
    pub(crate) bindings: Vec<(CompId, ObjectRef)>,
}

impl fmt::Debug for LineageRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LineageRecord")
            .field("client", &self.client.id())
            .field("inputs", &self.bindings.len())
            .finish()
    }
}

/// Counters over recovery outcomes (monotonic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Objects rematerialized from a disk checkpoint.
    pub restored: u64,
    /// Objects rematerialized by re-running their producing program.
    pub recomputed: u64,
    /// Recoveries that failed terminally (`ProducerFailed` surfaced).
    pub abandoned: u64,
}

/// Absorbs hardware loss of store objects into asynchronous recovery
/// instead of terminal failure. Owned by the [`FaultInjector`], which
/// consults it during the synchronous blast-radius walk: an *absorbed*
/// object is dropped from the walk's doomed set (no error recorded, no
/// cascade) and a recovery task is spawned to rebuild it.
pub(crate) struct RecoveryManager {
    core: Arc<CoreCtx>,
    cfg: TierConfig,
    /// Back-reference for the terminal path: an abandoned recovery must
    /// cascade the failure to consumers exactly as the injector would
    /// have, just later in virtual time.
    injector: Weak<FaultInjector>,
    /// Recovery attempts per object, against
    /// [`TierConfig::max_recovery_attempts`].
    attempts: Lock<FxHashMap<ObjectId, u32>>,
    stats: Lock<RecoveryStats>,
}

impl fmt::Debug for RecoveryManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveryManager")
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl RecoveryManager {
    pub(crate) fn new(core: Arc<CoreCtx>, cfg: TierConfig, injector: Weak<FaultInjector>) -> Self {
        RecoveryManager {
            core,
            cfg,
            injector,
            attempts: Lock::new(FxHashMap::default()),
            stats: Lock::new(RecoveryStats::default()),
        }
    }

    /// Outcome counters so far.
    pub(crate) fn stats(&self) -> RecoveryStats {
        *self.stats.lock()
    }

    /// Tries to absorb the loss of `id`'s HBM shards on dead `device`.
    /// True means the object is (already or now) recovering and must not
    /// be failed or cascaded; false means the loss is terminal and the
    /// caller proceeds with `fail_object`.
    pub(crate) fn absorb_device_loss(
        self: &Arc<Self>,
        id: ObjectId,
        device: DeviceId,
        reason: FailureReason,
    ) -> bool {
        let store = &self.core.store;
        if store.recovering(id).is_some() {
            // An earlier fault already opened the window; this fault
            // just killed another replica of the same object.
            store.drop_shards_on_device(id, device);
            return true;
        }
        if !self.budget_and_lineage_allow(id) {
            return false;
        }
        store.drop_shards_on_device(id, device);
        if store.begin_recovery(id).is_none() {
            return false;
        }
        self.note_attempt(id);
        self.spawn_recovery(id, reason);
        true
    }

    /// Tries to absorb the loss of `id`'s DRAM shards spilled to dead
    /// `host`. Same contract as
    /// [`RecoveryManager::absorb_device_loss`].
    pub(crate) fn absorb_dram_loss(
        self: &Arc<Self>,
        id: ObjectId,
        host: HostId,
        reason: FailureReason,
    ) -> bool {
        let store = &self.core.store;
        if store.recovering(id).is_some() {
            store.drop_dram_on_host(id, host);
            return true;
        }
        if !self.budget_and_lineage_allow(id) {
            return false;
        }
        store.drop_dram_on_host(id, host);
        if store.begin_recovery(id).is_none() {
            return false;
        }
        self.note_attempt(id);
        self.spawn_recovery(id, reason);
        true
    }

    /// Tries to absorb the failure of a run whose sink `id` is — the
    /// in-flight production died with its hardware. No shards to drop up
    /// front (partial output is swept by the recompute commit); the
    /// object recovers by lineage re-submission (a checkpoint can only
    /// exist for a *completed* production, i.e. an earlier incarnation).
    pub(crate) fn absorb_run_loss(self: &Arc<Self>, id: ObjectId, reason: FailureReason) -> bool {
        let store = &self.core.store;
        if store.recovering(id).is_some() {
            return true;
        }
        if !self.budget_and_lineage_allow(id) {
            return false;
        }
        if store.begin_recovery(id).is_none() {
            return false;
        }
        self.note_attempt(id);
        self.spawn_recovery(id, reason);
        true
    }

    /// Common absorb gate: the object must be recoverable (checkpoint or
    /// healthy lineage) *and* within its attempt budget. Exhausting the
    /// budget on an otherwise-recoverable object counts as an
    /// abandonment — the loss was in principle survivable.
    fn budget_and_lineage_allow(&self, id: ObjectId) -> bool {
        if !self.core.store.recoverable(id) {
            return false;
        }
        if self.attempts.lock().get(&id).copied().unwrap_or(0) >= self.cfg.max_recovery_attempts {
            self.stats.lock().abandoned += 1;
            return false;
        }
        true
    }

    fn note_attempt(&self, id: ObjectId) {
        *self.attempts.lock().entry(id).or_insert(0) += 1;
    }

    /// First live (host, device) pair in id order — where checkpoint
    /// restores stage their data. Deterministic by construction.
    fn restore_target(&self) -> Option<(DeviceId, HostId)> {
        let topo = Arc::clone(self.core.fabric.topology());
        let failures = &self.core.failures;
        let mut hosts: Vec<HostId> = topo.hosts().collect();
        hosts.sort();
        for h in hosts {
            if failures.host_dead(h) {
                continue;
            }
            let mut devs: Vec<DeviceId> = topo.devices_of_host(h).collect();
            devs.sort();
            for d in devs {
                if !failures.device_dead(d) {
                    return Some((d, h));
                }
            }
        }
        None
    }

    /// Spawns the asynchronous recovery of `id`. The task runs after the
    /// injector's synchronous walk returns — in particular after slice
    /// healing — so lineage re-submissions re-lower onto healed devices.
    fn spawn_recovery(self: &Arc<Self>, id: ObjectId, reason: FailureReason) {
        let this = Arc::clone(self);
        self.core.handle.spawn(format!("recover-{id}"), async move {
            this.recover(id, reason).await;
        });
    }

    async fn recover(self: Arc<Self>, id: ObjectId, reason: FailureReason) {
        let h = self.core.handle.clone();
        let store = self.core.store.clone();
        let t0 = h.now();

        // 1. Restore from checkpoint: one disk read into a live host's
        // DRAM, then every shard is servable again.
        if let Some(total) = store.checkpoint_restore_size(id) {
            if let Some((device, host)) = self.restore_target() {
                h.sleep(self.cfg.disk_time(total)).await;
                if store.complete_restore(id, device, host) {
                    h.trace_span("tiers", format!("restore {id}"), t0, h.now());
                    self.stats.lock().restored += 1;
                    return;
                }
                if !store.contains(id) {
                    return; // released while restoring; nothing to rebuild
                }
            }
        }

        // 2. Recompute via lineage: re-submit the producing program with
        // its original bindings. Stale preparations re-lower against the
        // healed mapping inside submit_with (PR 4's path), so the
        // recompute lands on live devices without any special casing.
        if let Some(lineage) = store.lineage_of(id) {
            if lineage.bindings.iter().all(|(_, r)| r.error().is_none()) {
                let prepared = lineage.client.prepare(&lineage.program);
                if let Ok(run) = lineage
                    .client
                    .submit_with(&prepared, &lineage.bindings)
                    .await
                {
                    let out = run.object_ref(id.comp);
                    let result = run.finish().await;
                    if let Some(out) = out {
                        if out.ready().await.is_ok() {
                            // Stage the fresh output into DRAM under the
                            // original id (one HBM->DRAM copy).
                            h.sleep(self.cfg.hbm_dram_time(out.total_bytes())).await;
                            let topo = Arc::clone(self.core.fabric.topology());
                            let shards: Vec<(u32, u64, DeviceId, HostId)> = out
                                .devices()
                                .iter()
                                .enumerate()
                                .map(|(s, d)| {
                                    (s as u32, out.bytes_per_shard(), *d, topo.host_of_device(*d))
                                })
                                .collect();
                            if store.complete_recompute(id, &shards) {
                                h.trace_span("tiers", format!("recompute {id}"), t0, h.now());
                                self.stats.lock().recomputed += 1;
                                drop(result); // releases the recompute copy
                                return;
                            }
                        }
                    }
                    drop(result);
                }
            }
        }

        // 3. Terminal: surface ProducerFailed and cascade exactly as the
        // injector's synchronous walk would have.
        if !store.contains(id) {
            return;
        }
        self.stats.lock().abandoned += 1;
        store.fail_object(id, reason);
        if let Some(inj) = self.injector.upgrade() {
            inj.cascade_failure(&[id]);
        }
    }
}
