//! Per-host executors: the host-side half of gang-scheduled dynamic
//! dispatch (§4.4) and parallel asynchronous dispatch (§4.5).
//!
//! The executor consumes grant batches from its island's scheduler in
//! strict FIFO order and performs, for each granted computation shard:
//! output-buffer reservation (HBM back-pressure applies here), input
//! staging allocation, input-future wiring, and the PCIe enqueue. Because
//! grants arrive on a FIFO channel from a single scheduler, every
//! device's queue sees concurrent programs' collectives in the same
//! relative order — the deadlock-freedom invariant.

use pathways_sim::hash::FxHashMap;
use pathways_sim::Lock;
use std::fmt;
use std::sync::Arc;

use pathways_device::{
    CollectiveOp, DeviceHandle, EnqueuedKernel, HbmLease, Kernel, KernelCompletion,
};
use pathways_net::{DeviceId, Fabric, HostId, Router};
use pathways_plaque::RunId;
use pathways_sim::channel::{self, OneshotReceiver, OneshotSender};
use pathways_sim::sync::{Event, Notify};
use pathways_sim::{IdleToken, SimHandle};

use crate::config::DispatchMode;
use crate::fault::FailureState;
use crate::program::CompId;
use crate::sched::CtrlMsg;
use crate::storage::{ObjectId, ObjectStore};

/// Key identifying one computation shard of one run.
pub type ShardKey = (RunId, CompId, u32);

/// What a computation shard's dataflow operator hands to the executor so
/// its kernel can be enqueued.
pub struct CompRegistration {
    /// One readiness event per in-edge; the kernel waits on all of them.
    pub input_events: Vec<Event>,
    /// Sequential-dispatch gate: set once all predecessor future handles
    /// arrived. `None` in parallel mode.
    pub prereq: Option<Event>,
    /// Fired by the executor once the kernel is enqueued.
    pub on_enqueued: OneshotSender<EnqueueInfo>,
}

impl fmt::Debug for CompRegistration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompRegistration")
            .field("inputs", &self.input_events.len())
            .field("sequential", &self.prereq.is_some())
            .finish()
    }
}

/// Delivered to the operator when its kernel has been enqueued.
pub struct EnqueueInfo {
    /// Resolves when the kernel finishes on the device.
    pub completion: OneshotReceiver<KernelCompletion>,
    /// Transient input-staging reservation, dropped after completion.
    pub input_lease: Option<HbmLease>,
}

impl fmt::Debug for EnqueueInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnqueueInfo").finish_non_exhaustive()
    }
}

/// Registration rendezvous between dataflow operators and the host
/// executor.
#[derive(Clone, Default)]
pub struct ExecutorShared {
    regs: Arc<Lock<FxHashMap<ShardKey, CompRegistration>>>,
    arrival: Notify,
}

impl fmt::Debug for ExecutorShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorShared")
            .field("pending_registrations", &self.regs.lock().len())
            .finish()
    }
}

impl ExecutorShared {
    /// Creates an empty rendezvous.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a shard (called by the operator's `on_start`).
    ///
    /// # Panics
    ///
    /// Panics on duplicate registration of the same key.
    pub fn register(&self, key: ShardKey, reg: CompRegistration) {
        let prev = self.regs.lock().insert(key, reg);
        assert!(prev.is_none(), "shard {key:?} registered twice");
        self.arrival.notify_waiters();
    }

    /// Drops every pending registration of `run` (failure sweep): the
    /// dropped `on_enqueued` senders make the shard drivers observe the
    /// abort, and any executor parked in `wait_for` on
    /// one of the run's shards is woken to notice the failure.
    pub fn fail_run(&self, run: RunId) {
        self.regs.lock().retain(|(r, _, _), _| *r != run);
        self.arrival.notify_waiters();
    }

    /// Waits for the shard's registration; `None` if the run is failed
    /// (the registration was, or will be, swept by the fault injector).
    async fn wait_for(&self, key: ShardKey, failures: &FailureState) -> Option<CompRegistration> {
        loop {
            if let Some(reg) = self.regs.lock().remove(&key) {
                return Some(reg);
            }
            if failures.run_failed(key.0) {
                return None;
            }
            self.arrival.notified().await;
        }
    }
}

/// Spawns the executor task for `host`.
#[allow(clippy::too_many_arguments)]
pub fn spawn_executor(
    handle: &SimHandle,
    host: HostId,
    router: &Router<CtrlMsg>,
    shared: ExecutorShared,
    fabric: Fabric,
    store: ObjectStore,
    devices: Arc<FxHashMap<DeviceId, DeviceHandle>>,
    plaque: pathways_plaque::PlaqueRuntime,
    failures: FailureState,
    mode: DispatchMode,
) {
    let mut inbox = router.register(host);
    let h = handle.clone();
    let token = IdleToken::new();
    let token_task = token.clone();
    handle.spawn_service(format!("executor-{host}"), &token, async move {
        loop {
            token_task.set_idle();
            let Some(env) = inbox.recv().await else { break };
            token_task.set_busy();
            let CtrlMsg::Grants(grants) = env.msg else {
                panic!("executor received a non-grant control message");
            };
            // Strict FIFO processing preserves the scheduler's global
            // order on every local device queue.
            for grant in grants {
                // Grants of a failed run are skipped wholesale: the
                // fault injector already force-started the run's shards
                // and swept their registrations, so touching them here
                // would double-start (and waiting for their
                // registrations would wedge this executor).
                if failures.run_failed(grant.run) {
                    continue;
                }
                let object = ObjectId {
                    run: grant.run,
                    comp: grant.comp,
                };
                // Intermediate outputs are runtime-owned (released by the
                // producer once consumers have their copies). Sink outputs
                // were declared by the client at submit time; re-creating
                // one here would resurrect an output whose ObjectRef the
                // client already dropped.
                if !grant.sink {
                    store.create(object, grant.client);
                }
                // The grant message carries the subgraph-start
                // information (§4.5's single message): trigger the local
                // dataflow shards in place, no extra fan-out.
                for (shard, _) in &grant.local_shards {
                    plaque.start_local(
                        host,
                        grant.run,
                        pathways_plaque::NodeId(grant.comp.0),
                        *shard,
                    );
                }
                for (shard, device_id) in &grant.local_shards {
                    let device = devices
                        .get(device_id)
                        .unwrap_or_else(|| panic!("unknown {device_id} in grant"))
                        .clone();
                    debug_assert_eq!(
                        fabric.topology().host_of_device(*device_id),
                        host,
                        "grant routed to wrong host"
                    );
                    let Some(reg) = shared
                        .wait_for((grant.run, grant.comp, *shard), &failures)
                        .await
                    else {
                        // The run failed while this grant was in flight.
                        continue;
                    };
                    if mode == DispatchMode::Sequential {
                        if let Some(prereq) = &reg.prereq {
                            prereq.wait().await;
                        }
                    }
                    // Host-side resource allocation: output buffer in the
                    // object store (HBM back-pressure applies) plus
                    // transient input staging. On a tiered store, HBM
                    // pressure first spills LRU ready shards to host
                    // DRAM so the staging allocation need not stall.
                    let input_lease = if grant.input_bytes > 0 {
                        store.ensure_room(&device, grant.input_bytes).await;
                        Some(device.hbm().allocate(grant.input_bytes).await)
                    } else {
                        None
                    };
                    store
                        .put_shard(object, *shard, &device, grant.output_bytes)
                        .await;
                    // Wire input futures.
                    let mut inputs_ready = Vec::with_capacity(reg.input_events.len());
                    for ev in &reg.input_events {
                        let (tx, rx) = channel::oneshot();
                        let ev = ev.clone();
                        // Raced against the run's failure: a run failed
                        // mid-enqueue may have had its input slots swept
                        // by the aborting shard driver before this
                        // adapter started waiting, so nothing would ever
                        // deliver the event. The unblock matches poison
                        // semantics — the kernel drains, the run's typed
                        // error is what consumers observe.
                        let cancel = failures.failed_event(grant.run);
                        h.spawn("input-adapter", async move {
                            crate::ops::event_or_cancel(&ev, cancel.as_ref()).await;
                            let _ = tx.send(());
                        });
                        inputs_ready.push(rx);
                    }
                    let kernel = Kernel {
                        label: grant.label.clone(),
                        compute: grant.compute,
                        collective: grant.collective.map(|(kind, duration)| CollectiveOp {
                            kind,
                            tag: grant.gang_tag,
                            participants: grant.participants,
                            duration,
                            devices: grant.gang_devices.clone(),
                        }),
                        output_bytes: grant.output_bytes,
                    };
                    // The asynchronous PCIe enqueue (host CPU + driver).
                    fabric.pcie_enqueue(host).await;
                    let (done_tx, done_rx) = channel::oneshot();
                    // Enqueueing to a dead device drops the job (and its
                    // completion sender), which the shard driver observes
                    // as a kernel abort — same path as a death with the
                    // kernel already queued.
                    let _ = device.enqueue(EnqueuedKernel {
                        kernel,
                        program: grant.label.clone(),
                        inputs_ready,
                        done: Some(done_tx),
                        // Gang owner: run id + 1 (0 is the rendezvous's
                        // "unknown owner" sentinel; RunId(0) is real).
                        owner: grant.run.0 + 1,
                    });
                    let _ = reg.on_enqueued.send(EnqueueInfo {
                        completion: done_rx,
                        input_lease,
                    });
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_rendezvous_is_order_independent() {
        use pathways_sim::{Sim, SimDuration};
        let mut sim = Sim::new(0);
        let shared = ExecutorShared::new();
        let key: ShardKey = (RunId(1), CompId(0), 0);
        // Waiter first, registration later.
        let s2 = shared.clone();
        let failures = FailureState::new();
        let f2 = failures.clone();
        let waiter = sim.spawn("waiter", async move { s2.wait_for(key, &f2).await });
        let s3 = shared.clone();
        let h = sim.handle();
        sim.spawn("registrar", async move {
            h.sleep(SimDuration::from_micros(5)).await;
            let (tx, _rx) = channel::oneshot();
            s3.register(
                key,
                CompRegistration {
                    input_events: vec![],
                    prereq: None,
                    on_enqueued: tx,
                },
            );
        });
        sim.run_to_quiescence();
        assert!(waiter.is_finished());
        // Registration first, waiter later.
        let mut sim = Sim::new(0);
        let shared = ExecutorShared::new();
        let (tx, _rx) = channel::oneshot();
        shared.register(
            key,
            CompRegistration {
                input_events: vec![],
                prereq: None,
                on_enqueued: tx,
            },
        );
        let s2 = shared.clone();
        let f3 = failures.clone();
        let waiter = sim.spawn("waiter", async move { s2.wait_for(key, &f3).await });
        sim.run_to_quiescence();
        assert!(waiter.is_finished());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let shared = ExecutorShared::new();
        let key: ShardKey = (RunId(0), CompId(0), 0);
        let (tx1, _r1) = channel::oneshot();
        let (tx2, _r2) = channel::oneshot();
        shared.register(
            key,
            CompRegistration {
                input_events: vec![],
                prereq: None,
                on_enqueued: tx1,
            },
        );
        shared.register(
            key,
            CompRegistration {
                input_events: vec![],
                prereq: None,
                on_enqueued: tx2,
            },
        );
    }
}
