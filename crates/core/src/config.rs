//! Runtime configuration.

use pathways_sim::{ExecutorKind, SimDuration};

use crate::sched::SchedPolicy;
use crate::storage::TierConfig;

/// Host-side dispatch strategy (§4.5, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Parallel asynchronous dispatch: host-side work for every node of
    /// a program runs as soon as the (single) scheduler grant arrives,
    /// in parallel with predecessors' device execution.
    #[default]
    Parallel,
    /// Sequential asynchronous dispatch: a node's host-side work starts
    /// only after its predecessors have been enqueued and their output
    /// futures received — the Figure 4a baseline that Figure 7 compares
    /// against.
    Sequential,
}

/// Tunable parameters of the Pathways runtime.
#[derive(Debug, Clone)]
pub struct PathwaysConfig {
    /// Host-side dispatch strategy.
    pub dispatch: DispatchMode,
    /// Island-scheduler policy. A constructor facade: each island
    /// scheduler builds its own policy-engine instance from this value
    /// (see [`crate::sched::policy`]), so accounting state is never
    /// shared across islands. Use [`SchedPolicy::custom`] to plug in an
    /// out-of-tree policy.
    pub policy: SchedPolicy,
    /// Client-side cost per program submission (Python call, tracing
    /// cache lookup, serialization).
    pub client_overhead: SimDuration,
    /// Additional client-side cost per computation node submitted.
    pub client_per_comp: SimDuration,
    /// Scheduler policy work per program.
    pub sched_decision: SimDuration,
    /// How far ahead of estimated device availability the scheduler
    /// grants work. Smaller values make scheduling policies (e.g.
    /// proportional share) bite sooner; larger values deepen pipelining.
    pub sched_horizon: SimDuration,
    /// HBM capacity per device (TPUv3: 16 GiB).
    pub hbm_per_device: u64,
    /// Batch all of a program's grants for one host into a single DCN
    /// message (§4.5's "single message describing the entire subgraph").
    /// `false` sends one message per computation — the ablation.
    pub batch_grants: bool,
    /// Storage tiers and object recovery. `None` (the default) keeps
    /// the single-tier seed semantics: HBM only, no spill, no
    /// checkpoints, `ProducerFailed` terminal. `Some` enables host-DRAM
    /// and disk tiers with LRU spill under HBM pressure, periodic disk
    /// checkpoints, and (if [`TierConfig::recovery`]) lineage-based
    /// object recovery.
    pub tiers: Option<TierConfig>,
    /// Which executor backend drives the runtime. `Deterministic` (the
    /// default) is the single-threaded virtual-time simulation whose
    /// traces replay bit-identically; `Threaded` runs the same
    /// controller on a real work-stealing thread pool with monotonic
    /// timers. Consumed by [`crate::PathwaysRuntime::launch`]; ignored
    /// when the caller builds its own executor and uses
    /// [`crate::PathwaysRuntime::new`].
    pub executor: ExecutorKind,
}

impl Default for PathwaysConfig {
    fn default() -> Self {
        PathwaysConfig {
            dispatch: DispatchMode::Parallel,
            policy: SchedPolicy::Fifo,
            client_overhead: SimDuration::from_micros(20),
            client_per_comp: SimDuration::from_micros(2),
            sched_decision: SimDuration::from_micros(4),
            sched_horizon: SimDuration::from_millis(3),
            hbm_per_device: 16 << 30,
            batch_grants: true,
            tiers: None,
            executor: ExecutorKind::Deterministic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PathwaysConfig::default();
        assert_eq!(c.dispatch, DispatchMode::Parallel);
        assert_eq!(c.policy, SchedPolicy::Fifo);
        assert!(c.hbm_per_device >= 1 << 30);
        assert!(c.tiers.is_none(), "seed semantics by default");
        assert_eq!(c.executor, ExecutorKind::Deterministic);
    }
}
