//! Storage-tier vocabulary for the object store: HBM, host DRAM and
//! cluster-durable disk.
//!
//! The seed store modeled exactly one tier — device HBM — so every byte
//! of produced data died with its device and `ProducerFailed` was
//! terminal. [`TierConfig`] turns on the memory hierarchy the paper's
//! deployment sits on: under per-device HBM pressure the store spills
//! least-recently-used ready shards to the device's host DRAM (and
//! cascades DRAM overflow to disk), periodic checkpoints copy completed
//! sink objects to disk, and the recovery manager restores or recomputes
//! objects lost to hardware death before surfacing an error. Every tier
//! transition is a virtual-time transfer cost on the simulation wheel
//! and is stamped onto the `tiers` trace track, so tiered runs replay
//! bit-identically.

use std::fmt;

use pathways_net::HostId;
use pathways_sim::{SimDuration, SimTime};

use crate::store::ObjectId;

/// Where one shard's bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Pinned in a device's HBM (the only tier of the untiered store).
    Hbm,
    /// Spilled (or restored) to a host's DRAM; lost if that host dies.
    Dram,
    /// On cluster-durable disk; survives device and host death.
    Disk,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Hbm => write!(f, "hbm"),
            Tier::Dram => write!(f, "dram"),
            Tier::Disk => write!(f, "disk"),
        }
    }
}

/// Configuration of the tiered store and its recovery machinery.
///
/// Installed through
/// [`PathwaysConfig::tiers`](crate::PathwaysConfig::tiers); `None`
/// (the default) keeps the seed behavior: HBM only, no spill, no
/// checkpoints, `ProducerFailed` terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierConfig {
    /// Host-DRAM spill capacity per host.
    pub dram_per_host: u64,
    /// HBM↔DRAM staging bandwidth (PCIe class), bytes per second.
    pub hbm_dram_bw: u64,
    /// DRAM↔disk bandwidth, bytes per second.
    pub dram_disk_bw: u64,
    /// Fixed per-operation disk access latency (seek + request).
    pub disk_latency: SimDuration,
    /// Periodic checkpoint cadence: completed sink objects are copied
    /// to disk at the next multiple of this interval. `None` disables
    /// checkpointing (recovery then relies on lineage alone).
    pub checkpoint_interval: Option<SimDuration>,
    /// Attempt restore-from-checkpoint, then recompute-via-lineage,
    /// before surfacing `ProducerFailed` for objects lost to hardware
    /// death.
    pub recovery: bool,
    /// Recovery attempts per object before the failure becomes terminal.
    pub max_recovery_attempts: u32,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            dram_per_host: 64 << 30,
            hbm_dram_bw: 16_000_000_000,
            dram_disk_bw: 2_000_000_000,
            disk_latency: SimDuration::from_micros(200),
            checkpoint_interval: Some(SimDuration::from_micros(500)),
            recovery: true,
            max_recovery_attempts: 2,
        }
    }
}

impl TierConfig {
    /// Virtual time to move `bytes` between HBM and host DRAM.
    pub fn hbm_dram_time(&self, bytes: u64) -> SimDuration {
        xfer_time(bytes, self.hbm_dram_bw)
    }

    /// Virtual time to move `bytes` between DRAM and disk (one disk
    /// latency plus the bandwidth term).
    pub fn disk_time(&self, bytes: u64) -> SimDuration {
        self.disk_latency + xfer_time(bytes, self.dram_disk_bw)
    }
}

/// One tier transition of one shard — spills, disk demotions, restores
/// and recompute materializations all log these (the store's
/// [`spill_events`](crate::ObjectStore::spill_events)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// The logical object.
    pub object: ObjectId,
    /// The shard that moved.
    pub shard: u32,
    /// Shard size.
    pub bytes: u64,
    /// Tier the bytes left.
    pub from: Tier,
    /// Tier the bytes landed in.
    pub to: Tier,
    /// Host whose DRAM is involved (accounting key for DRAM legs).
    pub host: HostId,
}

impl fmt::Display for SpillEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} {}B {}->{} ({})",
            self.object, self.shard, self.bytes, self.from, self.to, self.host
        )
    }
}

/// Duration of moving `bytes` at `bw` bytes/sec (u128 intermediate so
/// multi-GiB shards cannot overflow).
pub(crate) fn xfer_time(bytes: u64, bw: u64) -> SimDuration {
    let ns = (u128::from(bytes) * 1_000_000_000) / u128::from(bw.max(1));
    SimDuration::from_nanos(ns.min(u128::from(u64::MAX)) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TierConfig::default();
        assert!(c.dram_per_host > 0 && c.hbm_dram_bw > c.dram_disk_bw);
        assert!(c.recovery && c.max_recovery_attempts >= 1);
    }

    #[test]
    fn transfer_times_scale_with_bytes() {
        let c = TierConfig::default();
        assert_eq!(xfer_time(0, c.hbm_dram_bw), SimDuration::ZERO);
        assert_eq!(
            xfer_time(c.hbm_dram_bw, c.hbm_dram_bw),
            SimDuration::from_nanos(1_000_000_000)
        );
        // Disk ops always pay the fixed latency.
        assert!(c.disk_time(0) >= c.disk_latency);
        // No overflow at warehouse sizes.
        let big = xfer_time(u64::MAX, 1);
        assert!(big > SimDuration::ZERO);
    }
}
