//! The sharded object store (§4.2, §4.6), now tiered.
//!
//! Each host manages buffers held in the HBM of its attached devices
//! (and transient staging in host DRAM). Client code refers to *logical*
//! sharded buffers by opaque [`ObjectId`]s; reference counting happens at
//! logical-buffer granularity — one count per object, not per shard — so
//! client bookkeeping stays O(objects) at thousands of shards, the
//! scaling fix §4.2 describes. Objects are tagged with an owner so they
//! can be garbage-collected if a client or program fails, and HBM
//! reservations go through [`HbmPool`](pathways_device::HbmPool), whose
//! back-pressure stalls computations that cannot allocate (§4.6).
//!
//! Per-shard *readiness events* exist from the moment an object is
//! [`declared`](ObjectStore::declare) — before any kernel has been
//! granted, let alone produced data. This is what lets a dependent
//! program be dispatched while its inputs are still futures: everything
//! control-plane proceeds eagerly, and only the consuming kernel gates
//! on the producer's per-shard events (§4.5's parallel asynchronous
//! dispatch, extended across programs).
//!
//! # Storage tiers
//!
//! With a [`TierConfig`] installed
//! ([`ObjectStore::with_tiers`], wired through
//! [`PathwaysConfig::tiers`](crate::PathwaysConfig::tiers)), shards live
//! in a three-level hierarchy:
//!
//! ```text
//!   HBM (per device) --spill (LRU, under pressure)--> DRAM (per host)
//!   DRAM (per host)  --demote (capacity overflow)---> disk (cluster)
//!   disk --------restore (checkpoint recovery)------> DRAM
//! ```
//!
//! Spills pick the least-recently-used *ready* shard on the pressured
//! device (deterministic: ties break on object id then shard) and model
//! the staging copy as a virtual-time sleep at the configured
//! bandwidth. Completed objects with lineage are periodically
//! checkpointed to disk on the timer wheel. All transitions land in the
//! [`SpillEvent`] log and on the `tiers` trace track, and the per-tier
//! byte ledgers are recomputable from the object table
//! ([`ObjectStore::tiers_conserved`]) — drift is a hard invariant
//! violation, never masked.
//!
//! The recovery machinery (absorbing hardware loss through checkpoint
//! restore or lineage recompute instead of a terminal
//! [`ObjectError::ProducerFailed`]) lives in [`crate::recover`]; the
//! store contributes the `recovering` entry state that consumers
//! transparently wait through.

use pathways_sim::Lock;
use std::fmt;
use std::sync::Arc;

use pathways_device::{DeviceHandle, HbmLease};
use pathways_net::{ClientId, DeviceId, FxHashMap, HostId, IslandId, Topology};
use pathways_plaque::RunId;
use pathways_sim::sync::Event;
use pathways_sim::{SimHandle, SimTime};

use crate::program::CompId;
use crate::recover::LineageRecord;
use crate::tier::{SpillEvent, Tier, TierConfig};

/// Opaque handle to a logical (sharded) buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// The run that produced the object.
    pub run: RunId,
    /// The computation that produced it.
    pub comp: CompId,
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj({},{})", self.run, self.comp)
    }
}

/// Typed store errors. Racing failure-GC means a client can hold a
/// handle to an object the store has already reclaimed; those paths
/// return errors instead of aborting the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The object is not (or no longer) in the store — typically it was
    /// garbage-collected after its owner failed, or its refcount already
    /// reached zero.
    UnknownObject(ObjectId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownObject(id) => write!(f, "unknown object {id}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Why a producer failed (the failure-propagation vocabulary shared by
/// the store, the fault injector and client-visible [`ObjectError`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The device holding (or assigned to produce) a shard died.
    Device(DeviceId),
    /// A host died — its devices, executor and any scheduler on it are
    /// gone.
    Host(HostId),
    /// The island's scheduler host died; nothing on the island can be
    /// granted anymore.
    Island(IslandId),
    /// A severed DCN link partitioned the run's control plane.
    Link(HostId, HostId),
    /// The owning client failed; its objects were garbage-collected.
    Client(ClientId),
    /// An upstream object this run consumed had itself failed.
    Upstream(ObjectId),
    /// The object was reclaimed (failure-GC) before the cause could be
    /// recorded — observed through a stale handle.
    OwnerGone,
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::Device(d) => write!(f, "{d} failed"),
            FailureReason::Host(h) => write!(f, "{h} failed"),
            FailureReason::Island(i) => write!(f, "{i} lost its scheduler"),
            FailureReason::Link(a, b) => write!(f, "link {a}<->{b} severed"),
            FailureReason::Client(c) => write!(f, "{c} failed"),
            FailureReason::Upstream(o) => write!(f, "upstream {o} failed"),
            FailureReason::OwnerGone => write!(f, "owner was garbage-collected"),
        }
    }
}

/// Error delivered through an [`ObjectRef`](crate::ObjectRef) whose
/// producer can no longer supply the data: instead of blocking forever,
/// `ready`/`get` resolve to this (§4.3's "delivering errors on
/// failures"). With recovery enabled this is the *last* resort — the
/// error surfaces only after checkpoint restore and lineage recompute
/// both failed (or were exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectError {
    /// The producing run (or the hardware its data lived on) failed.
    ProducerFailed {
        /// The object that will never (fully) materialize.
        object: ObjectId,
        /// What went wrong.
        reason: FailureReason,
    },
}

impl ObjectError {
    /// The object the error is about.
    pub fn object(&self) -> ObjectId {
        match self {
            ObjectError::ProducerFailed { object, .. } => *object,
        }
    }

    /// The underlying failure reason.
    pub fn reason(&self) -> FailureReason {
        match self {
            ObjectError::ProducerFailed { reason, .. } => *reason,
        }
    }
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::ProducerFailed { object, reason } => {
                write!(f, "producer of {object} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

/// One shard of a stored object. In the untiered store it is always
/// pinned in a device's HBM; with tiers it may have been spilled to its
/// host's DRAM or demoted to disk (the HBM lease is then gone).
pub struct StoredShard {
    device: DeviceId,
    bytes: u64,
    /// Held only while the shard occupies HBM.
    lease: Option<HbmLease>,
    ready: Event,
    tier: Tier,
    /// The host whose DRAM holds the shard (DRAM tier only).
    host: Option<HostId>,
    /// LRU clock tick of the last access (spill-victim ordering).
    last_access: u64,
}

impl fmt::Debug for StoredShard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoredShard")
            .field("device", &self.device)
            .field("bytes", &self.bytes)
            .field("tier", &self.tier)
            .field("ready", &self.ready.is_set())
            .finish()
    }
}

impl StoredShard {
    /// Device holding the shard (for non-HBM tiers: the device the
    /// shard's reads are staged through).
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Shard size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Readiness event: set when the producing kernel finished.
    pub fn ready(&self) -> &Event {
        &self.ready
    }

    /// The storage tier the shard's bytes currently live in.
    pub fn tier(&self) -> Tier {
        self.tier
    }
}

/// Disk copy of a completed object (periodic checkpoint): enough to
/// rematerialize every shard after the live copies died with their
/// hardware.
#[derive(Debug, Clone)]
struct Checkpoint {
    /// `(shard, bytes)` in ascending shard order.
    shards: Vec<(u32, u64)>,
    total: u64,
}

struct ObjectEntry {
    owner: ClientId,
    /// Logical-buffer refcount (not per shard).
    refcount: u32,
    /// Per-shard readiness events. Populated eagerly by
    /// [`ObjectStore::declare`] (so consumers can gate on shards that do
    /// not exist yet) or lazily by [`ObjectStore::put_shard`].
    ready: FxHashMap<u32, Event>,
    shards: FxHashMap<u32, StoredShard>,
    /// Set when the producer failed terminally: shards are dropped (HBM
    /// freed), readiness events fire, and consumers observe the error
    /// instead of stale data. The entry itself lives until its refcount
    /// drains.
    error: Option<ObjectError>,
    /// Set while a restore/recompute is rebuilding the object's shards
    /// after hardware loss; consumers wait on it instead of observing a
    /// transient gap. Fired (and cleared) when recovery completes or
    /// fails terminally.
    recovering: Option<Event>,
    /// Disk checkpoint, if one has been taken.
    checkpoint: Option<Checkpoint>,
    /// How to recompute the object: the producing program and its bound
    /// inputs (which the record retains). Sink objects only.
    lineage: Option<Arc<LineageRecord>>,
}

impl ObjectEntry {
    fn new(owner: ClientId) -> Self {
        ObjectEntry {
            owner,
            refcount: 1,
            ready: FxHashMap::default(),
            shards: FxHashMap::default(),
            error: None,
            recovering: None,
            checkpoint: None,
            lineage: None,
        }
    }

    /// Fully produced, healthy, lineage-bearing, not yet checkpointed —
    /// the precondition for scheduling a disk checkpoint.
    fn checkpoint_candidate(&self) -> bool {
        self.error.is_none()
            && self.recovering.is_none()
            && self.checkpoint.is_none()
            && self.lineage.is_some()
            && !self.ready.is_empty()
            && self.ready.values().all(Event::is_set)
            && self.shards.len() == self.ready.len()
    }
}

/// Counters over all tier transitions so far (monotonic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// HBM → DRAM spills under HBM pressure.
    pub spills: u64,
    /// DRAM → disk demotions under DRAM pressure.
    pub demotions: u64,
    /// Disk checkpoints committed.
    pub checkpoints: u64,
    /// Objects rematerialized from a checkpoint.
    pub restores: u64,
    /// Objects rematerialized by lineage recompute.
    pub recomputes: u64,
}

/// Tier machinery state, present only on tiered stores.
struct TierState {
    cfg: TierConfig,
    handle: SimHandle,
    topo: Arc<Topology>,
    /// LRU clock: bumped on every shard store/read.
    clock: u64,
    /// DRAM byte ledger per host (recomputable from the object table;
    /// see [`ObjectStore::tiers_conserved`]).
    dram_used: FxHashMap<HostId, u64>,
    /// Disk byte ledger: demoted shards plus checkpoint copies.
    disk_used: u64,
    log: Vec<SpillEvent>,
    stats: TierStats,
}

/// Subtracts from a tier byte ledger, treating underflow as a hard
/// invariant violation (the "no masking" accounting contract).
fn ledger_sub(ledger: &mut u64, bytes: u64, what: &str) {
    assert!(
        *ledger >= bytes,
        "{what} ledger underflow: accounting drift ({} < {bytes})",
        *ledger
    );
    *ledger -= bytes;
}

/// The object table plus the indexes failure fan-out walks: which
/// objects each client owns (failure-GC), which objects have a shard
/// pinned on each device (hardware death), and which objects have a
/// shard spilled to each host's DRAM (host death). The per-key lists are
/// plain `Vec`s — maintenance runs once per object/shard on the
/// steady-state path, so it uses O(1) pushes and swap-removes (no tree
/// nodes), and the rare blast-radius queries sort their snapshot
/// instead. Empty lists stay in the map on purpose: their capacity is
/// reused by the next object on the same key, so a steady-state step
/// allocates nothing here.
#[derive(Default)]
struct StoreInner {
    objects: FxHashMap<ObjectId, ObjectEntry>,
    by_owner: FxHashMap<ClientId, Vec<ObjectId>>,
    by_device: FxHashMap<DeviceId, Vec<ObjectId>>,
    by_dram_host: FxHashMap<HostId, Vec<ObjectId>>,
    tier: Option<TierState>,
}

/// Removes one occurrence of `id` (pushes and removals are 1:1).
fn unindex(list: &mut Vec<ObjectId>, id: ObjectId) {
    if let Some(pos) = list.iter().position(|x| *x == id) {
        list.swap_remove(pos);
    }
}

impl StoreInner {
    /// Unthreads one shard from the index and byte ledger of the tier it
    /// occupies (the shard is leaving the store, or leaving that tier).
    fn untier_shard(&mut self, id: ObjectId, shard: &StoredShard) {
        match shard.tier {
            Tier::Hbm => {
                if let Some(objs) = self.by_device.get_mut(&shard.device) {
                    unindex(objs, id);
                }
            }
            Tier::Dram => {
                if let Some(host) = shard.host {
                    if let Some(objs) = self.by_dram_host.get_mut(&host) {
                        unindex(objs, id);
                    }
                    if let Some(ts) = self.tier.as_mut() {
                        let used = ts.dram_used.entry(host).or_default();
                        ledger_sub(used, shard.bytes, "host-DRAM");
                    }
                }
            }
            Tier::Disk => {
                if let Some(ts) = self.tier.as_mut() {
                    ledger_sub(&mut ts.disk_used, shard.bytes, "disk");
                }
            }
        }
    }

    /// Removes an object and unthreads it from every index and ledger.
    /// An in-flight recovery is released (its waiters unblock; the
    /// recovery task observes the missing entry and abandons).
    fn remove_object(&mut self, id: ObjectId) -> Option<ObjectEntry> {
        let entry = self.objects.remove(&id)?;
        if let Some(owned) = self.by_owner.get_mut(&entry.owner) {
            unindex(owned, id);
        }
        for shard in entry.shards.values() {
            self.untier_shard(id, shard);
        }
        if let Some(ckpt) = &entry.checkpoint {
            if let Some(ts) = self.tier.as_mut() {
                ledger_sub(&mut ts.disk_used, ckpt.total, "disk");
            }
        }
        if let Some(rec) = &entry.recovering {
            rec.set();
        }
        Some(entry)
    }
}

/// The cluster-wide sharded object store.
///
/// One instance is shared by all host executors in the simulation (each
/// host only ever touches shards of its local devices; the shared map
/// models the per-host stores plus the client's logical handle table).
#[derive(Clone)]
pub struct ObjectStore {
    inner: Arc<Lock<StoreInner>>,
}

impl Default for ObjectStore {
    fn default() -> Self {
        ObjectStore {
            // Named: the store is the controller's most shared structure
            // and the first suspect in any threaded contention profile.
            inner: Arc::new(Lock::named("core.store", StoreInner::default())),
        }
    }
}

impl fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectStore")
            .field("objects", &self.inner.lock().objects.len())
            .field("tiered", &self.inner.lock().tier.is_some())
            .finish()
    }
}

impl ObjectStore {
    /// Creates an empty single-tier (HBM-only) store: no spill, no
    /// checkpoints, `ProducerFailed` terminal — the seed semantics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty *tiered* store: HBM pressure spills
    /// least-recently-used ready shards to host DRAM (cascading to disk
    /// under DRAM pressure), and completed lineage-bearing objects are
    /// periodically checkpointed to disk on the timer wheel.
    pub fn with_tiers(handle: SimHandle, topo: Arc<Topology>, cfg: TierConfig) -> Self {
        let store = Self::default();
        store.inner.lock().tier = Some(TierState {
            cfg,
            handle,
            topo,
            clock: 0,
            dram_used: FxHashMap::default(),
            disk_used: 0,
            log: Vec::new(),
            stats: TierStats::default(),
        });
        store
    }

    /// Registers an object owned by `owner` with refcount 1. Idempotent
    /// per object: shards are added with [`ObjectStore::put_shard`].
    pub fn create(&self, id: ObjectId, owner: ClientId) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.objects.entry(id).or_insert_with(|| {
            inner.by_owner.entry(owner).or_default().push(id);
            ObjectEntry::new(owner)
        });
    }

    /// Declares an object with `shards` shards *before it is produced*,
    /// eagerly creating one readiness event per shard, and returns those
    /// events in shard order.
    ///
    /// Idempotent like [`ObjectStore::create`]: only the *first* call
    /// for an id installs the entry, and its initial refcount of 1
    /// belongs to that caller (the client's `ObjectRef`). A repeat call
    /// takes **no** additional reference — it merely fills in and
    /// returns the shard events — so a second independent handle must
    /// [`retain`](ObjectStore::retain) explicitly.
    pub fn declare(&self, id: ObjectId, owner: ClientId, shards: u32) -> Vec<Event> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let entry = inner.objects.entry(id).or_insert_with(|| {
            inner.by_owner.entry(owner).or_default().push(id);
            ObjectEntry::new(owner)
        });
        (0..shards)
            .map(|s| entry.ready.entry(s).or_default().clone())
            .collect()
    }

    /// Reserves HBM on `device` for shard `shard` of `id` and records it.
    /// On a tiered store, HBM pressure first spills LRU ready shards to
    /// the host's DRAM; only if nothing is spillable does the put await
    /// classic back-pressure.
    ///
    /// If the object is unknown — its last reference was dropped or its
    /// owner was garbage-collected while the producing run was still in
    /// flight — the output is discarded: nothing is pinned and a fresh,
    /// never-set event is returned.
    ///
    /// # Panics
    ///
    /// Panics if the shard already exists (untiered store; a tiered
    /// store treats the duplicate as a stale write racing recovery and
    /// discards it).
    pub async fn put_shard(
        &self,
        id: ObjectId,
        shard: u32,
        device: &DeviceHandle,
        bytes: u64,
    ) -> Event {
        {
            let inner = self.inner.lock();
            match inner.objects.get(&id) {
                None => return Event::new(),
                // A failed object's output is discarded: its events are
                // already set, nothing gets pinned.
                Some(e) if e.error.is_some() => {
                    let ev = Event::new();
                    ev.set();
                    return ev;
                }
                Some(_) => {}
            }
        }
        // Tiered stores relieve HBM pressure by spilling before the
        // allocation can stall; both happen outside the store borrow.
        self.ensure_room(device, bytes).await;
        let lease = device.hbm().allocate(bytes).await;
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let Some(entry) = inner.objects.get_mut(&id) else {
            // Released while we waited on back-pressure: discard.
            return Event::new();
        };
        if entry.error.is_some() {
            // Failed while we waited on back-pressure: discard.
            let ev = Event::new();
            ev.set();
            return ev;
        }
        if inner.tier.is_some() && (entry.recovering.is_some() || entry.shards.contains_key(&shard))
        {
            // Recovery owns this object's shards now (or already
            // rematerialized this one): the late write from the aborted
            // production is discarded, the lease returns.
            return entry.ready.entry(shard).or_default().clone();
        }
        let ready = entry.ready.entry(shard).or_insert_with(Event::new).clone();
        let last_access = match inner.tier.as_mut() {
            Some(ts) => {
                ts.clock += 1;
                ts.clock
            }
            None => 0,
        };
        let prev = entry.shards.insert(
            shard,
            StoredShard {
                device: device.id(),
                bytes,
                lease: Some(lease),
                ready: ready.clone(),
                tier: Tier::Hbm,
                host: None,
                last_access,
            },
        );
        assert!(prev.is_none(), "{id} shard {shard} stored twice");
        inner.by_device.entry(device.id()).or_default().push(id);
        ready
    }

    /// Marks shard `shard` of `id` ready (producing kernel finished).
    /// On a tiered store with checkpointing, the mark that completes the
    /// object schedules its disk checkpoint at the next interval
    /// boundary on the timer wheel.
    ///
    /// Late marks on released objects are ignored — the consumer is gone.
    pub fn mark_ready(&self, id: ObjectId, shard: u32) {
        let schedule_checkpoint = {
            let inner = self.inner.lock();
            let Some(entry) = inner.objects.get(&id) else {
                return;
            };
            if let Some(ev) = entry.ready.get(&shard) {
                ev.set();
            }
            matches!(
                inner.tier.as_ref(),
                Some(ts) if ts.cfg.checkpoint_interval.is_some()
            ) && entry.checkpoint_candidate()
        };
        if schedule_checkpoint {
            self.spawn_checkpoint(id);
        }
    }

    /// Readiness event of a shard, if the object (and its declared or
    /// stored shard) is present.
    pub fn shard_ready(&self, id: ObjectId, shard: u32) -> Option<Event> {
        self.inner
            .lock()
            .objects
            .get(&id)
            .and_then(|e| e.ready.get(&shard).cloned())
    }

    /// Increments the logical refcount.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownObject`] if the object is gone — e.g.
    /// an `ObjectRef` clone racing a client-failure GC. Callers that can
    /// tolerate the race (handle duplication) treat this as a no-op.
    pub fn retain(&self, id: ObjectId) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        match inner.objects.get_mut(&id) {
            Some(entry) => {
                entry.refcount += 1;
                Ok(())
            }
            None => Err(StoreError::UnknownObject(id)),
        }
    }

    /// Decrements the logical refcount, freeing all shards (their HBM
    /// leases drop, tier ledgers uncharge) when it reaches zero. A
    /// release of an unknown object is a no-op (the GC got there first).
    pub fn release(&self, id: ObjectId) {
        // The entry's lineage record (if any) holds ObjectRefs whose own
        // drops re-enter the store; it must outlive the borrow.
        let _deferred = {
            let mut inner = self.inner.lock();
            let Some(entry) = inner.objects.get_mut(&id) else {
                return;
            };
            entry.refcount -= 1;
            if entry.refcount == 0 {
                let mut removed = inner.remove_object(id);
                // HBM leases return inside the borrow (seed ordering);
                // only the re-entrant lineage drop is deferred.
                if let Some(entry) = removed.as_mut() {
                    entry.shards.clear();
                }
                removed
            } else {
                None
            }
        };
    }

    /// Frees every object owned by `client`, regardless of refcount —
    /// the failure-GC path: "objects are tagged with ownership labels so
    /// that they can be garbage collected if a program or client fails".
    ///
    /// Readiness events of reclaimed objects are fired so that consumers
    /// already gated on them unblock (they observe the producer as done;
    /// cross-client failure containment is the consumer's problem) and
    /// the simulation stays quiescent-able.
    pub fn gc_client(&self, client: ClientId) -> usize {
        // Lineage records drop after the borrow ends (their ObjectRefs
        // re-enter the store); leases and events keep the seed ordering.
        let deferred: Vec<ObjectEntry> = {
            let mut inner = self.inner.lock();
            let mut doomed: Vec<ObjectId> = inner
                .by_owner
                .get(&client)
                .map(|owned| owned.to_vec())
                .unwrap_or_default();
            // Swap-removes scramble the list; restore the ascending id
            // order deterministic fault replay relies on.
            doomed.sort_unstable();
            doomed
                .into_iter()
                .filter_map(|id| {
                    let mut entry = inner.remove_object(id)?;
                    for ev in entry.ready.values() {
                        ev.set();
                    }
                    entry.shards.clear();
                    Some(entry)
                })
                .collect()
        };
        deferred.len()
    }

    /// Marks `id` failed with `reason`: its shards are dropped (HBM
    /// leases return, tier ledgers uncharge), its checkpoint and lineage
    /// are discarded, its readiness events fire so gated consumers
    /// unblock, and [`ObjectStore::object_error`] reports the error from
    /// now on. The entry itself survives until its refcount drains, so
    /// live `ObjectRef`s resolve to the typed error rather than stale
    /// data. The first failure reason wins. Returns false for unknown
    /// objects.
    ///
    /// With recovery enabled this is the *terminal* verdict — the fault
    /// injector routes hardware loss through the recovery manager first
    /// and only calls this when recovery is impossible or exhausted.
    pub fn fail_object(&self, id: ObjectId, reason: FailureReason) -> bool {
        let _deferred = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let (shards, checkpoint, lineage) = {
                let Some(entry) = inner.objects.get_mut(&id) else {
                    return false;
                };
                if entry.error.is_none() {
                    entry.error = Some(ObjectError::ProducerFailed { object: id, reason });
                }
                let shards: Vec<StoredShard> = entry.shards.drain().map(|(_, s)| s).collect();
                let checkpoint = entry.checkpoint.take();
                let lineage = entry.lineage.take();
                if let Some(rec) = entry.recovering.take() {
                    rec.set();
                }
                for ev in entry.ready.values() {
                    ev.set();
                }
                (shards, checkpoint, lineage)
            };
            for shard in &shards {
                inner.untier_shard(id, shard);
            }
            if let Some(ckpt) = &checkpoint {
                if let Some(ts) = inner.tier.as_mut() {
                    ledger_sub(&mut ts.disk_used, ckpt.total, "disk");
                }
            }
            // Leases return here, inside the borrow (seed ordering);
            // the lineage's ObjectRefs drop after it ends.
            drop(shards);
            lineage
        };
        true
    }

    /// The recorded failure of `id`, if any. An object missing from the
    /// store while someone still holds a handle to it was reclaimed by a
    /// failure-GC; that is reported as [`FailureReason::OwnerGone`].
    pub fn object_error(&self, id: ObjectId) -> Option<ObjectError> {
        match self.inner.lock().objects.get(&id) {
            Some(entry) => entry.error,
            None => Some(ObjectError::ProducerFailed {
                object: id,
                reason: FailureReason::OwnerGone,
            }),
        }
    }

    /// True if the store still holds an entry for `id`.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.inner.lock().objects.contains_key(&id)
    }

    /// The owner of `id`, if it is still in the store.
    pub fn owner_of(&self, id: ObjectId) -> Option<ClientId> {
        self.inner.lock().objects.get(&id).map(|e| e.owner)
    }

    /// Ids of all objects with a live HBM shard on `device`, ascending
    /// and deduplicated — the deterministic blast-radius snapshot.
    pub(crate) fn objects_on_device(&self, device: DeviceId) -> Vec<ObjectId> {
        // The device index holds exactly the objects with a live HBM
        // shard here (failed/spilled shards were unindexed when they
        // left) — one occurrence per shard, so objects with several
        // shards on this device are deduplicated along with the
        // determinism sort.
        let mut ids: Vec<ObjectId> = self
            .inner
            .lock()
            .by_device
            .get(&device)
            .map(|objs| objs.to_vec())
            .unwrap_or_default();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Ids of all objects with a shard spilled to `host`'s DRAM,
    /// ascending and deduplicated (host-death blast radius).
    pub(crate) fn objects_with_dram_on(&self, host: HostId) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self
            .inner
            .lock()
            .by_dram_host
            .get(&host)
            .map(|objs| objs.to_vec())
            .unwrap_or_default();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Fails every object with a shard pinned on `device` (the data is
    /// gone with the hardware). Returns the failed ids in ascending
    /// order — deterministic, so fault injection replays identically.
    pub fn fail_objects_on_device(&self, device: DeviceId, reason: FailureReason) -> Vec<ObjectId> {
        let doomed = self.objects_on_device(device);
        for id in &doomed {
            self.fail_object(*id, reason);
        }
        doomed
    }

    /// Ids of all live objects owned by `client`, in ascending order.
    pub fn objects_owned_by(&self, client: ClientId) -> Vec<ObjectId> {
        let mut owned: Vec<ObjectId> = self
            .inner
            .lock()
            .by_owner
            .get(&client)
            .map(|owned| owned.to_vec())
            .unwrap_or_default();
        owned.sort_unstable();
        owned
    }

    /// Number of live logical objects.
    pub fn len(&self) -> usize {
        self.inner.lock().objects.len()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().objects.is_empty()
    }

    /// Total bytes held across all shards of `id` (every tier).
    pub fn object_bytes(&self, id: ObjectId) -> u64 {
        self.inner
            .lock()
            .objects
            .get(&id)
            .map(|e| e.shards.values().map(|s| s.bytes).sum())
            .unwrap_or(0)
    }

    // -----------------------------------------------------------------
    // Tier machinery
    // -----------------------------------------------------------------

    /// The tier config, sim handle and topology, if this store is
    /// tiered.
    fn tier_env(&self) -> Option<(SimHandle, Arc<Topology>, TierConfig)> {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| (ts.handle.clone(), Arc::clone(&ts.topo), ts.cfg.clone()))
    }

    /// True if this store records lineage and recovers lost objects
    /// (tiered with `recovery` on). Gates the client's lineage
    /// registration so untiered runs keep seed-identical refcounts.
    pub fn lineage_enabled(&self) -> bool {
        self.inner
            .lock()
            .tier
            .as_ref()
            .is_some_and(|ts| ts.cfg.recovery)
    }

    /// Frees HBM on `device` until `bytes` fit (or nothing ready is
    /// left to spill), by moving least-recently-used ready shards to the
    /// host's DRAM at the configured staging bandwidth — cascading to
    /// disk when the DRAM budget overflows. No-op on untiered stores;
    /// callers then rely on classic HBM back-pressure.
    pub async fn ensure_room(&self, device: &DeviceHandle, bytes: u64) {
        let Some((handle, topo, cfg)) = self.tier_env() else {
            return;
        };
        let d = device.id();
        let host = topo.host_of_device(d);
        loop {
            if device.hbm().free() >= bytes {
                return;
            }
            // LRU victim among ready HBM shards on this device; ties
            // break on (object, shard) so replay is order-independent.
            let victim = {
                let inner = self.inner.lock();
                let mut best: Option<(u64, ObjectId, u32, u64)> = None;
                if let Some(ids) = inner.by_device.get(&d) {
                    for &oid in ids {
                        let Some(entry) = inner.objects.get(&oid) else {
                            continue;
                        };
                        for (s, sh) in &entry.shards {
                            if sh.tier == Tier::Hbm && sh.device == d && sh.ready.is_set() {
                                let key = (sh.last_access, oid, *s, sh.bytes);
                                if best.is_none_or(|b| (key.0, key.1, key.2) < (b.0, b.1, b.2)) {
                                    best = Some(key);
                                }
                            }
                        }
                    }
                }
                best
            };
            let Some((_, vid, vshard, vbytes)) = victim else {
                // Nothing spillable (all HBM residents are unready or
                // transient staging): fall back to back-pressure.
                return;
            };
            let t0 = handle.now();
            handle.sleep(cfg.hbm_dram_time(vbytes)).await;
            // Revalidate after the staging copy: the shard may have been
            // freed, failed, or spilled by a concurrent caller.
            let (committed, lease) = {
                let mut inner = self.inner.lock();
                let inner = &mut *inner;
                let mut lease = None;
                let mut ok = false;
                if let Some(entry) = inner.objects.get_mut(&vid) {
                    if let Some(sh) = entry.shards.get_mut(&vshard) {
                        if sh.tier == Tier::Hbm && sh.device == d && sh.ready.is_set() {
                            sh.tier = Tier::Dram;
                            sh.host = Some(host);
                            lease = sh.lease.take();
                            ok = true;
                        }
                    }
                }
                if ok {
                    if let Some(objs) = inner.by_device.get_mut(&d) {
                        unindex(objs, vid);
                    }
                    inner.by_dram_host.entry(host).or_default().push(vid);
                    if let Some(ts) = inner.tier.as_mut() {
                        *ts.dram_used.entry(host).or_default() += vbytes;
                        ts.stats.spills += 1;
                        ts.log.push(SpillEvent {
                            at: ts.handle.now(),
                            object: vid,
                            shard: vshard,
                            bytes: vbytes,
                            from: Tier::Hbm,
                            to: Tier::Dram,
                            host,
                        });
                    }
                }
                (ok, lease)
            };
            drop(lease); // HBM returns outside the store borrow
            if committed {
                handle.trace_span("tiers", format!("spill {vid}#{vshard}"), t0, handle.now());
                self.drain_dram(host).await;
            }
        }
    }

    /// Demotes oldest DRAM shards on `host` to disk until the host is
    /// back under its DRAM budget.
    async fn drain_dram(&self, host: HostId) {
        let Some((handle, _topo, cfg)) = self.tier_env() else {
            return;
        };
        loop {
            let victim = {
                let inner = self.inner.lock();
                let Some(ts) = inner.tier.as_ref() else {
                    return;
                };
                if ts.dram_used.get(&host).copied().unwrap_or(0) <= ts.cfg.dram_per_host {
                    return;
                }
                let mut best: Option<(u64, ObjectId, u32, u64)> = None;
                if let Some(ids) = inner.by_dram_host.get(&host) {
                    for &oid in ids {
                        let Some(entry) = inner.objects.get(&oid) else {
                            continue;
                        };
                        for (s, sh) in &entry.shards {
                            if sh.tier == Tier::Dram && sh.host == Some(host) {
                                let key = (sh.last_access, oid, *s, sh.bytes);
                                if best.is_none_or(|b| (key.0, key.1, key.2) < (b.0, b.1, b.2)) {
                                    best = Some(key);
                                }
                            }
                        }
                    }
                }
                best
            };
            let Some((_, vid, vshard, vbytes)) = victim else {
                return;
            };
            let t0 = handle.now();
            handle.sleep(cfg.disk_time(vbytes)).await;
            let committed = {
                let mut inner = self.inner.lock();
                let inner = &mut *inner;
                let mut ok = false;
                if let Some(entry) = inner.objects.get_mut(&vid) {
                    if let Some(sh) = entry.shards.get_mut(&vshard) {
                        if sh.tier == Tier::Dram && sh.host == Some(host) {
                            sh.tier = Tier::Disk;
                            sh.host = None;
                            ok = true;
                        }
                    }
                }
                if ok {
                    if let Some(objs) = inner.by_dram_host.get_mut(&host) {
                        unindex(objs, vid);
                    }
                    if let Some(ts) = inner.tier.as_mut() {
                        let used = ts.dram_used.entry(host).or_default();
                        ledger_sub(used, vbytes, "host-DRAM");
                        ts.disk_used += vbytes;
                        ts.stats.demotions += 1;
                        ts.log.push(SpillEvent {
                            at: ts.handle.now(),
                            object: vid,
                            shard: vshard,
                            bytes: vbytes,
                            from: Tier::Dram,
                            to: Tier::Disk,
                            host,
                        });
                    }
                }
                ok
            };
            if committed {
                handle.trace_span("tiers", format!("demote {vid}#{vshard}"), t0, handle.now());
            }
        }
    }

    /// Resolves shard `shard` of `id` for a consuming transfer: bumps
    /// the LRU clock and returns the device the read stages through plus
    /// the staging penalty for non-HBM tiers (DRAM: one PCIe-class copy;
    /// disk: latency + bandwidth). `None` on untiered stores (the seed
    /// data path is then byte-identical) and for absent shards.
    pub fn read_shard(
        &self,
        id: ObjectId,
        shard: u32,
    ) -> Option<(DeviceId, pathways_sim::SimDuration)> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let ts = inner.tier.as_mut()?;
        let entry = inner.objects.get_mut(&id)?;
        let sh = entry.shards.get_mut(&shard)?;
        ts.clock += 1;
        sh.last_access = ts.clock;
        let penalty = match sh.tier {
            Tier::Hbm => pathways_sim::SimDuration::ZERO,
            Tier::Dram => ts.cfg.hbm_dram_time(sh.bytes),
            Tier::Disk => ts.cfg.disk_time(sh.bytes),
        };
        Some((sh.device, penalty))
    }

    /// The in-flight recovery gate of `id`, if a restore/recompute is
    /// rebuilding it. Consumers loop-wait on this before trusting
    /// [`ObjectStore::object_error`]; it fires when recovery completes
    /// (shards back, no error) or fails terminally (error recorded).
    pub fn recovering(&self, id: ObjectId) -> Option<Event> {
        self.inner
            .lock()
            .objects
            .get(&id)
            .and_then(|e| e.recovering.clone())
    }

    // -----------------------------------------------------------------
    // Checkpoints
    // -----------------------------------------------------------------

    /// Schedules the disk checkpoint of `id` at the next multiple of the
    /// configured interval — scripted on the timer wheel, so checkpoint
    /// instants are part of the deterministic schedule. One-shot: the
    /// task validates, copies, commits and exits (no perpetual timer, so
    /// the simulation still quiesces).
    fn spawn_checkpoint(&self, id: ObjectId) {
        let Some((handle, _topo, cfg)) = self.tier_env() else {
            return;
        };
        let Some(interval) = cfg.checkpoint_interval else {
            return;
        };
        let iv = interval.as_nanos().max(1);
        let store = self.clone();
        let h = handle.clone();
        handle.spawn(format!("ckpt-{id}"), async move {
            let next = (h.now().as_nanos() / iv + 1).saturating_mul(iv);
            h.sleep_until(SimTime::from_nanos(next)).await;
            let Some(total) = store.checkpoint_candidate(id) else {
                return;
            };
            let t0 = h.now();
            h.sleep(cfg.disk_time(total)).await;
            if store.commit_checkpoint(id).is_some() {
                h.trace_span("tiers", format!("ckpt {id}"), t0, h.now());
            }
        });
    }

    /// Bytes a checkpoint of `id` would copy, if it is (still) a
    /// candidate.
    fn checkpoint_candidate(&self, id: ObjectId) -> Option<u64> {
        let inner = self.inner.lock();
        let entry = inner.objects.get(&id)?;
        if !entry.checkpoint_candidate() {
            return None;
        }
        Some(entry.shards.values().map(|s| s.bytes).sum())
    }

    /// Commits the checkpoint: snapshots the shard layout and charges
    /// the disk ledger. Revalidates candidacy (the copy took virtual
    /// time; the object may have failed, been released, or been
    /// checkpointed by a racing task meanwhile).
    fn commit_checkpoint(&self, id: ObjectId) -> Option<u64> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let entry = inner.objects.get_mut(&id)?;
        if !entry.checkpoint_candidate() {
            return None;
        }
        let mut shards: Vec<(u32, u64)> =
            entry.shards.iter().map(|(s, sh)| (*s, sh.bytes)).collect();
        shards.sort_unstable();
        let total: u64 = shards.iter().map(|(_, b)| *b).sum();
        entry.checkpoint = Some(Checkpoint { shards, total });
        if let Some(ts) = inner.tier.as_mut() {
            ts.disk_used += total;
            ts.stats.checkpoints += 1;
        }
        Some(total)
    }

    /// True if `id` currently has a disk checkpoint.
    pub fn has_checkpoint(&self, id: ObjectId) -> bool {
        self.inner
            .lock()
            .objects
            .get(&id)
            .is_some_and(|e| e.checkpoint.is_some())
    }

    // -----------------------------------------------------------------
    // Recovery surfaces (driven by crate::recover and the fault injector)
    // -----------------------------------------------------------------

    /// Records how to recompute `id` (first writer wins; repeat submits
    /// of an already-declared sink keep the original lineage).
    pub(crate) fn set_lineage(&self, id: ObjectId, lineage: Arc<LineageRecord>) {
        if let Some(entry) = self.inner.lock().objects.get_mut(&id) {
            if entry.lineage.is_none() {
                entry.lineage = Some(lineage);
            }
        }
    }

    /// The lineage record of `id`, if one was registered.
    pub(crate) fn lineage_of(&self, id: ObjectId) -> Option<Arc<LineageRecord>> {
        self.inner
            .lock()
            .objects
            .get(&id)
            .and_then(|e| e.lineage.clone())
    }

    /// True if `id` exists, is not failed, and could be recovered:
    /// checkpoint on disk, or lineage whose inputs are themselves
    /// error-free.
    pub(crate) fn recoverable(&self, id: ObjectId) -> bool {
        let (ckpt, lineage) = {
            let inner = self.inner.lock();
            let Some(entry) = inner.objects.get(&id) else {
                return false;
            };
            if entry.error.is_some() {
                return false;
            }
            (entry.checkpoint.is_some(), entry.lineage.clone())
        };
        // The input probes re-borrow the store; they must run outside.
        ckpt || lineage.is_some_and(|l| l.bindings.iter().all(|(_, r)| r.error().is_none()))
    }

    /// Opens the recovery window on `id`: consumers wait on the returned
    /// event instead of observing the transient shard gap. `None` if the
    /// object is gone, failed, or already recovering (the first recovery
    /// owns the window).
    pub(crate) fn begin_recovery(&self, id: ObjectId) -> Option<Event> {
        let mut inner = self.inner.lock();
        let entry = inner.objects.get_mut(&id)?;
        if entry.error.is_some() || entry.recovering.is_some() {
            return None;
        }
        let ev = Event::new();
        entry.recovering = Some(ev.clone());
        Some(ev)
    }

    /// Drops the HBM shards of `id` held on `device` (lost with the
    /// hardware) *without* failing the object — the recovery-absorb
    /// path. Returns the bytes dropped.
    pub(crate) fn drop_shards_on_device(&self, id: ObjectId, device: DeviceId) -> u64 {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let taken: Vec<StoredShard> = {
            let Some(entry) = inner.objects.get_mut(&id) else {
                return 0;
            };
            let keys: Vec<u32> = entry
                .shards
                .iter()
                .filter(|(_, s)| s.tier == Tier::Hbm && s.device == device)
                .map(|(k, _)| *k)
                .collect();
            keys.into_iter()
                .filter_map(|k| entry.shards.remove(&k))
                .collect()
        };
        let mut bytes = 0;
        for sh in &taken {
            inner.untier_shard(id, sh);
            bytes += sh.bytes;
        }
        bytes
    }

    /// Drops the DRAM shards of `id` spilled to `host` (lost with the
    /// host) without failing the object. Returns the bytes dropped.
    pub(crate) fn drop_dram_on_host(&self, id: ObjectId, host: HostId) -> u64 {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let taken: Vec<StoredShard> = {
            let Some(entry) = inner.objects.get_mut(&id) else {
                return 0;
            };
            let keys: Vec<u32> = entry
                .shards
                .iter()
                .filter(|(_, s)| s.tier == Tier::Dram && s.host == Some(host))
                .map(|(k, _)| *k)
                .collect();
            keys.into_iter()
                .filter_map(|k| entry.shards.remove(&k))
                .collect()
        };
        let mut bytes = 0;
        for sh in &taken {
            inner.untier_shard(id, sh);
            bytes += sh.bytes;
        }
        bytes
    }

    /// Bytes a checkpoint restore of `id` would copy off disk, if the
    /// entry is alive, unfailed, and checkpointed.
    pub(crate) fn checkpoint_restore_size(&self, id: ObjectId) -> Option<u64> {
        let inner = self.inner.lock();
        let entry = inner.objects.get(&id)?;
        if entry.error.is_some() {
            return None;
        }
        entry.checkpoint.as_ref().map(|c| c.total)
    }

    /// Rematerializes the missing shards of `id` from its disk
    /// checkpoint into `host`'s DRAM (reads staged through `device`),
    /// fires every readiness event, and closes the recovery window. The
    /// checkpoint itself stays on disk — it remains restorable. Returns
    /// false if the entry is gone or terminally failed (the window, if
    /// any, is closed regardless).
    pub(crate) fn complete_restore(&self, id: ObjectId, device: DeviceId, host: HostId) -> bool {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let Some(entry) = inner.objects.get_mut(&id) else {
            return false;
        };
        if entry.error.is_some() {
            if let Some(rec) = entry.recovering.take() {
                rec.set();
            }
            return false;
        }
        let Some(ckpt) = entry.checkpoint.clone() else {
            return false;
        };
        let Some(ts) = inner.tier.as_mut() else {
            return false;
        };
        let at = ts.handle.now();
        for (shard, bytes) in &ckpt.shards {
            if entry.shards.contains_key(shard) {
                continue;
            }
            ts.clock += 1;
            let ready = entry.ready.entry(*shard).or_default().clone();
            entry.shards.insert(
                *shard,
                StoredShard {
                    device,
                    bytes: *bytes,
                    lease: None,
                    ready,
                    tier: Tier::Dram,
                    host: Some(host),
                    last_access: ts.clock,
                },
            );
            *ts.dram_used.entry(host).or_default() += *bytes;
            inner.by_dram_host.entry(host).or_default().push(id);
            ts.log.push(SpillEvent {
                at,
                object: id,
                shard: *shard,
                bytes: *bytes,
                from: Tier::Disk,
                to: Tier::Dram,
                host,
            });
        }
        ts.stats.restores += 1;
        for ev in entry.ready.values() {
            ev.set();
        }
        if let Some(rec) = entry.recovering.take() {
            rec.set();
        }
        true
    }

    /// Replaces the shards of `id` with freshly recomputed copies
    /// staged into DRAM (one `(shard, bytes, device, host)` per shard of
    /// the recompute run's output), fires every readiness event, and
    /// closes the recovery window. Leftover shards of the aborted
    /// original production are dropped first.
    pub(crate) fn complete_recompute(
        &self,
        id: ObjectId,
        shards: &[(u32, u64, DeviceId, HostId)],
    ) -> bool {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let old: Vec<StoredShard> = {
            let Some(entry) = inner.objects.get_mut(&id) else {
                return false;
            };
            if entry.error.is_some() {
                if let Some(rec) = entry.recovering.take() {
                    rec.set();
                }
                return false;
            }
            entry.shards.drain().map(|(_, s)| s).collect()
        };
        for sh in &old {
            inner.untier_shard(id, sh);
        }
        drop(old); // surviving leases return
        let Some(entry) = inner.objects.get_mut(&id) else {
            return false;
        };
        let Some(ts) = inner.tier.as_mut() else {
            return false;
        };
        let at = ts.handle.now();
        for (shard, bytes, device, host) in shards {
            ts.clock += 1;
            let ready = entry.ready.entry(*shard).or_default().clone();
            entry.shards.insert(
                *shard,
                StoredShard {
                    device: *device,
                    bytes: *bytes,
                    lease: None,
                    ready,
                    tier: Tier::Dram,
                    host: Some(*host),
                    last_access: ts.clock,
                },
            );
            *ts.dram_used.entry(*host).or_default() += *bytes;
            inner.by_dram_host.entry(*host).or_default().push(id);
            ts.log.push(SpillEvent {
                at,
                object: id,
                shard: *shard,
                bytes: *bytes,
                from: Tier::Hbm,
                to: Tier::Dram,
                host: *host,
            });
        }
        ts.stats.recomputes += 1;
        for ev in entry.ready.values() {
            ev.set();
        }
        if let Some(rec) = entry.recovering.take() {
            rec.set();
        }
        true
    }

    // -----------------------------------------------------------------
    // Tier observability (benches, chaos invariants, tests)
    // -----------------------------------------------------------------

    /// Monotonic tier-transition counters (all zero on untiered stores).
    pub fn tier_stats(&self) -> TierStats {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.stats)
            .unwrap_or_default()
    }

    /// Every tier transition so far, in event order.
    pub fn spill_events(&self) -> Vec<SpillEvent> {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.log.clone())
            .unwrap_or_default()
    }

    /// Total bytes currently in host DRAM across all hosts.
    pub fn dram_used(&self) -> u64 {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.dram_used.values().sum())
            .unwrap_or(0)
    }

    /// Total bytes currently on disk (demoted shards + checkpoints).
    pub fn disk_used(&self) -> u64 {
        self.inner
            .lock()
            .tier
            .as_ref()
            .map(|ts| ts.disk_used)
            .unwrap_or(0)
    }

    /// The tier shard `shard` of `id` currently lives in.
    pub fn shard_tier(&self, id: ObjectId, shard: u32) -> Option<Tier> {
        self.inner
            .lock()
            .objects
            .get(&id)
            .and_then(|e| e.shards.get(&shard))
            .map(|s| s.tier)
    }

    /// Byte conservation across tiers: recomputes the per-host DRAM and
    /// disk totals from the object table and checks them against the
    /// incremental ledgers. True on untiered stores. A `false` here
    /// means a tier transition charged and uncharged asymmetrically —
    /// the accounting-drift class of bug this PR makes un-maskable.
    pub fn tiers_conserved(&self) -> bool {
        let inner = self.inner.lock();
        let Some(ts) = inner.tier.as_ref() else {
            return true;
        };
        let mut dram: FxHashMap<HostId, u64> = FxHashMap::default();
        let mut disk = 0u64;
        for entry in inner.objects.values() {
            for sh in entry.shards.values() {
                match sh.tier {
                    Tier::Hbm => {}
                    Tier::Dram => {
                        if let Some(h) = sh.host {
                            *dram.entry(h).or_default() += sh.bytes;
                        }
                    }
                    Tier::Disk => disk += sh.bytes,
                }
            }
            if let Some(ckpt) = &entry.checkpoint {
                disk += ckpt.total;
            }
        }
        disk == ts.disk_used
            && ts
                .dram_used
                .iter()
                .all(|(h, b)| dram.get(h).copied().unwrap_or(0) == *b)
            && dram
                .iter()
                .all(|(h, b)| ts.dram_used.get(h).copied().unwrap_or(0) == *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_device::{CollectiveRendezvous, DeviceConfig};
    use pathways_net::ClusterSpec;
    use pathways_sim::{Sim, SimDuration};

    fn obj(run: u64, comp: u32) -> ObjectId {
        ObjectId {
            run: RunId(run),
            comp: CompId(comp),
        }
    }

    fn device(sim: &Sim, id: u32, hbm: u64) -> DeviceHandle {
        DeviceHandle::spawn(
            &sim.handle(),
            DeviceId(id),
            CollectiveRendezvous::new(sim.handle()),
            DeviceConfig { hbm_capacity: hbm },
        )
    }

    fn tiered(sim: &Sim, cfg: TierConfig) -> ObjectStore {
        let topo = Arc::new(ClusterSpec::single_island(2, 4).build());
        ObjectStore::with_tiers(sim.handle(), topo, cfg)
    }

    #[test]
    fn refcount_is_per_logical_object() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            for shard in 0..4 {
                store2.put_shard(obj(0, 0), shard, &dev2, 100).await;
            }
            assert_eq!(dev2.hbm().used(), 400);
            // One retain + one release leaves the object alive: the count
            // is logical, covering all 4 shards.
            store2.retain(obj(0, 0)).unwrap();
            store2.release(obj(0, 0));
            assert_eq!(store2.len(), 1);
            store2.release(obj(0, 0));
            assert_eq!(store2.len(), 0);
            assert_eq!(dev2.hbm().used(), 0);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn retain_on_unknown_object_is_a_typed_error() {
        // Regression: a racing client-failure GC must not abort the
        // simulation when a stale handle is duplicated.
        let store = ObjectStore::new();
        assert_eq!(
            store.retain(obj(7, 7)),
            Err(StoreError::UnknownObject(obj(7, 7)))
        );
        // And after a GC reclaimed the object mid-flight:
        store.create(obj(1, 0), ClientId(3));
        store.retain(obj(1, 0)).unwrap();
        assert_eq!(store.gc_client(ClientId(3)), 1);
        assert_eq!(
            store.retain(obj(1, 0)),
            Err(StoreError::UnknownObject(obj(1, 0)))
        );
        // release mirrors this as a documented no-op.
        store.release(obj(1, 0));
        assert!(store.is_empty());
    }

    #[test]
    fn declare_creates_ready_events_before_production() {
        let store = ObjectStore::new();
        let events = store.declare(obj(0, 1), ClientId(0), 3);
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| !e.is_set()));
        // The declared events are the ones mark_ready fires.
        store.mark_ready(obj(0, 1), 2);
        assert!(events[2].is_set());
        assert!(!events[0].is_set());
        assert_eq!(
            store.shard_ready(obj(0, 1), 0).unwrap().is_set(),
            events[0].is_set()
        );
    }

    #[test]
    fn put_shard_on_released_object_discards_output() {
        // A sink whose ObjectRef was dropped (or GC'd) before the kernel
        // produced data: the late put pins nothing and panics nowhere.
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.declare(obj(0, 0), ClientId(0), 1);
            store2.release(obj(0, 0)); // refcount 1 -> 0, entry gone
            let ev = store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            assert!(!ev.is_set());
            assert_eq!(dev.hbm().used(), 0);
            store2.mark_ready(obj(0, 0), 0); // no-op, no panic
            assert!(store2.is_empty());
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn gc_fires_ready_events_of_reclaimed_objects() {
        let store = ObjectStore::new();
        let events = store.declare(obj(0, 0), ClientId(0), 2);
        assert_eq!(store.gc_client(ClientId(0)), 1);
        assert!(events.iter().all(|e| e.is_set()), "consumers must unblock");
    }

    #[test]
    fn gc_client_frees_only_that_owner() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev2, 100).await;
            store2.create(obj(1, 0), ClientId(1));
            store2.put_shard(obj(1, 0), 0, &dev2, 200).await;
            // Even with extra refs, failure-GC removes client 0's object.
            store2.retain(obj(0, 0)).unwrap();
            assert_eq!(store2.gc_client(ClientId(0)), 1);
            assert_eq!(store2.len(), 1);
            assert_eq!(dev2.hbm().used(), 200);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn back_pressure_delays_put_shard() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        let dev2 = dev.clone();
        let h = sim.handle();
        sim.spawn("first", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev2, 80).await;
            h.sleep(pathways_sim::SimDuration::from_micros(50)).await;
            store2.release(obj(0, 0));
        });
        let store3 = store.clone();
        let dev3 = dev.clone();
        let h2 = sim.handle();
        let second = sim.spawn("second", async move {
            h2.sleep(pathways_sim::SimDuration::from_micros(1)).await;
            store3.create(obj(1, 0), ClientId(0));
            store3.put_shard(obj(1, 0), 0, &dev3, 50).await;
            h2.now().as_nanos()
        });
        sim.run_to_quiescence();
        // Stalled until the first object released at t=50us.
        assert_eq!(second.try_take().unwrap(), 50_000);
    }

    #[test]
    fn readiness_events_fire_consumers() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        let h = sim.handle();
        let consumer = sim.spawn("flow", async move {
            store2.create(obj(0, 0), ClientId(0));
            let ready = store2.put_shard(obj(0, 0), 0, &dev2, 10).await;
            let store3 = store2.clone();
            let h2 = h.clone();
            h.spawn("producer", async move {
                h2.sleep(pathways_sim::SimDuration::from_micros(7)).await;
                store3.mark_ready(obj(0, 0), 0);
            });
            ready.wait().await;
            h.now().as_nanos()
        });
        sim.run_to_quiescence();
        assert_eq!(consumer.try_take().unwrap(), 7_000);
    }

    #[test]
    fn object_bytes_sums_shards() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            store2.put_shard(obj(0, 0), 1, &dev, 150).await;
            assert_eq!(store2.object_bytes(obj(0, 0)), 250);
            assert_eq!(store2.object_bytes(obj(9, 9)), 0);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn fail_object_frees_hbm_fires_events_and_records_error() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        sim.spawn("t", async move {
            let events = store2.declare(obj(0, 0), ClientId(0), 2);
            store2.put_shard(obj(0, 0), 0, &dev2, 100).await;
            assert_eq!(dev2.hbm().used(), 100);
            assert!(store2.fail_object(obj(0, 0), FailureReason::Device(DeviceId(0))));
            assert_eq!(dev2.hbm().used(), 0, "failed shards release HBM");
            assert!(events.iter().all(Event::is_set), "consumers unblock");
            let err = store2.object_error(obj(0, 0)).unwrap();
            assert_eq!(err.reason(), FailureReason::Device(DeviceId(0)));
            // A second failure does not overwrite the first reason.
            store2.fail_object(obj(0, 0), FailureReason::OwnerGone);
            assert_eq!(
                store2.object_error(obj(0, 0)).unwrap().reason(),
                FailureReason::Device(DeviceId(0))
            );
            // Late puts to a failed object are discarded but report ready.
            let ev = store2.put_shard(obj(0, 0), 1, &dev2, 100).await;
            assert!(ev.is_set());
            assert_eq!(dev2.hbm().used(), 0);
            // The entry drains through the normal refcount path.
            assert_eq!(store2.len(), 1);
            store2.release(obj(0, 0));
            assert!(store2.is_empty());
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn fail_objects_on_device_is_scoped_and_sorted() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let d0 = device(&sim, 0, 1_000);
        let d1 = device(&sim, 1, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.create(obj(2, 0), ClientId(0));
            store2.put_shard(obj(2, 0), 0, &d0, 10).await;
            store2.create(obj(1, 0), ClientId(0));
            store2.put_shard(obj(1, 0), 0, &d0, 10).await;
            store2.create(obj(3, 0), ClientId(0));
            store2.put_shard(obj(3, 0), 0, &d1, 10).await;
            let doomed =
                store2.fail_objects_on_device(DeviceId(0), FailureReason::Device(DeviceId(0)));
            assert_eq!(doomed, vec![obj(1, 0), obj(2, 0)]);
            assert!(
                store2.object_error(obj(3, 0)).is_none(),
                "other device intact"
            );
            assert_eq!(d1.hbm().used(), 10);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn missing_object_reports_owner_gone() {
        let store = ObjectStore::new();
        store.declare(obj(0, 0), ClientId(5), 1);
        assert!(store.object_error(obj(0, 0)).is_none());
        assert_eq!(store.owner_of(obj(0, 0)), Some(ClientId(5)));
        store.gc_client(ClientId(5));
        assert_eq!(
            store.object_error(obj(0, 0)).map(|e| e.reason()),
            Some(FailureReason::OwnerGone)
        );
        assert!(!store.fail_object(obj(0, 0), FailureReason::OwnerGone));
    }

    #[test]
    #[should_panic(expected = "stored twice")]
    fn duplicate_shard_panics() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        sim.spawn("t", async move {
            store.create(obj(0, 0), ClientId(0));
            store.put_shard(obj(0, 0), 0, &dev, 10).await;
            store.put_shard(obj(0, 0), 0, &dev, 10).await;
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn hbm_pressure_spills_lru_ready_shard_to_dram() {
        let mut sim = Sim::new(0);
        let store = tiered(&sim, TierConfig::default());
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        let h = sim.handle();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev, 60).await;
            store2.mark_ready(obj(0, 0), 0);
            store2.create(obj(1, 0), ClientId(0));
            // 60 + 60 > 100: the ready LRU shard spills to DRAM instead
            // of stalling the put on back-pressure.
            let t0 = h.now();
            store2.put_shard(obj(1, 0), 0, &dev, 60).await;
            assert!(h.now() > t0, "the spill copy takes virtual time");
            assert_eq!(store2.shard_tier(obj(0, 0), 0), Some(Tier::Dram));
            assert_eq!(store2.shard_tier(obj(1, 0), 0), Some(Tier::Hbm));
            assert_eq!(store2.dram_used(), 60);
            assert_eq!(dev.hbm().used(), 60);
            assert_eq!(store2.tier_stats().spills, 1);
            assert!(store2.tiers_conserved());
            // Reads of the spilled shard pay a staging penalty.
            let (_, penalty) = store2.read_shard(obj(0, 0), 0).unwrap();
            assert!(penalty > SimDuration::ZERO);
            let (_, hot) = store2.read_shard(obj(1, 0), 0).unwrap();
            assert_eq!(hot, SimDuration::ZERO);
            store2.release(obj(0, 0));
            store2.release(obj(1, 0));
            assert_eq!(store2.dram_used(), 0);
            assert!(store2.tiers_conserved());
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn unready_shards_are_never_spilled() {
        let mut sim = Sim::new(0);
        let store = tiered(&sim, TierConfig::default());
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        let h = sim.handle();
        sim.spawn("t", async move {
            // In-production (unready) shard: not a spill victim, so the
            // second put falls back to classic back-pressure...
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev, 80).await;
            let store3 = store2.clone();
            let h2 = h.clone();
            h.spawn("producer", async move {
                h2.sleep(SimDuration::from_micros(30)).await;
                // ...until the kernel finishes and the shard is released.
                store3.release(obj(0, 0));
            });
            store2.create(obj(1, 0), ClientId(0));
            store2.put_shard(obj(1, 0), 0, &dev, 80).await;
            assert_eq!(h.now().as_nanos(), 30_000);
            assert_eq!(store2.tier_stats().spills, 0);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn dram_overflow_demotes_to_disk() {
        let mut sim = Sim::new(0);
        let store = tiered(
            &sim,
            TierConfig {
                dram_per_host: 100,
                ..TierConfig::default()
            },
        );
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        sim.spawn("t", async move {
            // Three 80-byte generations through a 100-byte HBM and a
            // 100-byte DRAM budget: gen 0 ends up on disk.
            for run in 0..3u64 {
                store2.create(obj(run, 0), ClientId(0));
                store2.put_shard(obj(run, 0), 0, &dev, 80).await;
                store2.mark_ready(obj(run, 0), 0);
            }
            assert_eq!(store2.shard_tier(obj(0, 0), 0), Some(Tier::Disk));
            assert_eq!(store2.shard_tier(obj(1, 0), 0), Some(Tier::Dram));
            assert_eq!(store2.shard_tier(obj(2, 0), 0), Some(Tier::Hbm));
            let stats = store2.tier_stats();
            assert_eq!((stats.spills, stats.demotions), (2, 1));
            assert_eq!(store2.dram_used(), 80);
            assert_eq!(store2.disk_used(), 80);
            assert!(store2.tiers_conserved());
            for run in 0..3u64 {
                store2.release(obj(run, 0));
            }
            assert_eq!(store2.dram_used() + store2.disk_used(), 0);
            assert!(store2.tiers_conserved());
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn tiered_duplicate_put_during_recovery_is_discarded() {
        let mut sim = Sim::new(0);
        let store = tiered(&sim, TierConfig::default());
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.declare(obj(0, 0), ClientId(0), 1);
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            // A recovery window turns the would-be "stored twice" panic
            // into a discard (the stale write raced the recovery).
            let win = store2.begin_recovery(obj(0, 0)).unwrap();
            let ev = store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            assert!(!ev.is_set());
            assert_eq!(dev.hbm().used(), 100);
            assert!(!win.is_set());
            store2.release(obj(0, 0));
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn restore_rematerializes_checkpointed_shards_in_dram() {
        let mut sim = Sim::new(0);
        let store = tiered(&sim, TierConfig::default());
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            let events = store2.declare(obj(0, 0), ClientId(0), 2);
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            store2.put_shard(obj(0, 0), 1, &dev, 100).await;
            // Hand-commit a checkpoint (the scheduled path needs
            // lineage; commit_checkpoint is exercised directly).
            store2.mark_ready(obj(0, 0), 0);
            store2.mark_ready(obj(0, 0), 1);
            // No lineage -> not a candidate.
            assert!(store2.commit_checkpoint(obj(0, 0)).is_none());
            // Simulate lineage presence via the candidate bypass: fake
            // the disk copy by charging through complete paths instead.
            // (Full checkpoint scheduling is covered by the recovery
            // integration tests.)
            store2.drop_shards_on_device(obj(0, 0), DeviceId(0));
            assert_eq!(dev.hbm().used(), 0);
            assert_eq!(store2.object_bytes(obj(0, 0)), 0);
            // Recovery window + restore path (no checkpoint: restore is
            // a no-op returning false, window survives until recompute
            // or terminal failure closes it).
            let win = store2.begin_recovery(obj(0, 0)).unwrap();
            assert!(store2.checkpoint_restore_size(obj(0, 0)).is_none());
            let ok = store2.complete_recompute(
                obj(0, 0),
                &[
                    (0, 100, DeviceId(0), HostId(0)),
                    (1, 100, DeviceId(1), HostId(0)),
                ],
            );
            assert!(ok);
            assert!(win.is_set(), "recovery window closes");
            assert!(store2.recovering(obj(0, 0)).is_none());
            assert_eq!(store2.object_bytes(obj(0, 0)), 200);
            assert_eq!(store2.shard_tier(obj(0, 0), 0), Some(Tier::Dram));
            assert_eq!(store2.dram_used(), 200);
            assert!(events.iter().all(Event::is_set));
            assert!(store2.tiers_conserved());
            store2.release(obj(0, 0));
            assert!(store2.tiers_conserved());
            assert_eq!(store2.dram_used(), 0);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn fail_object_closes_recovery_window_and_settles_ledgers() {
        let mut sim = Sim::new(0);
        let store = tiered(&sim, TierConfig::default());
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.declare(obj(0, 0), ClientId(0), 1);
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            let win = store2.begin_recovery(obj(0, 0)).unwrap();
            // A second recovery cannot open a nested window.
            assert!(store2.begin_recovery(obj(0, 0)).is_none());
            store2.fail_object(obj(0, 0), FailureReason::Device(DeviceId(0)));
            assert!(win.is_set(), "terminal failure closes the window");
            assert!(store2.recovering(obj(0, 0)).is_none());
            assert!(store2.object_error(obj(0, 0)).is_some());
            assert!(store2.tiers_conserved());
            store2.release(obj(0, 0));
        });
        sim.run_to_quiescence();
    }
}
