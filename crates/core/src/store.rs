//! The sharded object store (§4.2, §4.6).
//!
//! Each host manages buffers held in the HBM of its attached devices
//! (and transient staging in host DRAM). Client code refers to *logical*
//! sharded buffers by opaque [`ObjectId`]s; reference counting happens at
//! logical-buffer granularity — one count per object, not per shard — so
//! client bookkeeping stays O(objects) at thousands of shards, the
//! scaling fix §4.2 describes. Objects are tagged with an owner so they
//! can be garbage-collected if a client or program fails, and HBM
//! reservations go through [`HbmPool`](pathways_device::HbmPool), whose
//! back-pressure stalls computations that cannot allocate (§4.6).
//!
//! Per-shard *readiness events* exist from the moment an object is
//! [`declared`](ObjectStore::declare) — before any kernel has been
//! granted, let alone produced data. This is what lets a dependent
//! program be dispatched while its inputs are still futures: everything
//! control-plane proceeds eagerly, and only the consuming kernel gates
//! on the producer's per-shard events (§4.5's parallel asynchronous
//! dispatch, extended across programs).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use pathways_device::{DeviceHandle, HbmLease};
use pathways_net::{ClientId, DeviceId};
use pathways_plaque::RunId;
use pathways_sim::sync::Event;

use crate::program::CompId;

/// Opaque handle to a logical (sharded) buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// The run that produced the object.
    pub run: RunId,
    /// The computation that produced it.
    pub comp: CompId,
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj({},{})", self.run, self.comp)
    }
}

/// Typed store errors. Racing failure-GC means a client can hold a
/// handle to an object the store has already reclaimed; those paths
/// return errors instead of aborting the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The object is not (or no longer) in the store — typically it was
    /// garbage-collected after its owner failed, or its refcount already
    /// reached zero.
    UnknownObject(ObjectId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownObject(id) => write!(f, "unknown object {id}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One shard of a stored object, pinned in a device's HBM.
pub struct StoredShard {
    device: DeviceId,
    bytes: u64,
    _lease: HbmLease,
    ready: Event,
}

impl fmt::Debug for StoredShard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoredShard")
            .field("device", &self.device)
            .field("bytes", &self.bytes)
            .field("ready", &self.ready.is_set())
            .finish()
    }
}

impl StoredShard {
    /// Device holding the shard.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Shard size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Readiness event: set when the producing kernel finished.
    pub fn ready(&self) -> &Event {
        &self.ready
    }
}

struct ObjectEntry {
    owner: ClientId,
    /// Logical-buffer refcount (not per shard).
    refcount: u32,
    /// Per-shard readiness events. Populated eagerly by
    /// [`ObjectStore::declare`] (so consumers can gate on shards that do
    /// not exist yet) or lazily by [`ObjectStore::put_shard`].
    ready: HashMap<u32, Event>,
    shards: HashMap<u32, StoredShard>,
}

/// The cluster-wide sharded object store.
///
/// One instance is shared by all host executors in the simulation (each
/// host only ever touches shards of its local devices; the shared map
/// models the per-host stores plus the client's logical handle table).
#[derive(Clone, Default)]
pub struct ObjectStore {
    inner: Rc<RefCell<HashMap<ObjectId, ObjectEntry>>>,
}

impl fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectStore")
            .field("objects", &self.inner.borrow().len())
            .finish()
    }
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an object owned by `owner` with refcount 1. Idempotent
    /// per object: shards are added with [`ObjectStore::put_shard`].
    pub fn create(&self, id: ObjectId, owner: ClientId) {
        self.inner.borrow_mut().entry(id).or_insert(ObjectEntry {
            owner,
            refcount: 1,
            ready: HashMap::new(),
            shards: HashMap::new(),
        });
    }

    /// Declares an object with `shards` shards *before it is produced*,
    /// eagerly creating one readiness event per shard, and returns those
    /// events in shard order.
    ///
    /// Idempotent like [`ObjectStore::create`]: only the *first* call
    /// for an id installs the entry, and its initial refcount of 1
    /// belongs to that caller (the client's `ObjectRef`). A repeat call
    /// takes **no** additional reference — it merely fills in and
    /// returns the shard events — so a second independent handle must
    /// [`retain`](ObjectStore::retain) explicitly.
    pub fn declare(&self, id: ObjectId, owner: ClientId, shards: u32) -> Vec<Event> {
        let mut inner = self.inner.borrow_mut();
        let entry = inner.entry(id).or_insert(ObjectEntry {
            owner,
            refcount: 1,
            ready: HashMap::new(),
            shards: HashMap::new(),
        });
        (0..shards)
            .map(|s| entry.ready.entry(s).or_default().clone())
            .collect()
    }

    /// Reserves HBM on `device` for shard `shard` of `id` and records it.
    /// Awaits back-pressure if HBM is full.
    ///
    /// If the object is unknown — its last reference was dropped or its
    /// owner was garbage-collected while the producing run was still in
    /// flight — the output is discarded: nothing is pinned and a fresh,
    /// never-set event is returned.
    ///
    /// # Panics
    ///
    /// Panics if the shard already exists.
    pub async fn put_shard(
        &self,
        id: ObjectId,
        shard: u32,
        device: &DeviceHandle,
        bytes: u64,
    ) -> Event {
        if !self.inner.borrow().contains_key(&id) {
            return Event::new();
        }
        // HBM back-pressure happens outside the store borrow.
        let lease = device.hbm().allocate(bytes).await;
        let mut inner = self.inner.borrow_mut();
        let Some(entry) = inner.get_mut(&id) else {
            // Released while we waited on back-pressure: discard.
            return Event::new();
        };
        let ready = entry.ready.entry(shard).or_insert_with(Event::new).clone();
        let prev = entry.shards.insert(
            shard,
            StoredShard {
                device: device.id(),
                bytes,
                _lease: lease,
                ready: ready.clone(),
            },
        );
        assert!(prev.is_none(), "{id} shard {shard} stored twice");
        ready
    }

    /// Marks shard `shard` of `id` ready (producing kernel finished).
    ///
    /// Late marks on released objects are ignored — the consumer is gone.
    pub fn mark_ready(&self, id: ObjectId, shard: u32) {
        if let Some(entry) = self.inner.borrow().get(&id) {
            if let Some(ev) = entry.ready.get(&shard) {
                ev.set();
            }
        }
    }

    /// Readiness event of a shard, if the object (and its declared or
    /// stored shard) is present.
    pub fn shard_ready(&self, id: ObjectId, shard: u32) -> Option<Event> {
        self.inner
            .borrow()
            .get(&id)
            .and_then(|e| e.ready.get(&shard).cloned())
    }

    /// Increments the logical refcount.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownObject`] if the object is gone — e.g.
    /// an `ObjectRef` clone racing a client-failure GC. Callers that can
    /// tolerate the race (handle duplication) treat this as a no-op.
    pub fn retain(&self, id: ObjectId) -> Result<(), StoreError> {
        let mut inner = self.inner.borrow_mut();
        match inner.get_mut(&id) {
            Some(entry) => {
                entry.refcount += 1;
                Ok(())
            }
            None => Err(StoreError::UnknownObject(id)),
        }
    }

    /// Decrements the logical refcount, freeing all shards (their HBM
    /// leases drop) when it reaches zero. A release of an unknown object
    /// is a no-op (the GC got there first).
    pub fn release(&self, id: ObjectId) {
        let mut inner = self.inner.borrow_mut();
        let Some(entry) = inner.get_mut(&id) else {
            return;
        };
        entry.refcount -= 1;
        if entry.refcount == 0 {
            inner.remove(&id);
        }
    }

    /// Frees every object owned by `client`, regardless of refcount —
    /// the failure-GC path: "objects are tagged with ownership labels so
    /// that they can be garbage collected if a program or client fails".
    ///
    /// Readiness events of reclaimed objects are fired so that consumers
    /// already gated on them unblock (they observe the producer as done;
    /// cross-client failure containment is the consumer's problem) and
    /// the simulation stays quiescent-able.
    pub fn gc_client(&self, client: ClientId) -> usize {
        let mut inner = self.inner.borrow_mut();
        let doomed: Vec<ObjectId> = inner
            .iter()
            .filter(|(_, e)| e.owner == client)
            .map(|(id, _)| *id)
            .collect();
        let n = doomed.len();
        for id in doomed {
            if let Some(entry) = inner.remove(&id) {
                for ev in entry.ready.values() {
                    ev.set();
                }
            }
        }
        n
    }

    /// Number of live logical objects.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Total bytes pinned across all shards of `id`.
    pub fn object_bytes(&self, id: ObjectId) -> u64 {
        self.inner
            .borrow()
            .get(&id)
            .map(|e| e.shards.values().map(|s| s.bytes).sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_device::{CollectiveRendezvous, DeviceConfig};
    use pathways_sim::Sim;

    fn obj(run: u64, comp: u32) -> ObjectId {
        ObjectId {
            run: RunId(run),
            comp: CompId(comp),
        }
    }

    fn device(sim: &Sim, id: u32, hbm: u64) -> DeviceHandle {
        DeviceHandle::spawn(
            &sim.handle(),
            DeviceId(id),
            CollectiveRendezvous::new(sim.handle()),
            DeviceConfig { hbm_capacity: hbm },
        )
    }

    #[test]
    fn refcount_is_per_logical_object() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            for shard in 0..4 {
                store2.put_shard(obj(0, 0), shard, &dev2, 100).await;
            }
            assert_eq!(dev2.hbm().used(), 400);
            // One retain + one release leaves the object alive: the count
            // is logical, covering all 4 shards.
            store2.retain(obj(0, 0)).unwrap();
            store2.release(obj(0, 0));
            assert_eq!(store2.len(), 1);
            store2.release(obj(0, 0));
            assert_eq!(store2.len(), 0);
            assert_eq!(dev2.hbm().used(), 0);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn retain_on_unknown_object_is_a_typed_error() {
        // Regression: a racing client-failure GC must not abort the
        // simulation when a stale handle is duplicated.
        let store = ObjectStore::new();
        assert_eq!(
            store.retain(obj(7, 7)),
            Err(StoreError::UnknownObject(obj(7, 7)))
        );
        // And after a GC reclaimed the object mid-flight:
        store.create(obj(1, 0), ClientId(3));
        store.retain(obj(1, 0)).unwrap();
        assert_eq!(store.gc_client(ClientId(3)), 1);
        assert_eq!(
            store.retain(obj(1, 0)),
            Err(StoreError::UnknownObject(obj(1, 0)))
        );
        // release mirrors this as a documented no-op.
        store.release(obj(1, 0));
        assert!(store.is_empty());
    }

    #[test]
    fn declare_creates_ready_events_before_production() {
        let store = ObjectStore::new();
        let events = store.declare(obj(0, 1), ClientId(0), 3);
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| !e.is_set()));
        // The declared events are the ones mark_ready fires.
        store.mark_ready(obj(0, 1), 2);
        assert!(events[2].is_set());
        assert!(!events[0].is_set());
        assert_eq!(
            store.shard_ready(obj(0, 1), 0).unwrap().is_set(),
            events[0].is_set()
        );
    }

    #[test]
    fn put_shard_on_released_object_discards_output() {
        // A sink whose ObjectRef was dropped (or GC'd) before the kernel
        // produced data: the late put pins nothing and panics nowhere.
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.declare(obj(0, 0), ClientId(0), 1);
            store2.release(obj(0, 0)); // refcount 1 -> 0, entry gone
            let ev = store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            assert!(!ev.is_set());
            assert_eq!(dev.hbm().used(), 0);
            store2.mark_ready(obj(0, 0), 0); // no-op, no panic
            assert!(store2.is_empty());
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn gc_fires_ready_events_of_reclaimed_objects() {
        let store = ObjectStore::new();
        let events = store.declare(obj(0, 0), ClientId(0), 2);
        assert_eq!(store.gc_client(ClientId(0)), 1);
        assert!(events.iter().all(|e| e.is_set()), "consumers must unblock");
    }

    #[test]
    fn gc_client_frees_only_that_owner() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev2, 100).await;
            store2.create(obj(1, 0), ClientId(1));
            store2.put_shard(obj(1, 0), 0, &dev2, 200).await;
            // Even with extra refs, failure-GC removes client 0's object.
            store2.retain(obj(0, 0)).unwrap();
            assert_eq!(store2.gc_client(ClientId(0)), 1);
            assert_eq!(store2.len(), 1);
            assert_eq!(dev2.hbm().used(), 200);
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn back_pressure_delays_put_shard() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 100);
        let store2 = store.clone();
        let dev2 = dev.clone();
        let h = sim.handle();
        sim.spawn("first", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev2, 80).await;
            h.sleep(pathways_sim::SimDuration::from_micros(50)).await;
            store2.release(obj(0, 0));
        });
        let store3 = store.clone();
        let dev3 = dev.clone();
        let h2 = sim.handle();
        let second = sim.spawn("second", async move {
            h2.sleep(pathways_sim::SimDuration::from_micros(1)).await;
            store3.create(obj(1, 0), ClientId(0));
            store3.put_shard(obj(1, 0), 0, &dev3, 50).await;
            h2.now().as_nanos()
        });
        sim.run_to_quiescence();
        // Stalled until the first object released at t=50us.
        assert_eq!(second.try_take().unwrap(), 50_000);
    }

    #[test]
    fn readiness_events_fire_consumers() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        let dev2 = dev.clone();
        let h = sim.handle();
        let consumer = sim.spawn("flow", async move {
            store2.create(obj(0, 0), ClientId(0));
            let ready = store2.put_shard(obj(0, 0), 0, &dev2, 10).await;
            let store3 = store2.clone();
            let h2 = h.clone();
            h.spawn("producer", async move {
                h2.sleep(pathways_sim::SimDuration::from_micros(7)).await;
                store3.mark_ready(obj(0, 0), 0);
            });
            ready.wait().await;
            h.now().as_nanos()
        });
        sim.run_to_quiescence();
        assert_eq!(consumer.try_take().unwrap(), 7_000);
    }

    #[test]
    fn object_bytes_sums_shards() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        let store2 = store.clone();
        sim.spawn("t", async move {
            store2.create(obj(0, 0), ClientId(0));
            store2.put_shard(obj(0, 0), 0, &dev, 100).await;
            store2.put_shard(obj(0, 0), 1, &dev, 150).await;
            assert_eq!(store2.object_bytes(obj(0, 0)), 250);
            assert_eq!(store2.object_bytes(obj(9, 9)), 0);
        });
        sim.run_to_quiescence();
    }

    #[test]
    #[should_panic(expected = "stored twice")]
    fn duplicate_shard_panics() {
        let mut sim = Sim::new(0);
        let store = ObjectStore::new();
        let dev = device(&sim, 0, 1_000);
        sim.spawn("t", async move {
            store.create(obj(0, 0), ClientId(0));
            store.put_shard(obj(0, 0), 0, &dev, 10).await;
            store.put_shard(obj(0, 0), 0, &dev, 10).await;
        });
        sim.run_to_quiescence();
    }
}
