//! Seeded chaos harness: random fault schedules against random
//! chained-`ObjectRef` workloads, with the three invariants the fault
//! subsystem guarantees checked after every run.
//!
//! MLSYSIM-style first-principles argument: the right place to explore
//! failure interleavings is a deterministic simulator, where every fault
//! schedule is replayable bit-for-bit. [`run_chaos`] derives a workload
//! *and* a fault schedule purely from a seed, runs them on one
//! simulation, and returns a [`ChaosReport`] whose fields encode the
//! invariants:
//!
//! 1. **No wedged future** — the simulation reaches quiescence and
//!    every `ObjectRef` resolved (`resolved_ok + resolved_err` equals
//!    the number of sinks awaited); nothing relies on timeouts, only on
//!    error propagation.
//! 2. **Refcounts drain** — after the client drops its handles the
//!    object store is empty and every HBM lease is back
//!    (`store_len == 0`, `hbm_leaked == 0`).
//! 3. **Surviving islands keep making progress** — with
//!    [`ChaosSpec::spare_island`] the last island (and the client host,
//!    placed there) is never targeted, and `survivor_kernels` counts
//!    the kernels its devices executed.
//! 4. **Healed slices heal** — after the fault horizon the client
//!    resubmits one program per slice it allocated (the *heal epoch*).
//!    Slices remapped off dead hardware re-lower transparently; every
//!    resubmission resolves (`healed_ok + healed_err` equals the slice
//!    count) and the spare island's resubmission always succeeds.
//! 5. **Accounting drains** — once the client releases its slices,
//!    every resource-manager use-count is back to zero
//!    (`rm_residual_load == 0`, `rm_live_slices == 0`).
//!
//! Determinism: two [`run_chaos`] calls with the same spec produce
//! identical [`ChaosReport::trace`]s (the fault schedule itself is
//! stamped onto the `faults` trace track, so it is part of the
//! comparison).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pathways_net::{ClusterSpec, DeviceId, HostId, IslandId, NetworkParams};
use pathways_sim::trace::TraceLog;
use pathways_sim::{Executor, FaultPlan, RunOutcome, SimDuration, SimTime};

use crate::fault::FaultSpec;
use crate::{FnSpec, InputSpec, ObjectRef, PathwaysConfig, PathwaysRuntime, Run, SliceRequest};

/// Shape of one chaos run: cluster size, workload size, fault budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed for both the workload and the fault schedule.
    pub seed: u64,
    /// Number of islands.
    pub islands: u32,
    /// Hosts per island.
    pub hosts_per_island: u32,
    /// Devices per host.
    pub devices_per_host: u32,
    /// Programs submitted (randomly plain / chained / abandoned).
    pub programs: u32,
    /// Upper bound on injected faults (the actual count is seeded).
    pub max_faults: u32,
    /// Faults land within `[50us, horizon_us]` of virtual time.
    pub horizon_us: u64,
    /// Keep the last island (and the client host, placed there) out of
    /// every fault's blast radius so surviving-progress is assertable.
    pub spare_island: bool,
    /// Run with storage tiers and recovery enabled
    /// ([`crate::TierConfig::default`]): objects checkpoint to disk and
    /// hardware loss recovers via restore/lineage instead of surfacing
    /// `ProducerFailed`. Adds the tier-conservation invariants to the
    /// report. `false` keeps the single-tier seed semantics.
    pub tiered: bool,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed: 0,
            islands: 2,
            hosts_per_island: 2,
            devices_per_host: 4,
            programs: 6,
            max_faults: 3,
            horizon_us: 2_000,
            spare_island: true,
            tiered: false,
        }
    }
}

impl ChaosSpec {
    /// The default shape with a different seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosSpec {
            seed,
            ..Self::default()
        }
    }

    /// The default shape with tiers + recovery enabled.
    pub fn seeded_tiered(seed: u64) -> Self {
        ChaosSpec {
            seed,
            tiered: true,
            ..Self::default()
        }
    }
}

/// What one chaos run did and left behind.
#[derive(Debug)]
pub struct ChaosReport {
    /// Final simulation outcome (quiescent unless something wedged).
    pub outcome: RunOutcome,
    /// Sink `ObjectRef`s that resolved with data.
    pub resolved_ok: u32,
    /// Sink `ObjectRef`s that resolved with `ObjectError::ProducerFailed`.
    pub resolved_err: u32,
    /// The injected fault schedule (nanoseconds, spec), in time order.
    pub faults: Vec<(u64, FaultSpec)>,
    /// The full event trace (device spans + `faults` track).
    pub trace: TraceLog,
    /// Objects left in the store after every handle dropped.
    pub store_len: usize,
    /// HBM bytes still leased across all devices at the end.
    pub hbm_leaked: u64,
    /// Kernels executed by the spare island's devices (0 when
    /// `spare_island` is false).
    pub survivor_kernels: u64,
    /// Heal-epoch resubmissions that completed with data.
    pub healed_ok: u32,
    /// Heal-epoch resubmissions that resolved with a typed error
    /// (pinned island dead, slice unplaceable, ...).
    pub healed_err: u32,
    /// True if the spare island's heal-epoch resubmission succeeded
    /// (vacuously true when `spare_island` is false).
    pub spare_healed: bool,
    /// Programs whose slice allocation succeeded and that were actually
    /// submitted. Always `programs + 1` (the spare) on the
    /// deterministic backend; on the threaded backend a fault can race
    /// ahead of setup and exhaust an island, skipping a program.
    pub launched: u32,
    /// Healing actions the fault injector took (slices remapped off
    /// dead hardware, or recorded unplaceable).
    pub heal_events: u32,
    /// Sum of all resource-manager use-counts after the client released
    /// every slice — nonzero means the accounting ledger drifted.
    pub rm_residual_load: u64,
    /// Live slices left in the resource manager after release.
    pub rm_live_slices: usize,
    /// Tier activity counters ([`crate::TierStats`]; all zero when
    /// [`ChaosSpec::tiered`] is false).
    pub tier_stats: crate::TierStats,
    /// Recovery outcomes ([`crate::RecoveryStats`]; all zero when
    /// untiered).
    pub recovery: crate::RecoveryStats,
    /// DRAM-tier bytes still charged after every handle dropped.
    pub dram_leaked: u64,
    /// Disk-tier bytes still charged after every handle dropped.
    pub disk_leaked: u64,
    /// True iff the tier byte ledgers match a recount of the store's
    /// entries (vacuously true when untiered).
    pub tiers_conserved: bool,
}

impl ChaosReport {
    /// FNV-1a fingerprint of the trace, for compact determinism checks.
    pub fn trace_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for s in self.trace.spans() {
            eat(s.track.as_bytes());
            eat(s.label.as_bytes());
            eat(&s.start.as_nanos().to_le_bytes());
            eat(&s.end.as_nanos().to_le_bytes());
        }
        h
    }
}

struct ProgramShape {
    island: u32,
    devices: u32,
    compute_us: u64,
    allreduce: bool,
    /// Chain on the most recent kept output (if one exists).
    chained: bool,
    /// Drop the run right after submission (outputs discarded).
    abandoned: bool,
}

/// Runs one seeded chaos scenario; see the module docs for the
/// invariants encoded in the returned report.
///
/// # Panics
///
/// Panics only on malformed specs — zero islands, `spare_island` with a
/// single island, or islands of fewer than two devices (the workload
/// generator draws gang sizes of at least 2); the invariants themselves
/// are *reported*, not asserted, so tests can produce useful
/// diagnostics.
pub fn run_chaos(spec: &ChaosSpec) -> ChaosReport {
    assert!(spec.islands >= 1, "chaos needs at least one island");
    assert!(
        !spec.spare_island || spec.islands >= 2,
        "spare_island needs a second island"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let island_devices = spec.hosts_per_island * spec.devices_per_host;
    assert!(
        island_devices >= 2,
        "chaos islands need at least 2 devices (got {island_devices})"
    );
    let target_islands = if spec.spare_island {
        spec.islands - 1
    } else {
        spec.islands
    };
    let spare = IslandId(spec.islands - 1);

    // --- Workload shape, derived purely from the seed. -----------------
    let mut shapes: Vec<ProgramShape> = (0..spec.programs)
        .map(|_| {
            let island = rng.random_range(0..spec.islands as u64) as u32;
            let max_pow = island_devices.ilog2();
            let devices = 1u32 << rng.random_range(1..u64::from(max_pow) + 1);
            ProgramShape {
                island,
                devices,
                compute_us: rng.random_range(20..300),
                allreduce: rng.random::<bool>(),
                chained: rng.random_range(0..3) == 1,
                abandoned: rng.random_range(0..4) == 3,
            }
        })
        .collect();
    if spec.spare_island {
        // One guaranteed standalone, kept program on the spare island so
        // surviving-progress is observable.
        shapes.push(ProgramShape {
            island: spare.0,
            devices: spec.devices_per_host.max(2),
            compute_us: 100,
            allreduce: true,
            chained: false,
            abandoned: false,
        });
    }

    // --- Fault schedule, also seeded. ----------------------------------
    let n_faults = rng.random_range(0..u64::from(spec.max_faults) + 1) as u32;
    let mut plan: FaultPlan<FaultSpec> = FaultPlan::new();
    let mut faults: Vec<(u64, FaultSpec)> = Vec::new();
    let hosts_in_targets = target_islands * spec.hosts_per_island;
    for _ in 0..n_faults {
        if hosts_in_targets == 0 {
            break;
        }
        let at =
            SimTime::ZERO + SimDuration::from_micros(rng.random_range(50..spec.horizon_us.max(51)));
        let fault = match rng.random_range(0..3) {
            0 => {
                let d = rng.random_range(0..u64::from(target_islands * island_devices)) as u32;
                FaultSpec::Device(DeviceId(d))
            }
            1 => {
                let h = rng.random_range(0..u64::from(hosts_in_targets)) as u32;
                FaultSpec::Host(HostId(h))
            }
            _ => {
                let a = rng.random_range(0..u64::from(hosts_in_targets)) as u32;
                let b = rng.random_range(0..u64::from(hosts_in_targets)) as u32;
                if a == b {
                    FaultSpec::Host(HostId(a))
                } else {
                    FaultSpec::Link(HostId(a), HostId(b))
                }
            }
        };
        faults.push((at.as_nanos(), fault));
        plan.push(at, fault);
    }
    faults.sort();

    // --- Build and run the simulation. ---------------------------------
    // Backend comes from `PATHWAYS_EXECUTOR` so the CI matrix can run
    // the same chaos schedules on the deterministic wheel and on real
    // threads. Invariants hold on both; only the deterministic backend
    // additionally guarantees bit-identical traces.
    let mut sim = Executor::from_env(spec.seed);
    let cfg = PathwaysConfig {
        tiers: spec.tiered.then(crate::TierConfig::default),
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(spec.islands, spec.hosts_per_island, spec.devices_per_host),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    rt.install_fault_plan(plan);
    // The client process lives on the spare island's first host when one
    // exists, so client-host death does not conflate the invariants.
    let client_host = if spec.spare_island {
        HostId(target_islands * spec.hosts_per_island)
    } else {
        HostId(0)
    };
    let client = rt.client(client_host);
    let core = std::sync::Arc::clone(rt.core());
    let rm = std::sync::Arc::clone(rt.resource_manager());
    let spare_slice_idx = shapes.len().saturating_sub(1);
    let has_spare = spec.spare_island;

    let job = sim.spawn("chaos-client", async move {
        let mut kept: Vec<(Run, ObjectRef)> = Vec::new();
        let mut slices: Vec<(usize, crate::VirtualSlice)> = Vec::new();
        let mut last: Option<ObjectRef> = None;
        for (i, shape) in shapes.iter().enumerate() {
            // On the deterministic backend every allocation happens
            // before the first fault (earliest fault: t=50us) and must
            // succeed. On the threaded backend real time passes during
            // setup, so a fault can race ahead of an allocation and
            // legitimately exhaust the island; such programs are skipped
            // and `launched` records how many actually ran.
            let slice = match client.virtual_slice(
                SliceRequest::devices(shape.devices).in_island(IslandId(shape.island)),
            ) {
                Ok(s) => s,
                Err(_) => continue,
            };
            slices.push((i, slice.clone()));
            let mut b = client.trace(format!("p{i}"));
            let chain_src = if shape.chained { last.clone() } else { None };
            let input = chain_src
                .as_ref()
                .map(|src| b.input(InputSpec::new("x", src.shards())));
            let mut f = FnSpec::compute_only("k", SimDuration::from_micros(shape.compute_us))
                .with_output_bytes(1 << 12);
            if shape.allreduce {
                f = f.with_allreduce(4);
            }
            let k = b.computation(f, &slice);
            if let Some(x) = input {
                b.reshard_edge(x, k, 1 << 12);
            }
            let prepared = client.prepare(&b.build().expect("valid chaos program"));
            let run = match (input, chain_src) {
                (Some(x), Some(src)) => client
                    .submit_with(&prepared, &[(x, src)])
                    .await
                    .expect("bindings are valid"),
                _ => client.submit(&prepared).await,
            };
            let out = run.object_ref(k).expect("sink exists");
            last = Some(out.clone());
            if shape.abandoned {
                drop(run); // outputs discarded mid-flight
            } else {
                kept.push((run, out));
            }
        }
        drop(last);
        // Await every kept run and classify every output future: with
        // fault propagation none of these can hang.
        let mut ok = 0u32;
        let mut err = 0u32;
        for (run, out) in kept {
            run.finish().await;
            match out.ready().await {
                Ok(()) => ok += 1,
                Err(_) => err += 1,
            }
        }
        // Heal epoch: every fault has landed (the kept runs resolved
        // after the horizon); resubmit one fresh program per allocated
        // slice. Slices that were remapped off dead hardware re-lower
        // transparently and must complete; slices on dead islands (or
        // left unplaceable) must fail fast with a typed error — either
        // way nothing may hang.
        let mut healed_ok = 0u32;
        let mut healed_err = 0u32;
        let mut spare_healed = !has_spare;
        for (i, slice) in &slices {
            let mut b = client.trace(format!("heal{i}"));
            let k = b.computation(
                FnSpec::compute_only("hk", SimDuration::from_micros(40)).with_output_bytes(1 << 10),
                slice,
            );
            let prepared = client.prepare(&b.build().expect("valid heal program"));
            let run = client.submit(&prepared).await;
            let out = run.object_ref(k).expect("sink exists");
            run.finish().await;
            match out.ready().await {
                Ok(()) => {
                    healed_ok += 1;
                    if has_spare && *i == spare_slice_idx {
                        spare_healed = true;
                    }
                }
                Err(_) => healed_err += 1,
            }
        }
        // Drain: release every slice so the accounting ledger must
        // return to zero.
        let launched = slices.len() as u32;
        for (_, slice) in &slices {
            rm.release(slice);
        }
        (ok, err, healed_ok, healed_err, spare_healed, launched)
    });

    let outcome = sim.run();
    let (resolved_ok, resolved_err, healed_ok, healed_err, spare_healed, launched) =
        job.try_take().unwrap_or((0, 0, 0, 0, false, 0));
    let store_len = core.store.len();
    let hbm_leaked: u64 = core.devices.values().map(|d| d.hbm().used()).sum();
    let survivor_kernels: u64 = if spec.spare_island {
        core.fabric
            .topology()
            .devices_of_island(spare)
            .map(|d| core.devices[&d].stats().kernels)
            .sum()
    } else {
        0
    };
    let rm = rt.resource_manager();
    ChaosReport {
        outcome,
        resolved_ok,
        resolved_err,
        faults,
        trace: sim.take_trace(),
        store_len,
        hbm_leaked,
        survivor_kernels,
        healed_ok,
        healed_err,
        spare_healed,
        launched,
        heal_events: rt.faults().heal_events().len() as u32,
        rm_residual_load: rm.total_load(),
        rm_live_slices: rm.live_slice_count(),
        tier_stats: core.store.tier_stats(),
        recovery: rt.faults().recovery_stats(),
        dram_leaked: core.store.dram_used(),
        disk_leaked: core.store.disk_used(),
        tiers_conserved: core.store.tiers_conserved(),
    }
}
