//! Chaos suite: deterministic fault injection against chained-ObjectRef
//! workloads.
//!
//! Three invariants, checked across scripted scenarios and a seeded
//! random matrix:
//!
//! 1. no wedged future — every `ObjectRef` and `Run` resolves (to data
//!    or to `ObjectError::ProducerFailed`) in bounded *virtual* time;
//!    no test relies on timeouts;
//! 2. refcounts drain — once the client drops its handles the object
//!    store is empty and every HBM lease is returned;
//! 3. surviving islands keep making progress.
//!
//! Plus the determinism guarantee: the same seed and fault schedule
//! reproduce a bit-identical event trace.

use pathways_sim::Lock;
use std::sync::Arc;

use pathways_core::chaos::{run_chaos, ChaosSpec};
use pathways_core::{
    FailureReason, FaultSpec, FnSpec, InputSpec, ObjectError, ObjectRef, PathwaysConfig,
    PathwaysRuntime, SliceRequest,
};
use pathways_net::{ClusterSpec, DeviceId, HostId, IslandId, NetworkParams};
use pathways_sim::{Backend, ExecutorKind, FaultPlan, Sim, SimDuration, SimTime};

/// True when `PATHWAYS_EXECUTOR` selects the threaded backend; the
/// bit-identical-replay tests are skipped there (real threads do not
/// promise a reproducible interleaving — the invariant tests above
/// still run on both backends).
fn threaded_backend() -> bool {
    ExecutorKind::from_env().backend() == Backend::Threaded
}

fn two_island_rt(sim: &Sim) -> PathwaysRuntime {
    PathwaysRuntime::new(
        sim,
        ClusterSpec::islands_of(2, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    )
}

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

/// Acceptance scenario: a scripted device failure during a 3-program
/// chained run resolves every downstream `ObjectRef` to
/// `Err(ObjectError::ProducerFailed)`, while a control program on the
/// untouched island completes with data.
#[test]
fn scripted_device_failure_fails_three_program_chain() {
    let mut sim = Sim::new(7);
    let rt = two_island_rt(&sim);
    rt.install_fault_plan(FaultPlan::new().at(t(300), FaultSpec::Device(DeviceId(3))));
    // Client on the surviving island's host so its agent outlives the
    // fault.
    let client = rt.client(HostId(2));
    let core = Arc::clone(rt.core());

    let job = sim.spawn("client", async move {
        let slice0 = client
            .virtual_slice(SliceRequest::devices(8).in_island(IslandId(0)))
            .unwrap();
        // Three chained programs, all gang-scheduled on island 0 (which
        // contains the doomed device 3).
        let mut chain = Vec::new();
        let mut prev: Option<ObjectRef> = None;
        let mut runs = Vec::new();
        for i in 0..3 {
            let mut b = client.trace(format!("c{i}"));
            let x = prev
                .as_ref()
                .map(|p| b.input(InputSpec::new("x", p.shards())));
            let k = b.computation(
                FnSpec::compute_only("k", SimDuration::from_micros(500))
                    .with_allreduce(4)
                    .with_output_bytes(1 << 12),
                &slice0,
            );
            if let Some(x) = x {
                b.reshard_edge(x, k, 1 << 12);
            }
            let prepared = client.prepare(&b.build().unwrap());
            let run = match (x, prev.take()) {
                (Some(x), Some(p)) => client.submit_with(&prepared, &[(x, p)]).await.unwrap(),
                _ => client.submit(&prepared).await,
            };
            let out = run.object_ref(k).unwrap();
            prev = Some(out.clone());
            chain.push(out);
            runs.push(run);
        }
        drop(prev);
        // Control program on island 1: must finish with data.
        let slice1 = client
            .virtual_slice(SliceRequest::devices(8).in_island(IslandId(1)))
            .unwrap();
        let mut b = client.trace("survivor");
        let k = b.computation(
            FnSpec::compute_only("s", SimDuration::from_micros(500)).with_allreduce(4),
            &slice1,
        );
        let survivor = client.submit(&client.prepare(&b.build().unwrap())).await;
        let survivor_out = survivor.object_ref(k).unwrap();

        // Every run completes (wound down by failure propagation) and
        // every future resolves — no timeouts anywhere.
        for run in runs {
            run.finish().await;
        }
        survivor.finish().await;
        let chain_results: Vec<Result<(), ObjectError>> = {
            let mut v = Vec::new();
            for out in &chain {
                v.push(out.ready().await);
            }
            v
        };
        let survivor_result = survivor_out.ready().await;
        (chain_results, survivor_result)
    });

    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    let (chain_results, survivor_result) = job.try_take().unwrap();
    for (i, r) in chain_results.iter().enumerate() {
        match r {
            Err(ObjectError::ProducerFailed { .. }) => {}
            other => panic!("chain program {i} resolved to {other:?}, want ProducerFailed"),
        }
    }
    assert_eq!(survivor_result, Ok(()), "surviving island must progress");
    // Refcounts drained: the client task dropped every handle.
    assert!(core.store.is_empty(), "store leaked {}", core.store.len());
    for dev in core.devices.values() {
        assert_eq!(dev.hbm().used(), 0, "HBM leaked on {:?}", dev.id());
    }
    // The failure was delivered to the surviving hosts via housekeeping.
    let log = rt.faults().error_log();
    assert!(
        !log.notices(HostId(2)).is_empty(),
        "error delivery must reach live hosts"
    );
}

/// Killing the host that runs an island's scheduler takes the island
/// down; submissions to it fail fast with a typed island error.
#[test]
fn scheduler_host_death_kills_island_but_spares_others() {
    let mut sim = Sim::new(0);
    let rt = two_island_rt(&sim);
    // Host 0 runs island 0's scheduler.
    rt.install_fault_plan(FaultPlan::new().at(t(100), FaultSpec::Host(HostId(0))));
    let client = rt.client(HostId(2));
    let h = sim.handle();
    let job = sim.spawn("client", async move {
        // Submitted after the fault: island 0 is already dead.
        h.sleep(SimDuration::from_micros(200)).await;
        let s0 = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("doomed");
        let k = b.computation(
            FnSpec::compute_only("k", SimDuration::from_micros(100)),
            &s0,
        );
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let doomed = run.object_ref(k).unwrap();
        run.finish().await;
        let doomed_result = doomed.ready().await;

        let s1 = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(1)))
            .unwrap();
        let mut b = client.trace("alive");
        let k = b.computation(
            FnSpec::compute_only("k", SimDuration::from_micros(100)),
            &s1,
        );
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let alive = run.object_ref(k).unwrap();
        run.finish().await;
        (doomed_result, alive.ready().await)
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    let (doomed, alive) = job.try_take().unwrap();
    match doomed {
        Err(err) => assert!(
            matches!(
                err.reason(),
                FailureReason::Island(_) | FailureReason::Host(_) | FailureReason::Device(_)
            ),
            "unexpected reason {:?}",
            err.reason()
        ),
        Ok(()) => panic!("run on a dead island must fail"),
    }
    assert_eq!(alive, Ok(()));
    assert!(rt.core().store.is_empty());
}

/// A severed DCN link between the client's host and the scheduler's
/// host partitions in-flight runs; both ends stay live for local work.
#[test]
fn severed_link_fails_spanning_runs() {
    let mut sim = Sim::new(0);
    let rt = two_island_rt(&sim);
    rt.install_fault_plan(FaultPlan::new().at(t(100), FaultSpec::Link(HostId(2), HostId(0))));
    let client = rt.client(HostId(2));
    let job = sim.spawn("client", async move {
        // In flight across the link when it is cut (compute far longer
        // than the cut time).
        let s0 = client
            .virtual_slice(SliceRequest::devices(8).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("spanning");
        let k = b.computation(
            FnSpec::compute_only("k", SimDuration::from_millis(5)).with_allreduce(4),
            &s0,
        );
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let out = run.object_ref(k).unwrap();
        run.finish().await;
        out.ready().await
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    match job.try_take().unwrap() {
        Err(err) => assert!(
            matches!(err.reason(), FailureReason::Link(_, _)),
            "want link failure, got {:?}",
            err.reason()
        ),
        Ok(()) => panic!("partitioned run must fail"),
    }
    assert!(rt.core().store.is_empty());
}

/// Satellite: `fail_client` injected between submit and the first
/// kernel grant — downstream consumers (a different client) unblock
/// with a typed error, not stale data, and the producer's never-granted
/// run still winds down to completion.
#[test]
fn fail_client_between_submit_and_first_grant_unblocks_consumers() {
    let mut sim = Sim::new(0);
    // A huge scheduler decision cost guarantees no grant has left the
    // scheduler before the failure is injected.
    let cfg = PathwaysConfig {
        sched_decision: SimDuration::from_millis(2),
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(2),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    let producer = rt.client(HostId(0));
    let producer_id = producer.id();
    let consumer = rt.client(HostId(1));
    let consumer_result = Arc::new(Lock::new(None));
    let consumer_result2 = Arc::clone(&consumer_result);
    let job = sim.spawn("clients", async move {
        let slice = producer.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = producer.trace("prod");
        let k = b.computation(
            FnSpec::compute_only("p", SimDuration::from_micros(100)).with_output_bytes(1 << 12),
            &slice,
        );
        let prod_run = producer
            .submit(&producer.prepare(&b.build().unwrap()))
            .await;
        let fut = prod_run.object_ref(k).unwrap();

        let cslice = consumer.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = consumer.trace("cons");
        let x = b.input(InputSpec::new("x", fut.shards()));
        let c = b.computation(
            FnSpec::compute_only("c", SimDuration::from_micros(100)),
            &cslice,
        );
        b.reshard_edge(x, c, 1 << 12);
        let cons_run = consumer
            .submit_with(&consumer.prepare(&b.build().unwrap()), &[(x, fut)])
            .await
            .unwrap();
        let out = cons_run.object_ref(c).unwrap();
        // Both runs are queued at the scheduler (decision cost 2ms);
        // the failure lands now, before the first grant.
        prod_run.finish().await;
        cons_run.finish().await;
        let ready = out.ready().await;
        *consumer_result2.lock() = Some(ready);
        true
    });
    // Submissions take ~50us of client overhead; the first grant cannot
    // happen before 2ms. Kill the producer in between.
    sim.run_until_time(t(500));
    assert!(!job.is_finished(), "nothing can have been granted yet");
    rt.fail_client(producer_id);
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    assert_eq!(job.try_take(), Some(true));
    match consumer_result.lock().as_ref().unwrap() {
        Err(err) => assert!(
            matches!(
                err.reason(),
                FailureReason::Upstream(_) | FailureReason::Client(_)
            ),
            "want upstream/client failure, got {:?}",
            err.reason()
        ),
        Ok(()) => panic!("consumer must observe an error, not stale data"),
    }
    assert!(rt.core().store.is_empty());
}

/// Acceptance scenario for elastic healing: a device is killed while a
/// program is in flight on its slice. The in-flight run fails with
/// `ProducerFailed`, the resource manager remaps the slice onto spare
/// capacity in the same island, and the *same prepared program* —
/// now stale — re-lowers transparently on the next submit and
/// completes. Surviving islands progress throughout, heal notices reach
/// live hosts, and after release the accounting ledger drains to zero.
/// Run twice to assert the healed schedule replays bit-identically.
#[test]
fn device_kill_heals_slice_and_next_submit_succeeds() {
    fn scenario() -> pathways_sim::trace::TraceLog {
        let mut sim = Sim::new(11);
        let rt = two_island_rt(&sim); // 2 islands x 8 devices
        rt.install_fault_plan(FaultPlan::new().at(t(300), FaultSpec::Device(DeviceId(1))));
        let client = rt.client(HostId(2)); // lives on the surviving island
        let rm = Arc::clone(rt.resource_manager());
        let rm2 = Arc::clone(&rm);

        let job = sim.spawn("client", async move {
            let slice = client
                .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
                .unwrap();
            assert_eq!(
                slice.physical_devices(),
                vec![DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)]
            );
            let mut b = client.trace("step");
            let k = b.computation(
                FnSpec::compute_only("k", SimDuration::from_micros(800))
                    .with_allreduce(4)
                    .with_output_bytes(1 << 12),
                &slice,
            );
            let prepared = client.prepare(&b.build().unwrap());
            assert!(!prepared.is_stale());

            // In flight on devices 0-3 when device 1 dies at t=300us.
            let run1 = client.submit(&prepared).await;
            let out1 = run1.object_ref(k).unwrap();
            run1.finish().await;
            let r1 = out1.ready().await;
            drop(out1);

            // The fault injector healed the slice synchronously: the
            // mapping no longer contains the dead device, and the old
            // preparation is stale.
            let healed = slice.physical_devices();
            assert!(
                !healed.contains(&DeviceId(1)),
                "slice not healed: {healed:?}"
            );
            assert_eq!(healed.len(), 4);
            assert!(prepared.is_stale(), "remap must invalidate the lowering");

            // Same prepared program, no client-side changes: submit
            // re-lowers against the healed mapping and completes.
            let run2 = client.submit(&prepared).await;
            let out2 = run2.object_ref(k).unwrap();
            run2.finish().await;
            let r2 = out2.ready().await;
            drop(out2);

            rm2.release(&slice);
            (r1, r2)
        });

        let outcome = sim.run();
        assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
        let (r1, r2) = job.try_take().unwrap();
        match r1 {
            Err(ObjectError::ProducerFailed { .. }) => {}
            other => panic!("in-flight run must fail, got {other:?}"),
        }
        assert_eq!(r2, Ok(()), "submit on the healed slice must succeed");

        // Healing is observable: one heal event, the slice remapped.
        let events = rt.faults().heal_events();
        assert_eq!(events.len(), 1);
        assert!(events[0].healed(), "heal failed: {:?}", events[0]);
        assert!(events[0].from.contains(&DeviceId(1)));
        // The heal notice reached the client's (live) host.
        assert!(
            rt.faults()
                .heal_log()
                .knows_about(HostId(2), events[0].slice),
            "heal delivery must reach live hosts"
        );
        // Accounting drained to zero after release.
        assert_eq!(rt.resource_manager().total_load(), 0);
        assert_eq!(rt.resource_manager().live_slice_count(), 0);
        assert!(rt.core().store.is_empty());
        for dev in rt.core().devices.values() {
            assert_eq!(dev.hbm().used(), 0, "HBM leaked on {:?}", dev.id());
        }
        sim.take_trace()
    }

    let trace_a = scenario();
    let trace_b = scenario();
    assert_eq!(
        trace_a, trace_b,
        "healed schedule must replay bit-identically"
    );
}

/// Killing a host takes several devices at once; every slice touching
/// them is healed in one pass onto the island's surviving host (or
/// fails typed if the island's scheduler died with it). Here the dying
/// host is NOT the scheduler host, so healing lands in-island.
#[test]
fn host_kill_heals_all_touched_slices_in_one_pass() {
    let mut sim = Sim::new(5);
    let rt = two_island_rt(&sim); // hosts 0,1 -> island 0; 2,3 -> island 1
                                  // Host 1 holds devices 4-7; host 0 keeps the island-0 scheduler.
    rt.install_fault_plan(FaultPlan::new().at(t(200), FaultSpec::Host(HostId(1))));
    let client = rt.client(HostId(2));
    let rm = Arc::clone(rt.resource_manager());
    let rm2 = Arc::clone(&rm);
    let job = sim.spawn("client", async move {
        // Two 2-device slices placed across island 0; at least one
        // touches host 1's devices after load balancing spreads them.
        let s1 = client
            .virtual_slice(SliceRequest::devices(6).in_island(IslandId(0)))
            .unwrap();
        let s2 = client
            .virtual_slice(SliceRequest::devices(6).in_island(IslandId(0)))
            .unwrap();
        let h = client.handle().clone();
        h.sleep(SimDuration::from_micros(400)).await; // fault has landed
                                                      // Both slices must have been healed off devices 4-7... but the
                                                      // island only has 4 live devices left, so 6-wide slices are
                                                      // unplaceable — they stay broken and submits fail fast.
        let mut b = client.trace("post");
        let k = b.computation(FnSpec::compute_only("k", SimDuration::from_micros(50)), &s1);
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let out = run.object_ref(k).unwrap();
        run.finish().await;
        let r_broken = out.ready().await;

        // A fresh, smaller allocation fits the surviving capacity and
        // completes.
        let s3 = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("fresh");
        let k = b.computation(FnSpec::compute_only("k", SimDuration::from_micros(50)), &s3);
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let out = run.object_ref(k).unwrap();
        run.finish().await;
        let r_fresh = out.ready().await;
        for s in [&s1, &s2, &s3] {
            rm2.release(s);
        }
        (r_broken, r_fresh)
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    let (r_broken, r_fresh) = job.try_take().unwrap();
    assert!(r_broken.is_err(), "unplaceable slice must fail fast");
    assert_eq!(r_fresh, Ok(()), "right-sized reallocation must work");
    // Both oversized slices produced (failed) heal events.
    let events = rt.faults().heal_events();
    assert_eq!(events.len(), 2);
    assert!(events.iter().all(|e| !e.healed()));
    assert_eq!(rt.resource_manager().total_load(), 0);
    assert!(rt.core().store.is_empty());
}

/// Seeded chaos matrix: random fault schedules x random chained
/// workloads never wedge a future, never leak store objects or HBM,
/// and never stall the spare island.
#[test]
fn chaos_matrix_upholds_invariants() {
    // At least 8 seeds (the CI chaos job runs this suite in release).
    for seed in [1, 2, 3, 4, 5, 6, 7, 8, 0xC0FFEE, 0xBAD5EED] {
        let report = run_chaos(&ChaosSpec::seeded(seed));
        assert!(
            report.outcome.is_quiescent(),
            "seed {seed}: wedged with faults {:?}: {:?}",
            report.faults,
            report.outcome
        );
        assert!(
            report.resolved_ok + report.resolved_err >= 1,
            "seed {seed}: nothing resolved"
        );
        assert_eq!(
            report.store_len, 0,
            "seed {seed}: store leaked {} objects (faults {:?})",
            report.store_len, report.faults
        );
        assert_eq!(
            report.hbm_leaked, 0,
            "seed {seed}: leaked {} HBM bytes (faults {:?})",
            report.hbm_leaked, report.faults
        );
        assert!(
            report.survivor_kernels > 0,
            "seed {seed}: spare island made no progress (faults {:?})",
            report.faults
        );
        // Healing invariants: every heal-epoch resubmission resolves
        // (one per allocated slice), and the spare island's
        // resubmission always succeeds. Deterministically every program
        // launches before the first fault; threaded, a fault can race
        // setup and skip a program, so only the launched count is exact.
        assert_eq!(
            report.healed_ok + report.healed_err,
            report.launched,
            "seed {seed}: heal-epoch resubmission wedged (faults {:?})",
            report.faults
        );
        if !threaded_backend() {
            assert_eq!(
                report.launched,
                ChaosSpec::seeded(seed).programs + 1,
                "seed {seed}: allocation failed without faults in flight"
            );
        }
        assert!(
            report.spare_healed,
            "seed {seed}: spare island's resubmission failed (faults {:?})",
            report.faults
        );
        // Accounting drains: after the client released every slice, no
        // device carries residual load and no slice is still tracked.
        assert_eq!(
            report.rm_residual_load, 0,
            "seed {seed}: resource-manager ledger drifted by {} (faults {:?})",
            report.rm_residual_load, report.faults
        );
        assert_eq!(
            report.rm_live_slices, 0,
            "seed {seed}: {} slices leaked (faults {:?})",
            report.rm_live_slices, report.faults
        );
    }
}

/// Tiered chaos matrix: the same fault schedules with storage tiers and
/// recovery enabled. All the untiered invariants still hold, plus the
/// tier byte ledgers conserve and drain to zero, and across the matrix
/// the recovery machinery actually fires (checkpoints committed, losses
/// absorbed into restore/recompute instead of surfacing errors).
#[test]
fn tiered_chaos_matrix_upholds_invariants() {
    let mut checkpoints = 0u64;
    let mut recoveries = 0u64;
    for seed in [1, 2, 3, 4, 5, 6, 7, 8, 0xC0FFEE, 0xBAD5EED] {
        let report = run_chaos(&ChaosSpec::seeded_tiered(seed));
        assert!(
            report.outcome.is_quiescent(),
            "seed {seed}: wedged with faults {:?}: {:?}",
            report.faults,
            report.outcome
        );
        assert_eq!(
            report.store_len, 0,
            "seed {seed}: store leaked {} objects (faults {:?})",
            report.store_len, report.faults
        );
        assert_eq!(report.hbm_leaked, 0, "seed {seed}: leaked HBM bytes");
        assert_eq!(
            report.dram_leaked, 0,
            "seed {seed}: leaked {} DRAM-tier bytes (faults {:?})",
            report.dram_leaked, report.faults
        );
        assert_eq!(
            report.disk_leaked, 0,
            "seed {seed}: leaked {} disk-tier bytes (faults {:?})",
            report.disk_leaked, report.faults
        );
        assert!(
            report.tiers_conserved,
            "seed {seed}: tier byte ledgers drifted (faults {:?})",
            report.faults
        );
        assert_eq!(
            report.healed_ok + report.healed_err,
            report.launched,
            "seed {seed}: heal-epoch resubmission wedged"
        );
        if !threaded_backend() {
            assert_eq!(
                report.launched,
                ChaosSpec::seeded_tiered(seed).programs + 1,
                "seed {seed}: allocation failed without faults in flight"
            );
        }
        assert!(report.spare_healed, "seed {seed}: spare heal failed");
        assert!(report.survivor_kernels > 0, "seed {seed}: spare stalled");
        assert_eq!(report.rm_residual_load, 0, "seed {seed}: rm ledger drift");
        assert_eq!(report.rm_live_slices, 0, "seed {seed}: slices leaked");
        checkpoints += report.tier_stats.checkpoints;
        recoveries +=
            report.recovery.restored + report.recovery.recomputed + report.recovery.abandoned;
    }
    assert!(checkpoints > 0, "no seed ever committed a checkpoint");
    assert!(recoveries > 0, "no seed ever exercised object recovery");
}

/// Tiered chaos is as replayable as untiered chaos: spill, checkpoint,
/// and recovery scheduling are all on the deterministic wheel.
#[test]
fn tiered_chaos_runs_are_bit_identical_for_equal_seeds() {
    if threaded_backend() {
        eprintln!("skipping: replay is only bit-identical on the deterministic backend");
        return;
    }
    for seed in [3, 0xD15EA5E] {
        let a = run_chaos(&ChaosSpec::seeded_tiered(seed));
        let b = run_chaos(&ChaosSpec::seeded_tiered(seed));
        assert_eq!(a.faults, b.faults, "seed {seed}: fault schedules differ");
        assert_eq!(
            a.trace,
            b.trace,
            "seed {seed}: traces differ (fingerprints {:x} vs {:x})",
            a.trace_fingerprint(),
            b.trace_fingerprint()
        );
        assert_eq!(a.tier_stats, b.tier_stats, "tier activity must replay");
        assert_eq!(a.recovery, b.recovery, "recovery must replay");
        assert_eq!(a.resolved_ok, b.resolved_ok);
        assert_eq!(a.resolved_err, b.resolved_err);
    }
}

/// One scripted chain-loss run for the storage engine's DAG-chain
/// recovery: upstream producer `A` feeds `B` and `C` on the same
/// island-0 slice (all refs retained, lineage-only — no checkpoints),
/// a device kill at 300ms loses a shard of all three at once, and a
/// post-kill consumer on island 1 binds both downstream objects.
/// Returns the event trace, the trace-counted number of times `A` was
/// recomputed, and the recovery counters.
fn chain_loss_run(
    seed: u64,
) -> (
    pathways_sim::trace::TraceLog,
    u64,
    pathways_core::RecoveryStats,
) {
    use pathways_core::TierConfig;
    let mut sim = Sim::new(seed);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(2, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig {
            tiers: Some(TierConfig {
                checkpoint_interval: None,
                ..TierConfig::default()
            }),
            ..PathwaysConfig::default()
        },
    );
    rt.install_fault_plan(FaultPlan::new().at(t(300_000), FaultSpec::Device(DeviceId(1))));
    let client = rt.client(HostId(2));
    let core = Arc::clone(rt.core());
    let job = sim.spawn("client", async move {
        let h = client.handle().clone();
        // One slice for the whole chain: every object shards over the
        // same 4 devices, so the kill loses a shard of each.
        let slice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("upstream");
        let ka = b.computation(
            FnSpec::compute_only("a", SimDuration::from_millis(1)).with_output_bytes(1 << 12),
            &slice,
        );
        let arun = client.submit(&client.prepare(&b.build().unwrap())).await;
        let out_a = arun.object_ref(ka).unwrap();
        arun.finish().await;
        assert_eq!(out_a.ready().await, Ok(()), "upstream must succeed");
        let a_id = out_a.id();

        let mut downstream = Vec::new();
        for name in ["left", "right"] {
            let mut b = client.trace(name);
            let x = b.input(InputSpec::new("a", out_a.shards()));
            let k = b.computation(
                FnSpec::compute_only(name, SimDuration::from_micros(500))
                    .with_output_bytes(1 << 12),
                &slice,
            );
            b.reshard_edge(x, k, 1 << 12);
            let run = client
                .submit_with(&client.prepare(&b.build().unwrap()), &[(x, out_a.clone())])
                .await
                .unwrap();
            let out = run.object_ref(k).unwrap();
            run.finish().await;
            assert_eq!(out.ready().await, Ok(()), "downstream must succeed");
            downstream.push(out);
        }
        let out_c = downstream.pop().unwrap();
        let out_b = downstream.pop().unwrap();

        h.sleep_until(t(300_100)).await;
        // Consumer on island 1: it must not share device queues with
        // the recompute re-lowered onto healed island-0 devices.
        let dslice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(1)))
            .unwrap();
        let mut b = client.trace("consumer");
        let xb = b.input(InputSpec::new("b", out_b.shards()));
        let xc = b.input(InputSpec::new("c", out_c.shards()));
        let d = b.computation(
            FnSpec::compute_only("consume", SimDuration::from_micros(100)),
            &dslice,
        );
        b.reshard_edge(xb, d, 1 << 12);
        b.reshard_edge(xc, d, 1 << 12);
        let drun = client
            .submit_with(
                &client.prepare(&b.build().unwrap()),
                &[(xb, out_b), (xc, out_c)],
            )
            .await
            .unwrap();
        let dout = drun.object_ref(d).unwrap();
        drun.finish().await;
        assert_eq!(dout.ready().await, Ok(()), "chain must recover");
        a_id
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    let a_id = job.try_take().unwrap();
    assert!(core.store.is_empty(), "store leaked {}", core.store.len());
    let stats = rt.faults().recovery_stats();
    let trace = sim.take_trace();
    let label = format!("recompute {a_id}");
    let upstream = trace
        .spans()
        .iter()
        .filter(|s| s.track == "tiers" && s.label == label)
        .count() as u64;
    (trace, upstream, stats)
}

/// Storage-engine satellite: losing a whole object *chain* to one
/// device kill recomputes the shared upstream producer exactly once —
/// the recovery manager dedupes it out of both downstream lineages and
/// rebuilds the batch in topological order. The invariant holds on
/// both executor backends; the bit-identical replay of the trace is
/// asserted on the deterministic one.
#[test]
fn scripted_chain_loss_recomputes_shared_upstream_once() {
    let (trace_a, upstream, stats) = chain_loss_run(11);
    assert_eq!(
        upstream, 1,
        "shared upstream must be recomputed exactly once"
    );
    assert_eq!(
        stats.restored + stats.recomputed,
        3,
        "the whole 3-object chain recovers: {stats:?}"
    );
    assert_eq!(stats.abandoned, 0, "nothing goes terminal: {stats:?}");
    if threaded_backend() {
        eprintln!("skipping replay check: only bit-identical on the deterministic backend");
        return;
    }
    let (trace_b, upstream_b, stats_b) = chain_loss_run(11);
    assert_eq!(upstream_b, 1);
    assert_eq!(stats, stats_b, "recovery must replay");
    assert_eq!(
        trace_a, trace_b,
        "chain recovery must replay bit-identically"
    );
}

/// The same seed reproduces a bit-identical event trace — fault
/// schedule included (it is stamped on the `faults` trace track).
#[test]
fn chaos_runs_are_bit_identical_for_equal_seeds() {
    if threaded_backend() {
        eprintln!("skipping: replay is only bit-identical on the deterministic backend");
        return;
    }
    for seed in [3, 0xD15EA5E] {
        let a = run_chaos(&ChaosSpec::seeded(seed));
        let b = run_chaos(&ChaosSpec::seeded(seed));
        assert_eq!(a.faults, b.faults, "seed {seed}: fault schedules differ");
        assert_eq!(
            a.trace,
            b.trace,
            "seed {seed}: traces differ (fingerprints {:x} vs {:x})",
            a.trace_fingerprint(),
            b.trace_fingerprint()
        );
        assert_eq!(a.resolved_ok, b.resolved_ok);
        assert_eq!(a.resolved_err, b.resolved_err);
        assert_eq!(a.survivor_kernels, b.survivor_kernels);
        assert_eq!(a.healed_ok, b.healed_ok);
        assert_eq!(a.healed_err, b.healed_err);
        assert_eq!(
            a.heal_events, b.heal_events,
            "healing must be deterministic"
        );
    }
}
