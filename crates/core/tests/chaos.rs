//! Chaos suite: deterministic fault injection against chained-ObjectRef
//! workloads.
//!
//! Three invariants, checked across scripted scenarios and a seeded
//! random matrix:
//!
//! 1. no wedged future — every `ObjectRef` and `Run` resolves (to data
//!    or to `ObjectError::ProducerFailed`) in bounded *virtual* time;
//!    no test relies on timeouts;
//! 2. refcounts drain — once the client drops its handles the object
//!    store is empty and every HBM lease is returned;
//! 3. surviving islands keep making progress.
//!
//! Plus the determinism guarantee: the same seed and fault schedule
//! reproduce a bit-identical event trace.

use std::cell::RefCell;
use std::rc::Rc;

use pathways_core::chaos::{run_chaos, ChaosSpec};
use pathways_core::{
    FailureReason, FaultSpec, FnSpec, InputSpec, ObjectError, ObjectRef, PathwaysConfig,
    PathwaysRuntime, SliceRequest,
};
use pathways_net::{ClusterSpec, DeviceId, HostId, IslandId, NetworkParams};
use pathways_sim::{FaultPlan, Sim, SimDuration, SimTime};

fn two_island_rt(sim: &Sim) -> PathwaysRuntime {
    PathwaysRuntime::new(
        sim,
        ClusterSpec::islands_of(2, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    )
}

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

/// Acceptance scenario: a scripted device failure during a 3-program
/// chained run resolves every downstream `ObjectRef` to
/// `Err(ObjectError::ProducerFailed)`, while a control program on the
/// untouched island completes with data.
#[test]
fn scripted_device_failure_fails_three_program_chain() {
    let mut sim = Sim::new(7);
    let rt = two_island_rt(&sim);
    rt.install_fault_plan(FaultPlan::new().at(t(300), FaultSpec::Device(DeviceId(3))));
    // Client on the surviving island's host so its agent outlives the
    // fault.
    let client = rt.client(HostId(2));
    let core = Rc::clone(rt.core());

    let job = sim.spawn("client", async move {
        let slice0 = client
            .virtual_slice(SliceRequest::devices(8).in_island(IslandId(0)))
            .unwrap();
        // Three chained programs, all gang-scheduled on island 0 (which
        // contains the doomed device 3).
        let mut chain = Vec::new();
        let mut prev: Option<ObjectRef> = None;
        let mut runs = Vec::new();
        for i in 0..3 {
            let mut b = client.trace(format!("c{i}"));
            let x = prev
                .as_ref()
                .map(|p| b.input(InputSpec::new("x", p.shards())));
            let k = b.computation(
                FnSpec::compute_only("k", SimDuration::from_micros(500))
                    .with_allreduce(4)
                    .with_output_bytes(1 << 12),
                &slice0,
            );
            if let Some(x) = x {
                b.reshard_edge(x, k, 1 << 12);
            }
            let prepared = client.prepare(&b.build().unwrap());
            let run = match (x, prev.take()) {
                (Some(x), Some(p)) => client.submit_with(&prepared, &[(x, p)]).await.unwrap(),
                _ => client.submit(&prepared).await,
            };
            let out = run.object_ref(k).unwrap();
            prev = Some(out.clone());
            chain.push(out);
            runs.push(run);
        }
        drop(prev);
        // Control program on island 1: must finish with data.
        let slice1 = client
            .virtual_slice(SliceRequest::devices(8).in_island(IslandId(1)))
            .unwrap();
        let mut b = client.trace("survivor");
        let k = b.computation(
            FnSpec::compute_only("s", SimDuration::from_micros(500)).with_allreduce(4),
            &slice1,
        );
        let survivor = client.submit(&client.prepare(&b.build().unwrap())).await;
        let survivor_out = survivor.object_ref(k).unwrap();

        // Every run completes (wound down by failure propagation) and
        // every future resolves — no timeouts anywhere.
        for run in runs {
            run.finish().await;
        }
        survivor.finish().await;
        let chain_results: Vec<Result<(), ObjectError>> = {
            let mut v = Vec::new();
            for out in &chain {
                v.push(out.ready().await);
            }
            v
        };
        let survivor_result = survivor_out.ready().await;
        (chain_results, survivor_result)
    });

    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    let (chain_results, survivor_result) = job.try_take().unwrap();
    for (i, r) in chain_results.iter().enumerate() {
        match r {
            Err(ObjectError::ProducerFailed { .. }) => {}
            other => panic!("chain program {i} resolved to {other:?}, want ProducerFailed"),
        }
    }
    assert_eq!(survivor_result, Ok(()), "surviving island must progress");
    // Refcounts drained: the client task dropped every handle.
    assert!(core.store.is_empty(), "store leaked {}", core.store.len());
    for dev in core.devices.values() {
        assert_eq!(dev.hbm().used(), 0, "HBM leaked on {:?}", dev.id());
    }
    // The failure was delivered to the surviving hosts via housekeeping.
    let log = rt.faults().error_log();
    assert!(
        !log.notices(HostId(2)).is_empty(),
        "error delivery must reach live hosts"
    );
}

/// Killing the host that runs an island's scheduler takes the island
/// down; submissions to it fail fast with a typed island error.
#[test]
fn scheduler_host_death_kills_island_but_spares_others() {
    let mut sim = Sim::new(0);
    let rt = two_island_rt(&sim);
    // Host 0 runs island 0's scheduler.
    rt.install_fault_plan(FaultPlan::new().at(t(100), FaultSpec::Host(HostId(0))));
    let client = rt.client(HostId(2));
    let h = sim.handle();
    let job = sim.spawn("client", async move {
        // Submitted after the fault: island 0 is already dead.
        h.sleep(SimDuration::from_micros(200)).await;
        let s0 = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("doomed");
        let k = b.computation(
            FnSpec::compute_only("k", SimDuration::from_micros(100)),
            &s0,
        );
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let doomed = run.object_ref(k).unwrap();
        run.finish().await;
        let doomed_result = doomed.ready().await;

        let s1 = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(1)))
            .unwrap();
        let mut b = client.trace("alive");
        let k = b.computation(
            FnSpec::compute_only("k", SimDuration::from_micros(100)),
            &s1,
        );
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let alive = run.object_ref(k).unwrap();
        run.finish().await;
        (doomed_result, alive.ready().await)
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    let (doomed, alive) = job.try_take().unwrap();
    match doomed {
        Err(err) => assert!(
            matches!(
                err.reason(),
                FailureReason::Island(_) | FailureReason::Host(_) | FailureReason::Device(_)
            ),
            "unexpected reason {:?}",
            err.reason()
        ),
        Ok(()) => panic!("run on a dead island must fail"),
    }
    assert_eq!(alive, Ok(()));
    assert!(rt.core().store.is_empty());
}

/// A severed DCN link between the client's host and the scheduler's
/// host partitions in-flight runs; both ends stay live for local work.
#[test]
fn severed_link_fails_spanning_runs() {
    let mut sim = Sim::new(0);
    let rt = two_island_rt(&sim);
    rt.install_fault_plan(FaultPlan::new().at(t(100), FaultSpec::Link(HostId(2), HostId(0))));
    let client = rt.client(HostId(2));
    let job = sim.spawn("client", async move {
        // In flight across the link when it is cut (compute far longer
        // than the cut time).
        let s0 = client
            .virtual_slice(SliceRequest::devices(8).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("spanning");
        let k = b.computation(
            FnSpec::compute_only("k", SimDuration::from_millis(5)).with_allreduce(4),
            &s0,
        );
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let out = run.object_ref(k).unwrap();
        run.finish().await;
        out.ready().await
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    match job.try_take().unwrap() {
        Err(err) => assert!(
            matches!(err.reason(), FailureReason::Link(_, _)),
            "want link failure, got {:?}",
            err.reason()
        ),
        Ok(()) => panic!("partitioned run must fail"),
    }
    assert!(rt.core().store.is_empty());
}

/// Satellite: `fail_client` injected between submit and the first
/// kernel grant — downstream consumers (a different client) unblock
/// with a typed error, not stale data, and the producer's never-granted
/// run still winds down to completion.
#[test]
fn fail_client_between_submit_and_first_grant_unblocks_consumers() {
    let mut sim = Sim::new(0);
    // A huge scheduler decision cost guarantees no grant has left the
    // scheduler before the failure is injected.
    let cfg = PathwaysConfig {
        sched_decision: SimDuration::from_millis(2),
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(2),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    let producer = rt.client(HostId(0));
    let producer_id = producer.id();
    let consumer = rt.client(HostId(1));
    let consumer_result = Rc::new(RefCell::new(None));
    let consumer_result2 = Rc::clone(&consumer_result);
    let job = sim.spawn("clients", async move {
        let slice = producer.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = producer.trace("prod");
        let k = b.computation(
            FnSpec::compute_only("p", SimDuration::from_micros(100)).with_output_bytes(1 << 12),
            &slice,
        );
        let prod_run = producer
            .submit(&producer.prepare(&b.build().unwrap()))
            .await;
        let fut = prod_run.object_ref(k).unwrap();

        let cslice = consumer.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = consumer.trace("cons");
        let x = b.input(InputSpec::new("x", fut.shards()));
        let c = b.computation(
            FnSpec::compute_only("c", SimDuration::from_micros(100)),
            &cslice,
        );
        b.reshard_edge(x, c, 1 << 12);
        let cons_run = consumer
            .submit_with(&consumer.prepare(&b.build().unwrap()), &[(x, fut)])
            .await
            .unwrap();
        let out = cons_run.object_ref(c).unwrap();
        // Both runs are queued at the scheduler (decision cost 2ms);
        // the failure lands now, before the first grant.
        prod_run.finish().await;
        cons_run.finish().await;
        *consumer_result2.borrow_mut() = Some(out.ready().await);
        true
    });
    // Submissions take ~50us of client overhead; the first grant cannot
    // happen before 2ms. Kill the producer in between.
    sim.run_until_time(t(500));
    assert!(!job.is_finished(), "nothing can have been granted yet");
    rt.fail_client(producer_id);
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    assert_eq!(job.try_take(), Some(true));
    match consumer_result.borrow().as_ref().unwrap() {
        Err(err) => assert!(
            matches!(
                err.reason(),
                FailureReason::Upstream(_) | FailureReason::Client(_)
            ),
            "want upstream/client failure, got {:?}",
            err.reason()
        ),
        Ok(()) => panic!("consumer must observe an error, not stale data"),
    }
    assert!(rt.core().store.is_empty());
}

/// Seeded chaos matrix: random fault schedules x random chained
/// workloads never wedge a future, never leak store objects or HBM,
/// and never stall the spare island.
#[test]
fn chaos_matrix_upholds_invariants() {
    // At least 8 seeds (the CI chaos job runs this suite in release).
    for seed in [1, 2, 3, 4, 5, 6, 7, 8, 0xC0FFEE, 0xBAD5EED] {
        let report = run_chaos(&ChaosSpec::seeded(seed));
        assert!(
            report.outcome.is_quiescent(),
            "seed {seed}: wedged with faults {:?}: {:?}",
            report.faults,
            report.outcome
        );
        assert!(
            report.resolved_ok + report.resolved_err >= 1,
            "seed {seed}: nothing resolved"
        );
        assert_eq!(
            report.store_len, 0,
            "seed {seed}: store leaked {} objects (faults {:?})",
            report.store_len, report.faults
        );
        assert_eq!(
            report.hbm_leaked, 0,
            "seed {seed}: leaked {} HBM bytes (faults {:?})",
            report.hbm_leaked, report.faults
        );
        assert!(
            report.survivor_kernels > 0,
            "seed {seed}: spare island made no progress (faults {:?})",
            report.faults
        );
    }
}

/// The same seed reproduces a bit-identical event trace — fault
/// schedule included (it is stamped on the `faults` trace track).
#[test]
fn chaos_runs_are_bit_identical_for_equal_seeds() {
    for seed in [3, 0xD15EA5E] {
        let a = run_chaos(&ChaosSpec::seeded(seed));
        let b = run_chaos(&ChaosSpec::seeded(seed));
        assert_eq!(a.faults, b.faults, "seed {seed}: fault schedules differ");
        assert_eq!(
            a.trace,
            b.trace,
            "seed {seed}: traces differ (fingerprints {:x} vs {:x})",
            a.trace_fingerprint(),
            b.trace_fingerprint()
        );
        assert_eq!(a.resolved_ok, b.resolved_ok);
        assert_eq!(a.resolved_err, b.resolved_err);
        assert_eq!(a.survivor_kernels, b.survivor_kernels);
    }
}
