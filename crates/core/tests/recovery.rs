//! Tiered-store recovery acceptance tests (ISSUE 8).
//!
//! The bar: under a seeded fault plan, an object lost to a device kill
//! is restored from its disk checkpoint or recomputed via lineage, and
//! the consuming run completes successfully — no `ProducerFailed`
//! reaches the client. With recovery disabled, the seed semantics are
//! unchanged (the error surfaces).

use pathways_sim::Lock;
use std::sync::Arc;

use pathways_core::{
    FaultSpec, FnSpec, InputSpec, ObjectError, PathwaysConfig, PathwaysRuntime, SliceRequest,
    TierConfig,
};
use pathways_net::{ClusterSpec, DeviceId, HostId, IslandId, NetworkParams};
use pathways_sim::{FaultPlan, Sim, SimDuration, SimTime};

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

fn tiered_cfg(checkpoint_us: Option<u64>) -> PathwaysConfig {
    PathwaysConfig {
        tiers: Some(TierConfig {
            checkpoint_interval: checkpoint_us.map(SimDuration::from_micros),
            ..TierConfig::default()
        }),
        ..PathwaysConfig::default()
    }
}

fn tiered_rt(sim: &Sim, cfg: PathwaysConfig) -> PathwaysRuntime {
    PathwaysRuntime::new(
        sim,
        ClusterSpec::islands_of(2, 2, 4),
        NetworkParams::tpu_cluster(),
        cfg,
    )
}

/// The core scenario, shared by the lineage and checkpoint variants: a
/// producer completes on island 0, a scripted fault kills one of the
/// devices holding its output, and a consumer submitted *after* the
/// kill binds the producer's `ObjectRef`. Returns (producer result
/// re-checked after recovery, consumer result, trace).
fn kill_and_consume(
    seed: u64,
    cfg: PathwaysConfig,
) -> (
    Result<(), ObjectError>,
    Result<(), ObjectError>,
    PathwaysRuntime,
    pathways_sim::trace::TraceLog,
) {
    let mut sim = Sim::new(seed);
    let rt = tiered_rt(&sim, cfg);
    rt.install_fault_plan(FaultPlan::new().at(t(1500), FaultSpec::Device(DeviceId(1))));
    // Client on island 1's host: its agent outlives the island-0 fault.
    let client = rt.client(HostId(2));
    let results = Arc::new(Lock::new(None));
    let results2 = Arc::clone(&results);
    sim.spawn("client", async move {
        let h = client.handle().clone();
        let slice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("producer");
        let k = b.computation(
            FnSpec::compute_only("p", SimDuration::from_micros(100)).with_output_bytes(1 << 12),
            &slice,
        );
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let out = run.object_ref(k).unwrap();
        run.finish().await;
        assert_eq!(out.ready().await, Ok(()), "producer itself must succeed");

        // The fault lands at t=1.5ms (after any checkpoint the config
        // schedules has committed). Submit the consumer after it.
        h.sleep_until(t(2000)).await;
        let cslice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("consumer");
        let x = b.input(InputSpec::new("x", out.shards()));
        let c = b.computation(
            FnSpec::compute_only("c", SimDuration::from_micros(100)),
            &cslice,
        );
        b.reshard_edge(x, c, 1 << 12);
        let crun = client
            .submit_with(&client.prepare(&b.build().unwrap()), &[(x, out.clone())])
            .await
            .unwrap();
        let cout = crun.object_ref(c).unwrap();
        crun.finish().await;
        let consumer_result = cout.ready().await;
        // Re-check the producer's handle after everything settled: no
        // ProducerFailed may ever have surfaced on it.
        let producer_result = out.ready().await;
        *results2.lock() = Some((producer_result, consumer_result));
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    let (producer_result, consumer_result) = results.lock().take().unwrap();
    // Refcounts drained and tier ledgers conserved after recovery.
    let store = &rt.core().store;
    assert!(store.is_empty(), "store leaked {}", store.len());
    assert!(store.tiers_conserved(), "tier byte ledgers drifted");
    assert_eq!(
        store.dram_used() + store.disk_used(),
        0,
        "tier bytes leaked"
    );
    for dev in rt.core().devices.values() {
        assert_eq!(dev.hbm().used(), 0, "HBM leaked on {:?}", dev.id());
    }
    let trace = sim.take_trace();
    (producer_result, consumer_result, rt, trace)
}

/// No checkpointing configured: the lost object recomputes via lineage
/// (re-submission through the re-lowering path), and the consumer never
/// observes the loss. Replays bit-identically.
#[test]
fn device_kill_recomputes_lost_object_via_lineage() {
    let run = || kill_and_consume(11, tiered_cfg(None));
    let (producer, consumer, rt, trace_a) = run();
    assert_eq!(producer, Ok(()), "no ProducerFailed may reach the client");
    assert_eq!(consumer, Ok(()), "consumer must complete on recovered data");
    let stats = rt.faults().recovery_stats();
    assert_eq!(
        stats.recomputed, 1,
        "exactly one lineage recompute: {stats:?}"
    );
    assert_eq!(stats.restored, 0, "no checkpoint exists to restore from");
    assert_eq!(stats.abandoned, 0, "recovery must not fall through");
    // The device loss was healed AND the data recovered.
    assert!(rt.faults().heal_events().iter().any(|e| e.healed()));

    let (_, _, _, trace_b) = run();
    assert_eq!(trace_a, trace_b, "recovery must replay bit-identically");
}

/// With periodic checkpoints, the same kill restores from disk instead
/// of recomputing — and the restore is cheaper than a recompute in
/// virtual time (that delta is what `fig_tier` sweeps).
#[test]
fn device_kill_restores_object_from_checkpoint() {
    let (producer, consumer, rt, trace_a) = kill_and_consume(11, tiered_cfg(Some(200)));
    assert_eq!(producer, Ok(()), "no ProducerFailed may reach the client");
    assert_eq!(consumer, Ok(()), "consumer must complete on restored data");
    let stats = rt.faults().recovery_stats();
    assert_eq!(stats.restored, 1, "checkpoint restore must win: {stats:?}");
    assert_eq!(stats.recomputed, 0, "restore preempts recompute");
    assert!(
        rt.core().store.tier_stats().checkpoints >= 1,
        "a checkpoint must have committed before the kill"
    );
    let (_, _, _, trace_b) = kill_and_consume(11, tiered_cfg(Some(200)));
    assert_eq!(trace_a, trace_b, "restore must replay bit-identically");
}

/// Recovery off (tiers on): the seed failure semantics are preserved —
/// the kill surfaces `ProducerFailed` to the consumer.
#[test]
fn recovery_disabled_surfaces_producer_failed() {
    let cfg = PathwaysConfig {
        tiers: Some(TierConfig {
            recovery: false,
            checkpoint_interval: None,
            ..TierConfig::default()
        }),
        ..PathwaysConfig::default()
    };
    let (producer, consumer, rt, _) = kill_and_consume(11, cfg);
    assert!(
        matches!(producer, Err(ObjectError::ProducerFailed { .. })),
        "without recovery the loss is terminal: {producer:?}"
    );
    assert!(
        matches!(consumer, Err(ObjectError::ProducerFailed { .. })),
        "consumer of a dead object must observe the error: {consumer:?}"
    );
    let stats = rt.faults().recovery_stats();
    assert_eq!(
        (stats.restored, stats.recomputed, stats.abandoned),
        (0, 0, 0)
    );
}

/// A device kill *mid-production* fails the producing run, but its sink
/// has lineage: the run loss is absorbed, the program re-submits, and a
/// consumer bound before the kill completes on the recomputed object.
#[test]
fn in_flight_production_loss_recomputes_and_unblocks_consumer() {
    let mut sim = Sim::new(3);
    let rt = tiered_rt(&sim, tiered_cfg(None));
    // Mid-flight of a 2ms producer kernel.
    rt.install_fault_plan(FaultPlan::new().at(t(500), FaultSpec::Device(DeviceId(2))));
    let client = rt.client(HostId(2));
    let results = Arc::new(Lock::new(None));
    let results2 = Arc::clone(&results);
    sim.spawn("client", async move {
        let slice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("producer");
        let k = b.computation(
            FnSpec::compute_only("p", SimDuration::from_millis(2)).with_output_bytes(1 << 12),
            &slice,
        );
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let out = run.object_ref(k).unwrap();
        // Consumer bound BEFORE the fault, on the other island so the
        // kill does not touch its own footprint.
        let cslice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(1)))
            .unwrap();
        let mut b = client.trace("consumer");
        let x = b.input(InputSpec::new("x", out.shards()));
        let c = b.computation(
            FnSpec::compute_only("c", SimDuration::from_micros(100)),
            &cslice,
        );
        b.reshard_edge(x, c, 1 << 12);
        let crun = client
            .submit_with(&client.prepare(&b.build().unwrap()), &[(x, out.clone())])
            .await
            .unwrap();
        let cout = crun.object_ref(c).unwrap();
        run.finish().await;
        crun.finish().await;
        let pair = (out.ready().await, cout.ready().await);
        *results2.lock() = Some(pair);
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    let (producer, consumer) = results.lock().take().unwrap();
    assert_eq!(
        producer,
        Ok(()),
        "in-flight loss must recover: {producer:?}"
    );
    assert_eq!(consumer, Ok(()), "consumer must complete: {consumer:?}");
    let stats = rt.faults().recovery_stats();
    assert_eq!(stats.recomputed, 1, "{stats:?}");
    assert_eq!(stats.abandoned, 0, "{stats:?}");
    let store = &rt.core().store;
    assert!(store.is_empty(), "store leaked {}", store.len());
    assert!(store.tiers_conserved());
    for dev in rt.core().devices.values() {
        assert_eq!(dev.hbm().used(), 0, "HBM leaked on {:?}", dev.id());
    }
}

/// Attempt exhaustion: killing the recovered object's hardware more
/// times than `max_recovery_attempts` eventually surfaces the error —
/// recovery is bounded, never an infinite resubmit loop.
#[test]
fn recovery_attempts_are_bounded() {
    let mut sim = Sim::new(9);
    let cfg = PathwaysConfig {
        tiers: Some(TierConfig {
            checkpoint_interval: None,
            max_recovery_attempts: 1,
            ..TierConfig::default()
        }),
        ..PathwaysConfig::default()
    };
    let rt = tiered_rt(&sim, cfg);
    // First kill: recovered (one attempt). Second kill targets the
    // healed replacement hardware later; the budget (1) is spent, so the
    // second loss is terminal.
    let client = rt.client(HostId(2));
    let core = Arc::clone(rt.core());
    let results = Arc::new(Lock::new(None));
    let results2 = Arc::clone(&results);
    sim.spawn("client", async move {
        let h = client.handle().clone();
        let slice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .unwrap();
        let mut b = client.trace("producer");
        let k = b.computation(
            FnSpec::compute_only("p", SimDuration::from_micros(100)).with_output_bytes(1 << 12),
            &slice,
        );
        let run = client.submit(&client.prepare(&b.build().unwrap())).await;
        let out = run.object_ref(k).unwrap();
        run.finish().await;
        assert_eq!(out.ready().await, Ok(()));
        h.sleep_until(t(10_000)).await;
        let after_first = out.ready().await;
        h.sleep_until(t(20_000)).await;
        let after_second = out.ready().await;
        *results2.lock() = Some((after_first, after_second));
    });
    // The recomputed copy lands in island-0 host DRAM; a second wave of
    // *host* kills loses it again with the attempt budget already spent.
    let faults = Arc::clone(rt.faults());
    let h = sim.handle();
    h.clone().spawn("killer", async move {
        h.sleep_until(t(1500)).await;
        faults.inject(&FaultSpec::Device(DeviceId(1)));
        h.sleep_until(t(12_000)).await;
        faults.inject(&FaultSpec::Host(HostId(0)));
        faults.inject(&FaultSpec::Host(HostId(1)));
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    let (after_first, after_second) = results.lock().take().unwrap();
    assert_eq!(after_first, Ok(()), "first loss recovers");
    assert!(
        matches!(after_second, Err(ObjectError::ProducerFailed { .. })),
        "exhausted budget must surface the error: {after_second:?}"
    );
    let stats = rt.faults().recovery_stats();
    assert_eq!(stats.recomputed, 1, "{stats:?}");
    assert!(stats.abandoned >= 1, "{stats:?}");
    assert!(core.store.tiers_conserved());
}
