//! Refcount-balance property tests (ObjectRef era): across random
//! schedules of plain, chained and abandoned runs — with and without
//! random fault injection — once every `ObjectRef` and `RunResult` has
//! been dropped the object store is empty and every HBM lease has been
//! returned.

use proptest::prelude::*;

use pathways_core::{
    FaultSpec, FnSpec, InputSpec, ObjectRef, PathwaysConfig, PathwaysRuntime, Run, SliceRequest,
    TierConfig,
};
use pathways_net::{ClusterSpec, DeviceId, HostId, NetworkParams};
use pathways_sim::{FaultPlan, Sim, SimDuration, SimTime};

/// Per-program action in the random schedule.
///
/// `mode % 3`: 0 = submit and keep the run, 1 = chain on the previous
/// kept output (if any) through an external input, 2 = submit and
/// abandon the run immediately (outputs discarded mid-flight).
fn schedule() -> impl Strategy<Value = Vec<(u8, u16, u8)>> {
    // (slice divisor selector, compute us, mode)
    proptest::collection::vec((1u8..3, 10u16..300, 0u8..3), 1..7)
}

/// Random fault schedule: `(kind, target selector, at_us)`.
/// `kind % 2`: 0 = device failure, 1 = host failure.
fn fault_schedule() -> impl Strategy<Value = Vec<(u8, u8, u16)>> {
    proptest::collection::vec((0u8..2, 0u8..16, 20u16..2_000), 0..4)
}

/// Tight budgets so random schedules actually spill HBM->DRAM and
/// demote DRAM->disk: ~6 64-KiB shards of HBM per device, ~4 of DRAM
/// per host, checkpoints every 100us.
fn tiered_cfg() -> PathwaysConfig {
    PathwaysConfig {
        hbm_per_device: 384 << 10,
        tiers: Some(TierConfig {
            dram_per_host: 256 << 10,
            checkpoint_interval: Some(SimDuration::from_micros(100)),
            ..TierConfig::default()
        }),
        ..PathwaysConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Storage-engine satellite: a random train of single-shard dirty
    /// marks and forced delta-checkpoint commits, under a random
    /// keep-last-K GC policy and segments small enough that the base
    /// epoch seals one. Whatever the train, (a) the restore set always
    /// covers the whole object — GC never reclaims an epoch holding
    /// the newest durable copy of a shard, so base + deltas restore
    /// the same bytes a full checkpoint would; (b) the chain never
    /// holds more epochs than were committed; and (c) dropping the
    /// last ref drains every epoch's disk extent to zero with the tier
    /// ledgers conserved.
    #[test]
    fn delta_checkpoint_chains_stay_restorable_and_drain(
        train in proptest::collection::vec(0u32..4, 1..12),
        keep in 1u32..5,
        seed in any::<u64>(),
    ) {
        const SHARD: u64 = 4 << 10;
        let mut sim = Sim::new(seed);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(1),
            NetworkParams::tpu_cluster(),
            PathwaysConfig {
                tiers: Some(TierConfig {
                    // Epochs are driven explicitly; the base epoch
                    // (4 x 4 KiB) exactly fills and seals one segment.
                    checkpoint_interval: None,
                    checkpoint_keep: keep,
                    disk_segment_bytes: 16 << 10,
                    ..TierConfig::default()
                }),
                ..PathwaysConfig::default()
            },
        );
        let client = rt.client(HostId(0));
        let core = std::sync::Arc::clone(rt.core());
        let store = core.store.clone();
        let train2 = train.clone();
        let committed_bound = train.len() + 1;
        let job = sim.spawn("client", async move {
            let slice = client.virtual_slice(SliceRequest::devices(4)).unwrap();
            let mut b = client.trace("state");
            let k = b.computation(
                FnSpec::compute_only("k", SimDuration::from_micros(100))
                    .with_output_bytes(SHARD),
                &slice,
            );
            let run = client.submit(&client.prepare(&b.build().unwrap())).await;
            let out = run.object_ref(k).unwrap();
            run.finish().await;
            assert_eq!(out.ready().await, Ok(()), "producer never fails here");
            let id = out.id();
            assert!(store.checkpoint_now(id).is_some(), "base epoch commits");
            for s in train2 {
                assert!(store.dirty_shard(id, s), "object is live");
                assert!(store.checkpoint_now(id).is_some(), "delta commits");
            }
            let restorable = store.checkpoint_restorable_bytes(id);
            let epochs = store.checkpoint_epochs(id);
            let live = store.disk_used();
            drop(out);
            (restorable, epochs, live)
        });
        let outcome = sim.run();
        prop_assert!(outcome.is_quiescent(), "wedged: {:?}", outcome);
        let (restorable, epochs, live) = job.try_take().expect("client finished");
        prop_assert_eq!(
            restorable,
            Some(4 * SHARD),
            "restore set must always cover the whole object (train {:?}, keep {})",
            train,
            keep
        );
        prop_assert!(
            epochs >= 1 && epochs <= committed_bound,
            "chain holds {} epochs after {} commits",
            epochs,
            committed_bound
        );
        prop_assert!(
            live >= 4 * SHARD,
            "live disk bytes ({live}) must cover the restore set"
        );
        prop_assert_eq!(
            core.store.disk_used(), 0,
            "epoch extents leaked after the last ref dropped (train {:?}, keep {})",
            &train, keep
        );
        prop_assert!(
            core.store.is_empty(),
            "store leaked {} objects",
            core.store.len()
        );
        prop_assert!(
            core.store.tiers_conserved(),
            "tier byte ledgers drifted (train {:?}, keep {})",
            &train,
            keep
        );
    }

    #[test]
    fn refcounts_balance_across_random_chained_schedules(
        hosts in 1u32..3,
        progs in schedule(),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(hosts),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let n_devices = hosts * 8;
        let core = std::sync::Arc::clone(rt.core());
        let progs2 = progs.clone();
        let job = sim.spawn("client", async move {
            let mut kept: Vec<Run> = Vec::new();
            // The most recent kept output, usable as a chain source even
            // if its producing Run was dropped.
            let mut last: Option<ObjectRef> = None;
            for (i, (sel, us, mode)) in progs2.iter().enumerate() {
                let devs = (n_devices / *sel as u32).max(1);
                let slice = client.virtual_slice(SliceRequest::devices(devs)).unwrap();
                let mut b = client.trace(format!("p{i}"));
                let chain_src = if *mode == 1 { last.clone() } else { None };
                let input = chain_src.as_ref().map(|src| {
                    b.input(InputSpec::new("x", src.shards()))
                });
                let k = b.computation(
                    FnSpec::compute_only("k", SimDuration::from_micros(*us as u64))
                        .with_output_bytes(1 << 12),
                    &slice,
                );
                if let Some(x) = input {
                    b.reshard_edge(x, k, 1 << 12);
                }
                let prepared = client.prepare(&b.build().unwrap());
                let run = match (input, chain_src) {
                    (Some(x), Some(src)) => client
                        .submit_with(&prepared, &[(x, src)])
                        .await
                        .unwrap(),
                    _ => client.submit(&prepared).await,
                };
                last = run.object_ref(k);
                if *mode == 2 {
                    drop(run); // abandon: outputs are discarded
                } else {
                    kept.push(run);
                }
            }
            drop(last);
            // Await every kept run; results (and their ObjectRefs) drop
            // immediately.
            for run in kept {
                run.finish().await;
            }
            true
        });
        let outcome = sim.run();
        prop_assert!(outcome.is_quiescent(), "deadlock: {:?}", outcome);
        prop_assert_eq!(job.try_take(), Some(true));
        prop_assert!(
            core.store.is_empty(),
            "store leaked {} objects",
            core.store.len()
        );
        for dev in core.devices.values() {
            prop_assert_eq!(
                dev.hbm().used(),
                0,
                "HBM lease leaked on {:?}",
                dev.id()
            );
        }
    }

    /// Satellite of the fault-injection tentpole: random device/host
    /// fault schedules against the same random plain/chained/abandoned
    /// workloads never leak HBM or store objects, and never wedge a
    /// future — failed runs resolve through typed errors, and refcounts
    /// still balance to an empty store.
    #[test]
    fn refcounts_balance_under_random_faults(
        hosts in 1u32..3,
        progs in schedule(),
        faults in fault_schedule(),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(hosts),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let n_devices = hosts * 8;
        let mut plan: FaultPlan<FaultSpec> = FaultPlan::new();
        for (kind, target, at_us) in &faults {
            let at = SimTime::ZERO + SimDuration::from_micros(*at_us as u64);
            let spec = match kind % 2 {
                0 => FaultSpec::Device(DeviceId(u32::from(*target) % n_devices)),
                _ => FaultSpec::Host(HostId(u32::from(*target) % hosts)),
            };
            plan.push(at, spec);
        }
        rt.install_fault_plan(plan);
        let client = rt.client(HostId(0));
        let core = std::sync::Arc::clone(rt.core());
        let progs2 = progs.clone();
        let job = sim.spawn("client", async move {
            let mut kept: Vec<Run> = Vec::new();
            let mut last: Option<ObjectRef> = None;
            let mut resolved = 0u32;
            for (i, (sel, us, mode)) in progs2.iter().enumerate() {
                let devs = (n_devices / *sel as u32).max(1);
                // Dead devices are detached from the resource manager;
                // a cluster that shrank below the request is a
                // legitimate refusal, not a leak — skip the program.
                let Ok(slice) = client.virtual_slice(SliceRequest::devices(devs)) else {
                    continue;
                };
                let mut b = client.trace(format!("p{i}"));
                let chain_src = if *mode == 1 { last.clone() } else { None };
                let input = chain_src.as_ref().map(|src| {
                    b.input(InputSpec::new("x", src.shards()))
                });
                let k = b.computation(
                    FnSpec::compute_only("k", SimDuration::from_micros(*us as u64))
                        .with_allreduce(4)
                        .with_output_bytes(1 << 12),
                    &slice,
                );
                if let Some(x) = input {
                    b.reshard_edge(x, k, 1 << 12);
                }
                let prepared = client.prepare(&b.build().unwrap());
                let run = match (input, chain_src) {
                    (Some(x), Some(src)) => client
                        .submit_with(&prepared, &[(x, src)])
                        .await
                        .unwrap(),
                    _ => client.submit(&prepared).await,
                };
                last = run.object_ref(k);
                if *mode == 2 {
                    drop(run);
                } else {
                    kept.push(run);
                }
            }
            drop(last);
            for run in kept {
                let result = run.finish().await;
                // Every output future resolves, to data or to a typed
                // error — never a hang.
                for (_, objref) in result.refs() {
                    let _ = objref.ready().await;
                    resolved += 1;
                }
            }
            resolved
        });
        let outcome = sim.run();
        prop_assert!(outcome.is_quiescent(), "wedged under faults {:?}: {:?}", faults, outcome);
        prop_assert!(job.try_take().is_some(), "client never finished");
        prop_assert!(
            core.store.is_empty(),
            "store leaked {} objects under faults {:?}",
            core.store.len(),
            faults
        );
        for dev in core.devices.values() {
            prop_assert_eq!(
                dev.hbm().used(),
                0,
                "HBM lease leaked on {:?} under faults {:?}",
                dev.id(),
                &faults
            );
        }
    }

    /// Tiered satellite: random schedules under HBM/DRAM pressure and
    /// random faults — so shards spill, demote, checkpoint, restore and
    /// recompute — always keep the tier byte ledgers conserved, and
    /// drain store, HBM, DRAM and disk to zero once every handle drops.
    ///
    /// Outputs are retained until the end (that is what builds spill
    /// pressure) and submission is sequential (each output awaited
    /// before the next submit), bounding un-spillable in-flight bytes so
    /// back-pressure cannot wedge against the tiny HBM budget.
    #[test]
    fn tiers_conserve_bytes_under_pressure_and_faults(
        hosts in 1u32..3,
        progs in schedule(),
        faults in fault_schedule(),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(hosts),
            NetworkParams::tpu_cluster(),
            tiered_cfg(),
        );
        let n_devices = hosts * 8;
        let mut plan: FaultPlan<FaultSpec> = FaultPlan::new();
        for (kind, target, at_us) in &faults {
            let at = SimTime::ZERO + SimDuration::from_micros(*at_us as u64);
            let spec = match kind % 2 {
                0 => FaultSpec::Device(DeviceId(u32::from(*target) % n_devices)),
                _ => FaultSpec::Host(HostId(u32::from(*target) % hosts)),
            };
            plan.push(at, spec);
        }
        rt.install_fault_plan(plan);
        let client = rt.client(HostId(0));
        let core = std::sync::Arc::clone(rt.core());
        let progs2 = progs.clone();
        let job = sim.spawn("client", async move {
            let mut kept: Vec<Run> = Vec::new();
            let mut retained: Vec<ObjectRef> = Vec::new();
            let mut last: Option<ObjectRef> = None;
            for (i, (sel, us, mode)) in progs2.iter().enumerate() {
                let devs = (n_devices / *sel as u32).max(1);
                let Ok(slice) = client.virtual_slice(SliceRequest::devices(devs)) else {
                    continue;
                };
                let mut b = client.trace(format!("p{i}"));
                let chain_src = if *mode == 1 { last.clone() } else { None };
                let input = chain_src.as_ref().map(|src| {
                    b.input(InputSpec::new("x", src.shards()))
                });
                let k = b.computation(
                    FnSpec::compute_only("k", SimDuration::from_micros(*us as u64))
                        .with_output_bytes(64 << 10),
                    &slice,
                );
                if let Some(x) = input {
                    b.reshard_edge(x, k, 64 << 10);
                }
                let prepared = client.prepare(&b.build().unwrap());
                let run = match (input, chain_src) {
                    (Some(x), Some(src)) => client
                        .submit_with(&prepared, &[(x, src)])
                        .await
                        .unwrap(),
                    _ => client.submit(&prepared).await,
                };
                let out = run.object_ref(k);
                if let Some(o) = &out {
                    // Resolve (to data or error) before the next submit.
                    let _ = o.ready().await;
                }
                last = out.clone();
                if *mode == 2 {
                    drop(run);
                } else {
                    kept.push(run);
                    if let Some(o) = out {
                        retained.push(o); // pressure: hold until the end
                    }
                }
            }
            drop(last);
            for run in kept {
                run.finish().await;
            }
            drop(retained);
            true
        });
        let outcome = sim.run();
        prop_assert!(outcome.is_quiescent(), "wedged under faults {:?}: {:?}", faults, outcome);
        prop_assert_eq!(job.try_take(), Some(true));
        prop_assert!(
            core.store.tiers_conserved(),
            "tier byte ledgers drifted under faults {:?}",
            faults
        );
        prop_assert!(
            core.store.is_empty(),
            "store leaked {} objects under faults {:?}",
            core.store.len(),
            faults
        );
        prop_assert_eq!(
            core.store.dram_used(), 0,
            "DRAM-tier bytes leaked under faults {:?}", &faults
        );
        prop_assert_eq!(
            core.store.disk_used(), 0,
            "disk-tier bytes leaked under faults {:?}", &faults
        );
        for dev in core.devices.values() {
            prop_assert_eq!(
                dev.hbm().used(),
                0,
                "HBM lease leaked on {:?} under faults {:?}",
                dev.id(),
                &faults
            );
        }
    }
}
