//! End-to-end integration tests of the Pathways runtime on the
//! simulated cluster.

use std::collections::BTreeMap;

use pathways_core::{
    DispatchMode, FnSpec, InputSpec, PathwaysConfig, PathwaysRuntime, SchedPolicy, SliceRequest,
    SubmitError,
};
use pathways_net::{ClientId, ClusterSpec, HostId, IslandId, NetworkParams};
use pathways_sim::{Sim, SimDuration};

fn default_rt(sim: &Sim, spec: ClusterSpec) -> PathwaysRuntime {
    PathwaysRuntime::new(
        sim,
        spec,
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    )
}

#[test]
fn single_computation_round_trip() {
    let mut sim = Sim::new(0);
    let rt = default_rt(&sim, ClusterSpec::config_b(2));
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(16)).unwrap();
    let mut b = client.trace("one");
    let comp = b.computation(
        FnSpec::compute_only("f", SimDuration::from_millis(1)).with_allreduce(4),
        &slice,
    );
    let program = b.build().unwrap();
    let prepared = client.prepare(&program);
    let job = sim.spawn("client", async move {
        let r = client.run(&prepared).await;
        (r.objects().len(), r.object(comp).is_some())
    });
    sim.run_to_quiescence();
    let (n, has) = job.try_take().unwrap();
    assert_eq!(n, 1);
    assert!(has);
}

#[test]
fn chained_program_executes_in_dependency_order() {
    let mut sim = Sim::new(0);
    let rt = default_rt(&sim, ClusterSpec::config_b(2));
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
    let mut b = client.trace("chain");
    let f =
        |n: &str| FnSpec::compute_only(n, SimDuration::from_micros(500)).with_output_bytes(1 << 20);
    let c0 = b.computation(f("a"), &slice);
    let c1 = b.computation(f("b"), &slice);
    let c2 = b.computation(f("c"), &slice);
    b.edge(c0, c1, 1 << 20);
    b.edge(c1, c2, 1 << 20);
    let program = b.build().unwrap();
    let prepared = client.prepare(&program);
    // Compact representation: 3 comps + Result = 4 plaque nodes; 2 fwd +
    // 2 back + 1 result = 5 edges — independent of the 8-way sharding.
    assert_eq!(prepared.graph_size(), (4, 5));
    let h = sim.handle();
    let job = sim.spawn("client", async move {
        client.run(&prepared).await;
        h.now()
    });
    sim.run_to_quiescence();
    let end = job.try_take().unwrap();
    // At least 3 x 500us of dependent compute must have elapsed.
    assert!(end.as_nanos() >= 1_500_000, "finished too fast: {end}");
}

#[test]
fn concurrent_clients_with_collectives_do_not_deadlock() {
    // The centerpiece: many clients time-share the same devices with
    // gang collectives. Without the centralized scheduler this workload
    // deadlocks (see pathways-device tests); with it, it must complete.
    let mut sim = Sim::new(7);
    let rt = default_rt(&sim, ClusterSpec::config_b(2));
    for c in 0..4 {
        let client = rt.client(HostId(c % 2));
        let slice = client.virtual_slice(SliceRequest::devices(16)).unwrap();
        let mut b = client.trace(format!("p{c}"));
        let comp = FnSpec::compute_only("step", SimDuration::from_micros(100)).with_allreduce(4);
        b.computation(comp, &slice);
        let program = b.build().unwrap();
        let prepared = client.prepare(&program);
        sim.spawn(format!("client{c}"), async move {
            for _ in 0..10 {
                client.run(&prepared).await;
            }
        });
    }
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "deadlocked: {outcome:?}");
    // All 40 programs were granted by the island scheduler.
    assert_eq!(rt.scheduler(IslandId(0)).granted_programs(), 40);
}

#[test]
fn parallel_dispatch_beats_sequential_on_pipelines() {
    // A 8-stage pipeline of short computations on different hosts: the
    // host-side work dominates, so parallel async dispatch should win
    // clearly (Figure 7's effect).
    let run_mode = |mode: DispatchMode| {
        let mut sim = Sim::new(0);
        let cfg = PathwaysConfig {
            dispatch: mode,
            ..PathwaysConfig::default()
        };
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_a(8),
            NetworkParams::tpu_cluster(),
            cfg,
        );
        let client = rt.client(HostId(0));
        // One 4-device slice per host (stage), like the paper's setup.
        let topo = rt.topology();
        let mut b = client.trace("pipeline");
        let mut prev = None;
        for host in topo.hosts() {
            let island = topo.island_of_host(host);
            let _ = island;
            let slice = client.virtual_slice(SliceRequest::devices(4)).unwrap();
            let comp = b.computation(
                FnSpec::compute_only("stage", SimDuration::from_micros(50))
                    .with_output_bytes(1 << 10),
                &slice,
            );
            if let Some(p) = prev {
                b.reshard_edge(p, comp, 1 << 10);
            }
            prev = Some(comp);
        }
        let program = b.build().unwrap();
        let prepared = client.prepare(&program);
        let h = sim.handle();
        let job = sim.spawn("client", async move {
            for _ in 0..20 {
                client.run(&prepared).await;
            }
            h.now()
        });
        sim.run_to_quiescence();
        job.try_take().unwrap().as_nanos()
    };
    let par = run_mode(DispatchMode::Parallel);
    let seq = run_mode(DispatchMode::Sequential);
    assert!(
        par < seq,
        "parallel ({par} ns) should beat sequential ({seq} ns)"
    );
}

#[test]
fn chained_submissions_dispatch_before_producers_finish() {
    // The tentpole acceptance test: three programs chained through
    // ObjectRef external inputs, submitted back to back without awaiting
    // any intermediate run. Dispatch of the whole chain (client submits,
    // scheduler arrivals, grants) overlaps the first program's device
    // execution, while each consuming kernel still waits for its
    // producer's per-shard readiness events.
    let mut sim = Sim::new(0);
    let rt = default_rt(&sim, ClusterSpec::config_b(2));
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();

    let producer_us = 500;
    let consumer_us = 300;
    let mut b1 = client.trace("p1");
    let k1 = b1.computation(
        FnSpec::compute_only("k1", SimDuration::from_micros(producer_us))
            .with_output_bytes(1 << 16),
        &slice,
    );
    let p1 = client.prepare(&b1.build().unwrap());

    let chained = |name: &str| {
        let mut b = client.trace(name);
        let x = b.input(InputSpec::new("x", 8));
        let k = b.computation(
            FnSpec::compute_only("k", SimDuration::from_micros(consumer_us))
                .with_output_bytes(1 << 16),
            &slice,
        );
        b.edge(x, k, 1 << 16);
        (client.prepare(&b.build().unwrap()), x, k)
    };
    let (p2, x2, k2) = chained("p2");
    let (p3, x3, k3) = chained("p3");

    let h = sim.handle();
    let job = sim.spawn("client", async move {
        let r1 = client.submit(&p1).await;
        let o1 = r1.object_ref(k1).unwrap();
        assert!(!o1.is_ready(), "output future exists before any kernel");
        let r2 = client.submit_with(&p2, &[(x2, o1.clone())]).await.unwrap();
        let o2 = r2.object_ref(k2).unwrap();
        let r3 = client.submit_with(&p3, &[(x3, o2.clone())]).await.unwrap();
        let o3 = r3.object_ref(k3).unwrap();
        let runs = (r1.run(), r2.run(), r3.run());
        let t_submitted = h.now();
        // Only now await anything: record each program's completion time
        // via its output future (readiness is set at kernel completion).
        o1.ready().await.unwrap();
        let t1 = h.now();
        o2.ready().await.unwrap();
        let t2 = h.now();
        o3.ready().await.unwrap();
        let t3 = h.now();
        // Drain the runs so the store empties once refs drop.
        r1.finish().await;
        r2.finish().await;
        r3.finish().await;
        (runs, t_submitted, t1, t2, t3)
    });
    sim.run_to_quiescence();
    let ((run1, run2, run3), t_submitted, t1, t2, t3) = job.try_take().unwrap();

    // The entire chain was dispatched from the client before program 1's
    // kernels finished.
    assert!(
        t_submitted < t1,
        "chain submitted at {t_submitted}, first program finished at {t1}"
    );
    // Programs 2 and 3 reached the island scheduler before program 1's
    // kernels finished — the paper's sequential-vs-parallel dispatch gap.
    let sched = rt.scheduler(IslandId(0));
    let a1 = sched.arrival_time(run1).expect("run1 scheduled");
    let a2 = sched.arrival_time(run2).expect("run2 scheduled");
    let a3 = sched.arrival_time(run3).expect("run3 scheduled");
    assert!(
        a1 < t1 && a2 < t1 && a3 < t1,
        "arrivals {a1},{a2},{a3} vs kernel finish {t1}"
    );
    // ...but kernel starts still respect producer readiness: each stage
    // can only finish a full consumer-compute after its producer.
    assert!(
        t2 >= t1 + SimDuration::from_micros(consumer_us),
        "p2 finished at {t2}, p1 at {t1}: consumer ran before its input"
    );
    assert!(
        t3 >= t2 + SimDuration::from_micros(consumer_us),
        "p3 finished at {t3}, p2 at {t2}: consumer ran before its input"
    );
    // Everything dropped: no leaked objects.
    assert!(rt.core().store.is_empty());
}

#[test]
fn submit_with_validates_bindings() {
    let mut sim = Sim::new(0);
    let rt = default_rt(&sim, ClusterSpec::config_b(1));
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(4)).unwrap();

    let mut b = client.trace("producer");
    let k = b.computation(
        FnSpec::compute_only("k", SimDuration::from_micros(10)).with_output_bytes(64),
        &slice,
    );
    let producer = client.prepare(&b.build().unwrap());

    let mut b = client.trace("consumer");
    let x = b.input(InputSpec::new("x", 4));
    let c = b.computation(
        FnSpec::compute_only("c", SimDuration::from_micros(10)),
        &slice,
    );
    b.edge(x, c, 64);
    let consumer = client.prepare(&b.build().unwrap());

    let job = sim.spawn("client", async move {
        let run = client.submit(&producer).await;
        let oref = run.object_ref(k).unwrap();
        // Unbound input.
        let e1 = client.submit_with(&consumer, &[]).await.err().unwrap();
        assert_eq!(e1, SubmitError::UnboundInput { comp: x });
        // Binding a non-input computation.
        let e2 = client
            .submit_with(&consumer, &[(c, oref.clone())])
            .await
            .err()
            .unwrap();
        assert_eq!(e2, SubmitError::NotAnInput { comp: c });
        // Binding an id from some other program entirely.
        let stray = pathways_core::CompId(99);
        let e2b = client
            .submit_with(&consumer, &[(stray, oref.clone())])
            .await
            .err()
            .unwrap();
        assert_eq!(e2b, SubmitError::UnknownComputation { comp: stray });
        // Duplicate binding.
        let e3 = client
            .submit_with(&consumer, &[(x, oref.clone()), (x, oref.clone())])
            .await
            .err()
            .unwrap();
        assert_eq!(e3, SubmitError::DuplicateBinding { comp: x });
        // A correct binding works; drain everything.
        let ok = client.submit_with(&consumer, &[(x, oref)]).await.unwrap();
        ok.finish().await;
        run.finish().await;
        true
    });
    sim.run_to_quiescence();
    assert_eq!(job.try_take(), Some(true));
    assert!(rt.core().store.is_empty());
}

#[test]
fn abandoned_run_discards_outputs_without_leaks() {
    // Submit-and-forget: dropping the Run (and its ObjectRefs) before
    // the kernels execute discards the outputs — the late put_shard is
    // a no-op, nothing pins HBM, nothing panics.
    let mut sim = Sim::new(0);
    let rt = default_rt(&sim, ClusterSpec::config_b(1));
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
    let mut b = client.trace("fire-and-forget");
    b.computation(
        FnSpec::compute_only("k", SimDuration::from_micros(100)).with_output_bytes(1 << 20),
        &slice,
    );
    let prepared = client.prepare(&b.build().unwrap());
    let core = std::sync::Arc::clone(rt.core());
    sim.spawn("client", async move {
        let run = client.submit(&prepared).await;
        drop(run);
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "wedged: {outcome:?}");
    assert!(core.store.is_empty(), "discarded output leaked");
    for dev in core.devices.values() {
        assert_eq!(dev.hbm().used(), 0, "HBM lease leaked on {:?}", dev.id());
    }
}

#[test]
fn proportional_share_divides_device_time() {
    let mut sim = Sim::new(0);
    let weights: BTreeMap<ClientId, u32> = [
        (ClientId(0), 1),
        (ClientId(1), 2),
        (ClientId(2), 4),
        (ClientId(3), 8),
    ]
    .into_iter()
    .collect();
    let cfg = PathwaysConfig {
        policy: SchedPolicy::ProportionalShare(weights),
        sched_horizon: SimDuration::from_micros(500),
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(1),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    let device0 = {
        let core = rt.core();
        core.devices[&pathways_net::DeviceId(0)].clone()
    };
    for c in 0..4u32 {
        let client = rt.client_labeled(HostId(0), ["A", "B", "C", "D"][c as usize]);
        let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = client.trace(format!("p{c}"));
        b.computation(
            FnSpec::compute_only("step", SimDuration::from_micros(330)).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = client.prepare(&program);
        sim.spawn(format!("client{c}"), async move {
            // An effectively unbounded stream with a few programs
            // outstanding, so the scheduler is always contended and the
            // proportional shares are observable within the measurement
            // window.
            let mut outstanding = Vec::new();
            for _ in 0..12 {
                outstanding.push(Box::pin(client.run(&prepared)));
            }
            loop {
                let done = outstanding.remove(0);
                done.await;
                outstanding.push(Box::pin(client.run(&prepared)));
            }
        });
    }
    // Measure inside a fixed window while every client still has
    // backlog; totals would equalize if all streams ran to completion.
    sim.run_until_time(pathways_sim::SimTime::ZERO + SimDuration::from_millis(50));
    let stats = device0.stats();
    let a = stats.busy_by_program["A"].as_nanos() as f64;
    let d = stats.busy_by_program["D"].as_nanos() as f64;
    // Weight-8 client D should get several times more device time than
    // weight-1 client A under contention.
    assert!(
        d / a > 2.0,
        "expected proportional shares, got A={a}ns D={d}ns"
    );
}

#[test]
fn weighted_fair_divides_device_time() {
    // The same contended 1:2:4:8 scenario as the stride test, driven by
    // the new gang-aware WFQ engine end to end through the runtime.
    let mut sim = Sim::new(0);
    let weights: BTreeMap<ClientId, u32> = [
        (ClientId(0), 1),
        (ClientId(1), 2),
        (ClientId(2), 4),
        (ClientId(3), 8),
    ]
    .into_iter()
    .collect();
    let cfg = PathwaysConfig {
        policy: SchedPolicy::WeightedFair {
            weights,
            quantum: SimDuration::from_micros(500),
        },
        sched_horizon: SimDuration::from_micros(500),
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(1),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    assert_eq!(rt.scheduler(IslandId(0)).policy_name(), "wfq");
    let device0 = {
        let core = rt.core();
        core.devices[&pathways_net::DeviceId(0)].clone()
    };
    for c in 0..4u32 {
        let client = rt.client_labeled(HostId(0), ["A", "B", "C", "D"][c as usize]);
        let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = client.trace(format!("p{c}"));
        b.computation(
            FnSpec::compute_only("step", SimDuration::from_micros(330)).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = std::sync::Arc::new(client.prepare(&program));
        // Keep 12 submissions genuinely concurrent (submit, then finish
        // in a spawned task): WFQ shares device time among *backlogged*
        // clients, so the scheduler must actually see a backlog.
        let window = pathways_sim::sync::Semaphore::new(12);
        let h = sim.handle();
        sim.spawn(format!("client{c}"), async move {
            loop {
                let permit = window.acquire(1).await;
                let pending = client.submit(&prepared).await;
                h.spawn("run", async move {
                    let _p = permit;
                    pending.finish().await;
                });
            }
        });
    }
    sim.run_until_time(pathways_sim::SimTime::ZERO + SimDuration::from_millis(50));
    let stats = device0.stats();
    let a = stats.busy_by_program["A"].as_nanos() as f64;
    let d = stats.busy_by_program["D"].as_nanos() as f64;
    assert!(
        d / a > 3.0,
        "expected weighted-fair shares, got A={a}ns D={d}ns"
    );
}

#[test]
fn cross_island_program_transfers_over_dcn() {
    let mut sim = Sim::new(0);
    let rt = default_rt(&sim, ClusterSpec::config_c());
    let client = rt.client(HostId(0));
    let s0 = client
        .virtual_slice(SliceRequest::devices(32).in_island(IslandId(0)))
        .unwrap();
    let s1 = client
        .virtual_slice(SliceRequest::devices(32).in_island(IslandId(1)))
        .unwrap();
    let mut b = client.trace("two-island");
    let c0 = b.computation(
        FnSpec::compute_only("stage0", SimDuration::from_micros(200)).with_output_bytes(1 << 20),
        &s0,
    );
    let c1 = b.computation(
        FnSpec::compute_only("stage1", SimDuration::from_micros(200)),
        &s1,
    );
    b.edge(c0, c1, 1 << 20);
    let program = b.build().unwrap();
    let prepared = client.prepare(&program);
    let h = sim.handle();
    let job = sim.spawn("client", async move {
        client.run(&prepared).await;
        h.now()
    });
    sim.run_to_quiescence();
    let end = job.try_take().unwrap();
    // Must include both stages' compute plus a DCN transfer of 1 MiB.
    let p = NetworkParams::tpu_cluster();
    let dcn_floor = p.dcn_bandwidth.transfer_time(1 << 20);
    assert!(
        end.as_nanos() > 400_000 + dcn_floor.as_nanos() / 2,
        "cross-island run too fast: {end}"
    );
}

#[test]
fn failed_client_objects_are_garbage_collected() {
    let mut sim = Sim::new(0);
    let rt = default_rt(&sim, ClusterSpec::config_b(1));
    let client = rt.client(HostId(0));
    let cid = client.id();
    let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
    let mut b = client.trace("leaky");
    b.computation(
        FnSpec::compute_only("f", SimDuration::from_micros(10)).with_output_bytes(1 << 20),
        &slice,
    );
    let program = b.build().unwrap();
    let prepared = client.prepare(&program);
    let core = std::sync::Arc::clone(rt.core());
    let job = sim.spawn("client", async move {
        let result = client.run(&prepared).await;
        // "Fail" while holding the result: leak it.
        std::mem::forget(result);
    });
    sim.run_to_quiescence();
    assert!(job.is_finished());
    assert_eq!(core.store.len(), 1, "output should still be pinned");
    let freed = rt.fail_client(cid);
    assert_eq!(freed, 1);
    assert!(core.store.is_empty());
}

#[test]
fn device_utilization_reaches_saturation_with_concurrency() {
    // With several clients submitting 1ms computations concurrently,
    // device busy time should approach wall-clock time (Figure 8/11's
    // ~100% utilization claim).
    let mut sim = Sim::new(0);
    let rt = default_rt(&sim, ClusterSpec::config_b(1));
    let device0 = rt.core().devices[&pathways_net::DeviceId(0)].clone();
    for c in 0..4 {
        let client = rt.client(HostId(0));
        let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = client.trace(format!("p{c}"));
        b.computation(
            FnSpec::compute_only("step", SimDuration::from_millis(1)).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = client.prepare(&program);
        sim.spawn(format!("client{c}"), async move {
            let mut outstanding = Vec::new();
            for _ in 0..3 {
                outstanding.push(Box::pin(client.run(&prepared)));
            }
            for _ in 0..15 {
                let done = outstanding.remove(0);
                done.await;
                outstanding.push(Box::pin(client.run(&prepared)));
            }
            for f in outstanding {
                f.await;
            }
        });
    }
    let end = sim.run_to_quiescence();
    let busy = device0.stats().busy;
    let util = busy.as_nanos() as f64 / end.as_nanos() as f64;
    assert!(util > 0.85, "utilization only {util:.2}");
}

#[test]
fn runs_of_same_prepared_program_are_independent() {
    let mut sim = Sim::new(0);
    let rt = default_rt(&sim, ClusterSpec::config_b(1));
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(4)).unwrap();
    let mut b = client.trace("rerun");
    let comp = b.computation(
        FnSpec::compute_only("f", SimDuration::from_micros(10)).with_output_bytes(64),
        &slice,
    );
    let program = b.build().unwrap();
    let prepared = client.prepare(&program);
    let job = sim.spawn("client", async move {
        let r1 = client.run(&prepared).await;
        let r2 = client.run(&prepared).await;
        let o1 = r1.object(comp).unwrap();
        let o2 = r2.object(comp).unwrap();
        (o1, o2)
    });
    sim.run_to_quiescence();
    let (o1, o2) = job.try_take().unwrap();
    assert_ne!(o1, o2, "distinct runs must produce distinct objects");
}

#[test]
fn hbm_back_pressure_stalls_but_completes() {
    // Outputs are sized so that only one program's buffers fit at a
    // time; back-pressure must serialize the programs, not deadlock.
    let mut sim = Sim::new(0);
    let cfg = PathwaysConfig {
        hbm_per_device: 1 << 20, // 1 MiB per device
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(1),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
    let mut b = client.trace("big");
    b.computation(
        FnSpec::compute_only("f", SimDuration::from_micros(100)).with_output_bytes(700 << 10),
        &slice,
    );
    let program = b.build().unwrap();
    let prepared = client.prepare(&program);
    let job = sim.spawn("client", async move {
        // Run serially but hold each result until after the next run is
        // submitted... here simply: sequential runs, dropping results,
        // exercising allocate/free cycles under a tight budget.
        for _ in 0..5 {
            let r = client.run(&prepared).await;
            drop(r);
        }
        true
    });
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "stalled forever: {outcome:?}");
    assert_eq!(job.try_take(), Some(true));
}
