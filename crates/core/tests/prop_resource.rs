//! Resource-manager accounting property test.
//!
//! Drives random schedules of allocate / remap / detach / attach /
//! release (plus heal and rebalance, which are remaps under the hood)
//! and asserts the ledger invariant after *every* step:
//!
//! > each device's use-count equals the number of live slices currently
//! > mapping it (with multiplicity), attached or not,
//!
//! and, after releasing everything, that all counts drain to zero.
//! The seed repo masked ledger drift with a `saturating_sub`; the
//! manager now moves counts on every mapping change and `debug_assert`s
//! on underflow, so any drift fails this test loudly (test profiles
//! keep debug assertions on).
//!
//! The manager also keeps incremental placement indexes (per-island
//! load sums, a load-ordered device set, and a device -> slices reverse
//! index) so allocation and healing scale with the blast radius rather
//! than the cluster. After every step the test additionally calls
//! [`ResourceManager::assert_indexes_consistent`], which recomputes all
//! three from the ground-truth ledger with a naive linear scan and
//! panics on any drift.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use pathways_core::{ResourceManager, SliceRequest, VirtualSlice};
use pathways_net::{ClientId, ClusterSpec, DeviceId, IslandId};

/// One schedule step: `(op, a, b)` with op-specific selectors.
fn schedule() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..8, any::<u8>(), any::<u8>()), 1..50)
}

/// The ground truth: use-counts recomputed from the live slices.
fn expected_counts(slices: &[VirtualSlice]) -> BTreeMap<DeviceId, u32> {
    let mut counts = BTreeMap::new();
    for s in slices {
        for d in s.physical_devices() {
            *counts.entry(d).or_insert(0) += 1;
        }
    }
    counts
}

fn assert_ledger_matches(rm: &ResourceManager, slices: &[VirtualSlice], step: usize) {
    let expected = expected_counts(slices);
    for d in rm.topology().devices() {
        let want = expected.get(&d).copied().unwrap_or(0);
        let got = rm.device_load(d);
        assert_eq!(
            got, want,
            "step {step}: {d} carries load {got}, live slices map it {want} times"
        );
    }
    assert_eq!(rm.live_slice_count(), slices.len(), "step {step}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn use_counts_equal_live_slice_mappings(
        islands in 1u32..3,
        ops in schedule(),
    ) {
        let topo = Arc::new(ClusterSpec::islands_of(islands, 1, 8).build());
        let rm = ResourceManager::new(Arc::clone(&topo));
        let n_devices = islands * 8;
        let client = ClientId(0);
        let mut live: Vec<VirtualSlice> = Vec::new();

        for (step, (op, a, b)) in ops.iter().enumerate() {
            match op % 8 {
                // Allocate (two opcodes: allocation should dominate the
                // schedule so remap/detach have something to chew on).
                0 | 1 => {
                    let devices = u32::from(a % 8) + 1;
                    let mut req = SliceRequest::devices(devices);
                    if b % 3 == 0 {
                        req = req.contiguous();
                    }
                    if b % 3 == 1 {
                        req = req.in_island(IslandId(u32::from(*b) % islands));
                    }
                    // Failure (fragmented / detached-out capacity) is a
                    // legal outcome; the invariant just must hold.
                    if let Ok(s) = rm.allocate(client, req) {
                        live.push(s);
                    }
                }
                // Release a random live slice.
                2 => {
                    if !live.is_empty() {
                        let idx = usize::from(*a) % live.len();
                        let s = live.swap_remove(idx);
                        rm.release(&s);
                    }
                }
                // Remap a random live slice onto a rotated window of its
                // island (attached or not — remap is unconditional, the
                // ledger must follow the mapping wherever it goes).
                3 => {
                    if !live.is_empty() {
                        let idx = usize::from(*a) % live.len();
                        let s = &live[idx];
                        let island = topo.island_of_device(s.physical_devices()[0]);
                        let devs: Vec<DeviceId> = topo.devices_of_island(island).collect();
                        let start = usize::from(*b) % devs.len();
                        let new: Vec<DeviceId> = (0..s.len())
                            .map(|i| devs[(start + i) % devs.len()])
                            .collect();
                        rm.remap(s, new);
                    }
                }
                // Detach / attach a random device: counts must survive.
                4 => rm.detach_device(DeviceId(u32::from(*a) % n_devices)),
                5 => rm.attach_device(DeviceId(u32::from(*a) % n_devices)),
                // Heal as if the device died: every touched slice is
                // remapped onto spare capacity or left in place — either
                // way the ledger tracks the final mappings.
                6 => {
                    let dead = DeviceId(u32::from(*a) % n_devices);
                    let _ = rm.heal(&[dead], &[]);
                }
                // Defragment.
                _ => {
                    let _ = rm.rebalance();
                }
            }
            assert_ledger_matches(&rm, &live, step);
            rm.assert_indexes_consistent();
        }

        // Full drain: releasing everything zeroes every count.
        for s in live.drain(..) {
            rm.release(&s);
        }
        assert_eq!(rm.total_load(), 0, "ledger did not drain to zero");
        assert_eq!(rm.live_slice_count(), 0);
        for d in topo.devices() {
            assert_eq!(rm.device_load(d), 0, "{d} still charged after drain");
        }
        rm.assert_indexes_consistent();
    }
}
