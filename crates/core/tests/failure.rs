//! Failure-injection tests: abrupt client death, resource reclamation,
//! and dynamic device attach/detach — the cluster-management features
//! §4.1/§4.6 attribute to the single-controller design.

use std::sync::Arc;

use pathways_core::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways_net::{ClusterSpec, DeviceId, HostId, NetworkParams};
use pathways_sim::{Sim, SimDuration, SimTime};

fn rt(sim: &Sim, hosts: u32) -> PathwaysRuntime {
    PathwaysRuntime::new(
        sim,
        ClusterSpec::config_b(hosts),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    )
}

#[test]
fn killed_client_does_not_wedge_other_tenants() {
    let mut sim = Sim::new(0);
    let rt = rt(&sim, 2);
    // The victim holds results (pinning HBM) and then "dies".
    let victim = rt.client(HostId(0));
    let victim_id = victim.id();
    let slice = victim.virtual_slice(SliceRequest::devices(16)).unwrap();
    let mut b = victim.trace("victim");
    b.computation(
        FnSpec::compute_only("f", SimDuration::from_micros(100))
            .with_allreduce(4)
            .with_output_bytes(1 << 20),
        &slice,
    );
    let program = b.build().unwrap();
    let prepared = victim.prepare(&program);
    let victim_task = sim.spawn("victim", async move {
        let r = victim.run(&prepared).await;
        std::mem::forget(r); // hold the output forever
        loop {
            // Keep "running" so abort has something to kill.
            std::future::pending::<()>().await;
        }
    });
    // A survivor shares the same devices.
    let survivor = rt.client(HostId(1));
    let slice2 = survivor.virtual_slice(SliceRequest::devices(16)).unwrap();
    let mut b2 = survivor.trace("survivor");
    b2.computation(
        FnSpec::compute_only("g", SimDuration::from_micros(100)).with_allreduce(4),
        &slice2,
    );
    let program2 = b2.build().unwrap();
    let prepared2 = survivor.prepare(&program2);
    let survivor_task = sim.spawn("survivor", async move {
        for _ in 0..20 {
            survivor.run(&prepared2).await;
        }
        true
    });
    // Let both make progress, then kill the victim.
    sim.run_until_time(SimTime::ZERO + SimDuration::from_millis(1));
    victim_task.abort();
    let freed = rt.fail_client(victim_id);
    assert_eq!(freed, 1, "victim's pinned output must be GCed");
    // The survivor finishes normally.
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "{outcome:?}");
    assert_eq!(survivor_task.try_take(), Some(true));
    assert!(rt.core().store.is_empty());
}

#[test]
fn hbm_freed_by_gc_unblocks_backpressured_tenant() {
    let mut sim = Sim::new(0);
    let cfg = PathwaysConfig {
        hbm_per_device: 1 << 20, // 1 MiB/device
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(1),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    // Hog pins nearly all HBM and dies.
    let hog = rt.client(HostId(0));
    let hog_id = hog.id();
    let slice = hog.virtual_slice(SliceRequest::devices(8)).unwrap();
    let mut b = hog.trace("hog");
    b.computation(
        FnSpec::compute_only("f", SimDuration::from_micros(10)).with_output_bytes(900 << 10),
        &slice,
    );
    let program = b.build().unwrap();
    let prepared = hog.prepare(&program);
    sim.spawn("hog", async move {
        let r = hog.run(&prepared).await;
        std::mem::forget(r);
    });
    sim.run_until_time(SimTime::ZERO + SimDuration::from_millis(1));
    // Needy cannot fit until the hog's objects are collected.
    let needy = rt.client(HostId(0));
    let slice2 = needy.virtual_slice(SliceRequest::devices(8)).unwrap();
    let mut b2 = needy.trace("needy");
    b2.computation(
        FnSpec::compute_only("g", SimDuration::from_micros(10)).with_output_bytes(800 << 10),
        &slice2,
    );
    let program2 = b2.build().unwrap();
    let prepared2 = needy.prepare(&program2);
    let needy_task = sim.spawn("needy", async move {
        drop(needy.run(&prepared2).await);
        true
    });
    // Without GC, the needy client is back-pressured indefinitely.
    sim.run_until_time(SimTime::ZERO + SimDuration::from_millis(5));
    assert!(!needy_task.is_finished(), "needy should be stalled on HBM");
    // Failure GC releases the hog's HBM; the needy client completes.
    rt.fail_client(hog_id);
    let outcome = sim.run();
    assert!(outcome.is_quiescent(), "{outcome:?}");
    assert_eq!(needy_task.try_take(), Some(true));
}

#[test]
fn detached_devices_are_avoided_by_new_slices() {
    let sim = Sim::new(0);
    let rt = rt(&sim, 2);
    let rm = Arc::clone(rt.resource_manager());
    for d in 0..8 {
        rm.detach_device(DeviceId(d));
    }
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
    assert!(
        slice.physical_devices().iter().all(|d| d.0 >= 8),
        "slice must avoid detached devices: {:?}",
        slice.physical_devices()
    );
    // Re-attach restores capacity.
    for d in 0..8 {
        rm.attach_device(DeviceId(d));
    }
    assert!(client.virtual_slice(SliceRequest::devices(16)).is_ok());
}

#[test]
fn gc_is_idempotent_and_scoped() {
    let mut sim = Sim::new(0);
    let rt = rt(&sim, 1);
    let a = rt.client(HostId(0));
    let b_client = rt.client(HostId(0));
    let a_id = a.id();
    for (who, client) in [("a", a.clone()), ("b", b_client.clone())] {
        let slice = client.virtual_slice(SliceRequest::devices(4)).unwrap();
        let mut b = client.trace(who);
        b.computation(
            FnSpec::compute_only("f", SimDuration::from_micros(10)).with_output_bytes(1 << 10),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = client.prepare(&program);
        sim.spawn(format!("c-{who}"), async move {
            std::mem::forget(client.run(&prepared).await);
        });
    }
    sim.run_to_quiescence();
    assert_eq!(rt.core().store.len(), 2);
    assert_eq!(rt.fail_client(a_id), 1);
    assert_eq!(rt.fail_client(a_id), 0, "second GC finds nothing");
    assert_eq!(rt.core().store.len(), 1, "b's object untouched");
}
