//! Golden-trace determinism pins: seeded chaos runs must replay
//! bit-identically *across revisions of the executor*, not just across
//! two runs of the same binary. The fingerprints below were captured on
//! the `BinaryHeap` timer-queue revision; the hierarchical timer wheel
//! (and every later hot-path rework) must reproduce them exactly.

use pathways_core::chaos::{run_chaos, ChaosSpec};

/// `(seed, trace_fingerprint)` pairs captured at the seed revision.
/// Regenerate (only when an *intentional* behavior change lands) with:
/// `cargo test -p pathways-core --test golden_trace -- --nocapture`
/// after flipping `CAPTURE` to true.
const GOLDEN: &[(u64, u64)] = &[
    (1, 0x48b78a61714ce995),
    (2, 0x60b02cf85594b1f0),
    (3, 0xb49665f70fa17dac),
    (7, 0x42bba7147e1a8c4a),
];

const CAPTURE: bool = false;

#[test]
fn chaos_traces_match_seed_revision_fingerprints() {
    if pathways_sim::ExecutorKind::from_env().backend() == pathways_sim::Backend::Threaded {
        eprintln!("skipping: golden fingerprints pin the deterministic backend only");
        return;
    }
    if CAPTURE {
        for seed in [1u64, 2, 3, 7] {
            let report = run_chaos(&ChaosSpec::seeded(seed));
            println!("({seed}, 0x{:016x}),", report.trace_fingerprint());
        }
        return;
    }
    for (seed, want) in GOLDEN {
        let report = run_chaos(&ChaosSpec::seeded(*seed));
        assert_eq!(
            report.trace_fingerprint(),
            *want,
            "seed {seed}: trace diverged from the seed revision"
        );
    }
}
