//! Determinism regression for the fig14 chained workload under fault
//! injection: the same seed and fault schedule must reproduce a
//! bit-identical `sim` event trace, and an active fault plan must not
//! wedge the chain (it completes in bounded virtual time through typed
//! error propagation, not timeouts).

use pathways_bench::chain::{chained_trace, ChainDispatch};
use pathways_core::FaultSpec;
use pathways_net::DeviceId;
use pathways_sim::{SimDuration, SimTime};

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

/// The scripted plan: kill a device of island 0 while the chain is in
/// flight; stage 2+ consumers resolve to errors and the workload still
/// drains.
fn fault_plan() -> Vec<(SimTime, FaultSpec)> {
    vec![(t(400), FaultSpec::Device(DeviceId(2)))]
}

#[test]
fn fig14_chained_workload_is_bit_identical_under_faults() {
    let run = || {
        chained_trace(
            42,
            2,
            6,
            SimDuration::from_micros(100),
            1 << 14,
            ChainDispatch::Parallel,
            2,
            &fault_plan(),
        )
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "workload must have produced trace spans");
    assert_eq!(
        a, b,
        "same seed + same fault plan must reproduce an identical trace"
    );
    // The fault itself is part of the replayable trace.
    assert_eq!(a.track("faults").len(), 1);
}

#[test]
fn fig14_sequential_dispatch_also_replays_identically() {
    let run = || {
        chained_trace(
            7,
            2,
            4,
            SimDuration::from_micros(80),
            1 << 12,
            ChainDispatch::Sequential,
            1,
            &fault_plan(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn fault_free_and_faulted_traces_differ() {
    let faulted = chained_trace(
        42,
        2,
        6,
        SimDuration::from_micros(100),
        1 << 14,
        ChainDispatch::Parallel,
        2,
        &fault_plan(),
    );
    let clean = chained_trace(
        42,
        2,
        6,
        SimDuration::from_micros(100),
        1 << 14,
        ChainDispatch::Parallel,
        2,
        &[],
    );
    assert_ne!(
        faulted, clean,
        "the injected fault must be observable in the trace"
    );
}
