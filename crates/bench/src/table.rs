//! Aligned text tables for experiment output.

/// A simple right-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:>w$}", w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a throughput value the way the paper's tables do (`618k`).
pub fn fmt_k(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("  a  bbb"), "{s}");
        assert!(s.contains("100    x"), "{s}");
    }

    #[test]
    fn fmt_k_scales() {
        assert_eq!(fmt_k(618_000.0), "618.0k");
        assert_eq!(fmt_k(84_800.0), "84.8k");
        assert_eq!(fmt_k(1_500_000.0), "1.50M");
        assert_eq!(fmt_k(42.0), "42.0");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
