//! Table 2: 3B decoder LM training throughput — SPMD vs GPipe
//! pipelining at various stage counts, on Pathways.

use pathways_bench::table::{fmt_k, Table};
use pathways_bench::training::{
    pathways_pipeline_tokens_per_sec, pathways_spmd_tokens_per_sec, table2_setup,
};

fn main() {
    println!("Table 2: 3B Transformer LM training throughput (tokens/s) on Pathways\n");
    let steps = 2;
    let mut t = Table::new(&["Model configuration", "TPU cores", "tokens/s", "paper"]);

    // 128-core rows: global batch 2048 examples (micro-batch 4).
    let setup128 = table2_setup(2048);
    t.row(vec![
        "Model-parallel (SPMD)".into(),
        "128".into(),
        fmt_k(pathways_spmd_tokens_per_sec(128, &setup128, steps)),
        "125.7k".into(),
    ]);
    for (s, m) in [(4u32, 16u32), (8, 32), (16, 64)] {
        t.row(vec![
            format!("Pipelining, S={s}, M={m}"),
            "128".into(),
            fmt_k(pathways_pipeline_tokens_per_sec(
                128, s, m, &setup128, steps,
            )),
            match (s, m) {
                (4, _) => "133.7k".into(),
                (8, _) => "132.7k".into(),
                _ => "131.4k".into(),
            },
        ]);
    }
    // 512-core row: global batch 8192 examples.
    let setup512 = table2_setup(8192);
    t.row(vec![
        "Pipelining, S=16, M=64".into(),
        "512".into(),
        fmt_k(pathways_pipeline_tokens_per_sec(
            512, 16, 64, &setup512, steps,
        )),
        "507.8k".into(),
    ]);
    println!("{}", t.render());
    println!("expected shape (paper): pipelining competitive with SPMD at equal cores;");
    println!("minimal overhead from deeper pipelines (S=4 -> 16); ~4x throughput at 4x cores.");
}
