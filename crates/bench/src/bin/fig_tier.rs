//! `fig_tier`: the storage engine's headline curves — throughput vs
//! per-device HBM budget (retained outputs spill to DRAM and disk
//! under pressure), recovery time vs checkpoint interval (disk restore
//! vs lineage recompute after a device kill), the restore-vs-recompute
//! frontier (cost-model choice with a checkpoint always available),
//! durable disk bytes vs checkpoint-GC keep-K, and DAG-chain recovery
//! with a shared upstream. Emits `BENCH_fig_tier.json` with all metric
//! families.

use pathways_bench::perf::{BenchReport, ClusterShape};
use pathways_bench::table::Table;
use pathways_bench::tier::{
    chain_recovery, checkpoint_gc, recovery_frontier, recovery_latency, spill_throughput,
    SHARD_BYTES,
};
use pathways_sim::SimDuration;

fn main() {
    const STEPS: u32 = 24;
    println!("fig_tier: tiered store under pressure and under faults");
    println!(
        "family 1: {STEPS} retained 4x{} MiB outputs vs per-device HBM budget\n",
        SHARD_BYTES >> 20
    );
    let mut t = Table::new(&[
        "hbm/device",
        "steps/s (virtual)",
        "spills",
        "demotions",
        "spilled MiB",
    ]);
    let budgets: [u64; 4] = [2 << 30, 1 << 30, 512 << 20, 256 << 20];
    let mut report = BenchReport::new(
        "fig_tier",
        ClusterShape {
            islands: 2,
            hosts_per_island: 2,
            devices_per_host: 4,
        },
    );
    for hbm in budgets {
        let p = spill_throughput(hbm, STEPS);
        t.row(vec![
            format!("{} MiB", hbm >> 20),
            format!("{:.0}", p.steps_per_sec),
            p.spills.to_string(),
            p.demotions.to_string(),
            format!("{}", p.spilled_bytes >> 20),
        ]);
        let tag = format!("{}mib", hbm >> 20);
        report = report
            .metric(format!("spill_steps_per_sec_hbm_{tag}"), p.steps_per_sec)
            .metric(format!("spill_count_hbm_{tag}"), p.spills as f64)
            .metric(format!("spill_demotions_hbm_{tag}"), p.demotions as f64);
    }
    println!("{}", t.render());
    println!("expected shape: large budgets never spill; shrinking budgets trade");
    println!("throughput for spill transfers, and past the DRAM budget, disk demotions.\n");

    println!("family 2: kill-to-consumer-completion time vs checkpoint interval");
    println!("(200ms producer, one device of its slice killed after completion)\n");
    let mut t = Table::new(&["checkpoint interval", "recovery (virtual)", "path"]);
    let intervals: [(Option<SimDuration>, &str); 4] = [
        (None, "lineage"),
        (Some(SimDuration::from_millis(50)), "ckpt_50ms"),
        (Some(SimDuration::from_millis(10)), "ckpt_10ms"),
        (Some(SimDuration::from_millis(1)), "ckpt_1ms"),
    ];
    for (interval, tag) in intervals {
        let p = recovery_latency(interval);
        t.row(vec![
            interval.map_or("none".into(), |d| d.to_string()),
            p.recovery.to_string(),
            if p.restored {
                "disk restore"
            } else {
                "lineage recompute"
            }
            .to_string(),
        ]);
        report = report
            .metric(format!("recovery_ms_{tag}"), p.recovery.as_secs_f64() * 1e3)
            .metric(
                format!("recovery_restored_{tag}"),
                if p.restored { 1.0 } else { 0.0 },
            );
    }
    println!("{}", t.render());
    println!("expected shape: any committed checkpoint restores in ~constant disk-read");
    println!("time; without checkpoints the object recomputes via lineage, paying the");
    println!("producer's full compute again — the classic tradeoff, which flips when");
    println!("recompute is cheaper than the disk read.\n");

    println!("family 3: restore-vs-recompute frontier (checkpoint fixed at 10ms)");
    println!("(producer compute swept at 4 x 1 MiB shards; the recovery manager");
    println!("picks the cheaper modeled path per object)\n");
    let mut t = Table::new(&["producer compute", "recovery (virtual)", "chosen path"]);
    let computes: [(SimDuration, &str); 5] = [
        (SimDuration::from_micros(200), "200us"),
        (SimDuration::from_millis(1), "1ms"),
        (SimDuration::from_millis(2), "2ms"),
        (SimDuration::from_millis(4), "4ms"),
        (SimDuration::from_millis(16), "16ms"),
    ];
    for (compute, tag) in computes {
        let p = recovery_frontier(compute, 1 << 20);
        t.row(vec![
            compute.to_string(),
            p.recovery.to_string(),
            if p.restored {
                "disk restore"
            } else {
                "lineage recompute"
            }
            .to_string(),
        ]);
        report = report
            .metric(
                format!("frontier_recovery_ms_{tag}"),
                p.recovery.as_secs_f64() * 1e3,
            )
            .metric(
                format!("frontier_restored_{tag}"),
                if p.restored { 1.0 } else { 0.0 },
            );
    }
    println!("{}", t.render());
    println!("expected shape: cheap producers recompute even though a checkpoint");
    println!("exists; once est. recompute crosses the disk restore time (~2.3ms for");
    println!("this restore set) the choice flips to restore and recovery time");
    println!("plateaus at the disk read.\n");

    println!("family 4: durable disk bytes vs checkpoint-GC keep-K");
    println!("(one base epoch + 15 single-shard delta epochs over 4 x 1 MiB shards,");
    println!("2 MiB append-only segments)\n");
    let mut t = Table::new(&[
        "keep K",
        "epochs retained",
        "live MiB",
        "occupied MiB",
        "segments reclaimed",
    ]);
    for keep in [1u32, 2, 4, 8] {
        let p = checkpoint_gc(keep, 16);
        t.row(vec![
            keep.to_string(),
            p.epochs_retained.to_string(),
            format!("{:.1}", p.disk_live_bytes as f64 / (1 << 20) as f64),
            format!("{:.1}", p.disk_occupied_bytes as f64 / (1 << 20) as f64),
            p.segments_reclaimed.to_string(),
        ]);
        report = report
            .metric(
                format!("gc_disk_occupied_bytes_k{keep}"),
                p.disk_occupied_bytes as f64,
            )
            .metric(
                format!("gc_epochs_retained_k{keep}"),
                p.epochs_retained as f64,
            )
            .metric(
                format!("gc_segments_reclaimed_k{keep}"),
                p.segments_reclaimed as f64,
            );
    }
    println!("{}", t.render());
    println!("expected shape: the durable footprint grows with K but is floored by");
    println!("the restore set (GC never collects the newest durable copy of a");
    println!("shard); tighter K drains sealed segments and reclaims them whole.\n");

    println!("family 5: DAG-chain recovery with a shared upstream");
    println!("(A feeds B and C on one slice; one device kill loses a shard of all");
    println!("three, lineage-only recovery)\n");
    let p = chain_recovery();
    let mut t = Table::new(&[
        "chain recovery (virtual)",
        "recomputed",
        "upstream recomputes",
    ]);
    t.row(vec![
        p.recovery.to_string(),
        p.recomputed.to_string(),
        p.upstream_recomputes.to_string(),
    ]);
    report = report
        .metric("chain_recovery_ms", p.recovery.as_secs_f64() * 1e3)
        .metric("chain_recomputed", p.recomputed as f64)
        .metric("chain_upstream_recomputes", p.upstream_recomputes as f64);
    println!("{}", t.render());
    println!("expected shape: the batch recovers in topological order and the shared");
    println!("upstream is recomputed exactly once — the chain costs one producer");
    println!("recompute plus the two downstream rebuilds, not two full chains.");
    report.write_or_warn();
}
