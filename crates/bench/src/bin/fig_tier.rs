//! `fig_tier`: the tiered object store's two headline curves —
//! throughput vs per-device HBM budget (retained outputs spill to DRAM
//! and disk under pressure), and recovery time vs checkpoint interval
//! (disk restore vs lineage recompute after a device kill). Emits
//! `BENCH_fig_tier.json` with both metric families.

use pathways_bench::perf::{BenchReport, ClusterShape};
use pathways_bench::table::Table;
use pathways_bench::tier::{recovery_latency, spill_throughput, SHARD_BYTES};
use pathways_sim::SimDuration;

fn main() {
    const STEPS: u32 = 24;
    println!("fig_tier: tiered store under pressure and under faults");
    println!(
        "family 1: {STEPS} retained 4x{} MiB outputs vs per-device HBM budget\n",
        SHARD_BYTES >> 20
    );
    let mut t = Table::new(&[
        "hbm/device",
        "steps/s (virtual)",
        "spills",
        "demotions",
        "spilled MiB",
    ]);
    let budgets: [u64; 4] = [2 << 30, 1 << 30, 512 << 20, 256 << 20];
    let mut report = BenchReport::new(
        "fig_tier",
        ClusterShape {
            islands: 2,
            hosts_per_island: 2,
            devices_per_host: 4,
        },
    );
    for hbm in budgets {
        let p = spill_throughput(hbm, STEPS);
        t.row(vec![
            format!("{} MiB", hbm >> 20),
            format!("{:.0}", p.steps_per_sec),
            p.spills.to_string(),
            p.demotions.to_string(),
            format!("{}", p.spilled_bytes >> 20),
        ]);
        let tag = format!("{}mib", hbm >> 20);
        report = report
            .metric(format!("spill_steps_per_sec_hbm_{tag}"), p.steps_per_sec)
            .metric(format!("spill_count_hbm_{tag}"), p.spills as f64)
            .metric(format!("spill_demotions_hbm_{tag}"), p.demotions as f64);
    }
    println!("{}", t.render());
    println!("expected shape: large budgets never spill; shrinking budgets trade");
    println!("throughput for spill transfers, and past the DRAM budget, disk demotions.\n");

    println!("family 2: kill-to-consumer-completion time vs checkpoint interval");
    println!("(200ms producer, one device of its slice killed after completion)\n");
    let mut t = Table::new(&["checkpoint interval", "recovery (virtual)", "path"]);
    let intervals: [(Option<SimDuration>, &str); 4] = [
        (None, "lineage"),
        (Some(SimDuration::from_millis(50)), "ckpt_50ms"),
        (Some(SimDuration::from_millis(10)), "ckpt_10ms"),
        (Some(SimDuration::from_millis(1)), "ckpt_1ms"),
    ];
    for (interval, tag) in intervals {
        let p = recovery_latency(interval);
        t.row(vec![
            interval.map_or("none".into(), |d| d.to_string()),
            p.recovery.to_string(),
            if p.restored {
                "disk restore"
            } else {
                "lineage recompute"
            }
            .to_string(),
        ]);
        report = report
            .metric(format!("recovery_ms_{tag}"), p.recovery.as_secs_f64() * 1e3)
            .metric(
                format!("recovery_restored_{tag}"),
                if p.restored { 1.0 } else { 0.0 },
            );
    }
    println!("{}", t.render());
    println!("expected shape: any committed checkpoint restores in ~constant disk-read");
    println!("time; without checkpoints the object recomputes via lineage, paying the");
    println!("producer's full compute again — the classic tradeoff, which flips when");
    println!("recompute is cheaper than the disk read.");
    report.write_or_warn();
}
