//! Runs a quick (scaled-down) pass over every experiment, printing a
//! one-line verdict per paper claim — a smoke test of the whole
//! reproduction in about a minute.
//!
//! Besides the PASS/FAIL lines, every figure's headline numbers are
//! written to a `BENCH_<figure>.json` file at the repo root (metric
//! names and values, cluster shape, git rev) so the perf trajectory of
//! the reproduction is machine-readable across commits.

use pathways_baselines::{StepWorkload, SubmissionMode};
use pathways_bench::chain::{chained_throughput, ChainDispatch};
use pathways_bench::heal::healing_throughput;
use pathways_bench::micro::{
    fig6_point, jax_throughput, pathways_multiclient_throughput, pathways_throughput,
    ray_throughput, tf1_throughput,
};
use pathways_bench::perf::{BenchReport, ClusterShape};
use pathways_bench::pipeline::pipeline_throughput;
use pathways_bench::tenancy::tenancy_trace;
use pathways_bench::tier::{chain_recovery, recovery_latency, spill_throughput};
use pathways_bench::training::{
    pathways_pipeline_tokens_per_sec, pathways_spmd_tokens_per_sec, table1_point, table2_setup,
    two_island_scaling,
};
use pathways_core::DispatchMode;
use pathways_models::TransformerConfig;
use pathways_sim::SimDuration;

fn verdict(name: &str, ok: bool, detail: String) {
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
}

/// Cluster shape shared by the small micro figures below: one island of
/// 2 hosts x 8 devices.
fn small_island(islands: u32, hosts: u32, devices_per_host: u32) -> ClusterShape {
    ClusterShape {
        islands,
        hosts_per_island: hosts,
        devices_per_host,
    }
}

fn main() {
    println!("Quick pass over every reproduced claim (scaled-down sizes)\n");
    let w = StepWorkload::trivial();

    // Figure 5 relations.
    let jax_o = jax_throughput(2, 8, SubmissionMode::OpByOp, w, 128).per_sec();
    let jax_f = jax_throughput(2, 8, SubmissionMode::Fused, w, 256).per_sec();
    let pw_o = pathways_throughput(2, 8, SubmissionMode::OpByOp, w, 128).per_sec();
    let pw_c = pathways_throughput(2, 8, SubmissionMode::Chained, w, 256).per_sec();
    let pw_f = pathways_throughput(2, 8, SubmissionMode::Fused, w, 256).per_sec();
    let tf_o = tf1_throughput(2, 8, SubmissionMode::OpByOp, w, 128).per_sec();
    let ray_o = ray_throughput(2, SubmissionMode::OpByOp, w, 64).per_sec();
    verdict(
        "fig5 PW-F ~= JAX-F",
        pw_f / jax_f > 0.85,
        format!("{pw_f:.0} vs {jax_f:.0} comp/s"),
    );
    verdict(
        "fig5 JAX-O > PW-O",
        jax_o > pw_o,
        format!("{jax_o:.0} vs {pw_o:.0}"),
    );
    verdict(
        "fig5 PW-C > JAX-O",
        pw_c > jax_o,
        format!("{pw_c:.0} vs {jax_o:.0}"),
    );
    verdict(
        "fig5 PW-O >= TF-O",
        pw_o >= tf_o,
        format!("{pw_o:.0} vs {tf_o:.0}"),
    );
    verdict(
        "fig5 Ray ~10x below PW",
        ray_o * 2.0 < pw_o,
        format!("{ray_o:.0} vs {pw_o:.0}"),
    );
    BenchReport::new("fig5", small_island(1, 2, 8))
        .metric("jax_opbyop_per_sec", jax_o)
        .metric("jax_fused_per_sec", jax_f)
        .metric("pw_opbyop_per_sec", pw_o)
        .metric("pw_chained_per_sec", pw_c)
        .metric("pw_fused_per_sec", pw_f)
        .metric("tf1_opbyop_per_sec", tf_o)
        .metric("ray_opbyop_per_sec", ray_o)
        .write_or_warn();

    // Figure 6: parity improves with computation size.
    let (j_s, p_s) = fig6_point(4, 8, SimDuration::from_micros(100), 30);
    let (j_b, p_b) = fig6_point(4, 8, SimDuration::from_millis(10), 8);
    verdict(
        "fig6 parity at large computations",
        p_s / j_s < 0.95 && p_b / j_b > 0.9,
        format!("ratio {:.2} -> {:.2}", p_s / j_s, p_b / j_b),
    );
    BenchReport::new("fig6", small_island(1, 4, 8))
        .metric("ratio_small_computation", p_s / j_s)
        .metric("ratio_large_computation", p_b / j_b)
        .write_or_warn();

    // Figure 7.
    let par = pipeline_throughput(16, DispatchMode::Parallel, SimDuration::from_micros(10), 4);
    let seq = pipeline_throughput(
        16,
        DispatchMode::Sequential,
        SimDuration::from_micros(10),
        4,
    );
    verdict(
        "fig7 parallel dispatch wins",
        par > seq * 1.3,
        format!("{par:.0} vs {seq:.0} comp/s"),
    );
    BenchReport::new("fig7", small_island(1, 16, 1))
        .metric("parallel_per_sec", par)
        .metric("sequential_per_sec", seq)
        .write_or_warn();

    // Figure 8.
    let one = pathways_multiclient_throughput(
        2,
        8,
        1,
        SimDuration::from_micros(40),
        SimDuration::from_millis(40),
        1,
    );
    let eight = pathways_multiclient_throughput(
        2,
        8,
        8,
        SimDuration::from_micros(40),
        SimDuration::from_millis(40),
        1,
    );
    verdict(
        "fig8 multi-tenancy scales",
        eight > one * 1.3,
        format!("{one:.0} -> {eight:.0} comp/s"),
    );
    BenchReport::new("fig8", small_island(1, 2, 8))
        .metric("one_client_per_sec", one)
        .metric("eight_clients_per_sec", eight)
        .write_or_warn();

    // Figure 9.
    let t = tenancy_trace(
        1,
        8,
        &[1, 2, 4, 8],
        SimDuration::from_micros(330),
        SimDuration::from_millis(40),
    );
    let a = t.busy_by_label["A"].as_secs_f64();
    let d = t.busy_by_label["D"].as_secs_f64();
    verdict(
        "fig9 proportional share",
        d / a > 3.0 && t.utilization > 0.9,
        format!("D/A = {:.1}, util {:.0}%", d / a, t.utilization * 100.0),
    );
    BenchReport::new("fig9", small_island(1, 1, 8))
        .metric("share_ratio_d_over_a", d / a)
        .metric("utilization", t.utilization)
        .write_or_warn();

    // Table 1.
    let (jax_t5, pw_t5) = table1_point(TransformerConfig::t5_base(), 32, 0.65, 2);
    verdict(
        "table1 JAX == PW on T5",
        (pw_t5 / jax_t5 - 1.0).abs() < 0.05,
        format!("{jax_t5:.0} vs {pw_t5:.0} tokens/s"),
    );
    BenchReport::new("table1", small_island(1, 8, 4))
        .metric("jax_tokens_per_sec", jax_t5)
        .metric("pw_tokens_per_sec", pw_t5)
        .write_or_warn();

    // Table 2 (reduced).
    let setup = {
        let mut s = table2_setup(256);
        s.calib.mfu = 0.5;
        s
    };
    let spmd = pathways_spmd_tokens_per_sec(32, &setup, 2);
    let pipe = pathways_pipeline_tokens_per_sec(32, 4, 16, &setup, 2);
    verdict(
        "table2 pipeline competitive with SPMD",
        pipe / spmd > 0.9,
        format!("{pipe:.0} vs {spmd:.0} tokens/s"),
    );
    BenchReport::new("table2", small_island(1, 8, 4))
        .metric("spmd_tokens_per_sec", spmd)
        .metric("pipeline_tokens_per_sec", pipe)
        .write_or_warn();

    // Figure 12 (reduced).
    let (two, single) = two_island_scaling(16, &setup, 2);
    verdict(
        "fig12 two-island efficiency",
        two / single > 0.7,
        format!("{:.1}%", 100.0 * two / single),
    );
    BenchReport::new("fig12", small_island(2, 4, 4))
        .metric("two_island_tokens_per_sec", two)
        .metric("single_island_tokens_per_sec", single)
        .metric("scaling_efficiency", two / single)
        .write_or_warn();

    // Figure 14 (reduced): chained programs through ObjectRef futures.
    let chain_seq = chained_throughput(
        2,
        8,
        SimDuration::from_micros(50),
        1 << 14,
        ChainDispatch::Sequential,
        4,
    );
    let chain_par = chained_throughput(
        2,
        8,
        SimDuration::from_micros(50),
        1 << 14,
        ChainDispatch::Parallel,
        4,
    );
    verdict(
        "fig14 chained ObjectRef dispatch wins",
        chain_par > chain_seq * 1.2,
        format!("{chain_par:.0} vs {chain_seq:.0} prog/s"),
    );
    BenchReport::new("fig14", small_island(1, 2, 8))
        .metric("sequential_programs_per_sec", chain_seq)
        .metric("parallel_programs_per_sec", chain_par)
        .write_or_warn();

    // fig_heal (reduced): throughput recovered after a mid-trace device
    // kill — the slice is remapped and the client's next submit
    // re-lowers onto the healed mapping.
    let heal = healing_throughput(
        2,
        SimDuration::from_micros(100),
        SimDuration::from_millis(10),
    );
    let i0 = &heal.islands[0];
    let survivor_ok = heal.islands[1].failed_steps == 0
        && heal.islands[1].post_per_sec >= heal.islands[1].pre_per_sec * 0.8;
    verdict(
        "fig_heal throughput recovers after device kill",
        heal.healed && heal.recovery() > 0.5 && survivor_ok,
        format!(
            "island0 {:.0} -> {:.0} steps/s ({:.0}% recovered, {} failed), survivor unaffected: {}",
            i0.pre_per_sec,
            i0.post_per_sec,
            100.0 * heal.recovery(),
            i0.failed_steps,
            survivor_ok,
        ),
    );
    BenchReport::new("fig_heal", small_island(2, 2, 4))
        .metric("island0_pre_steps_per_sec", i0.pre_per_sec)
        .metric("island0_post_steps_per_sec", i0.post_per_sec)
        .metric("island0_recovery", heal.recovery())
        .metric("island0_failed_steps", i0.failed_steps as f64)
        .write_or_warn();

    // fig_tier (reduced): the tiered store's two curves — spill cost
    // under HBM pressure, and checkpoint restore vs lineage recompute
    // after a device kill.
    let roomy = spill_throughput(2 << 30, 12);
    let tight = spill_throughput(256 << 20, 12);
    verdict(
        "fig_tier spill trades throughput for capacity",
        roomy.spills == 0 && tight.spills > 0 && tight.steps_per_sec < roomy.steps_per_sec,
        format!(
            "{:.0} -> {:.0} steps/s ({} spills, {} demotions)",
            roomy.steps_per_sec, tight.steps_per_sec, tight.spills, tight.demotions
        ),
    );
    let lineage = recovery_latency(None);
    let ckpt = recovery_latency(Some(SimDuration::from_millis(10)));
    verdict(
        "fig_tier checkpoint restore beats recompute",
        !lineage.restored && ckpt.restored && ckpt.recovery < lineage.recovery,
        format!(
            "restore {} vs recompute {}",
            ckpt.recovery, lineage.recovery
        ),
    );
    let chain = chain_recovery();
    verdict(
        "fig_tier chain recovery dedupes the shared upstream",
        chain.recomputed == 3 && chain.upstream_recomputes == 1,
        format!(
            "chain of 3 back in {} with {} upstream recompute(s)",
            chain.recovery, chain.upstream_recomputes
        ),
    );
    BenchReport::new("fig_tier_quick", small_island(2, 2, 4))
        .metric("spill_steps_per_sec_roomy", roomy.steps_per_sec)
        .metric("spill_steps_per_sec_tight", tight.steps_per_sec)
        .metric("spill_count_tight", tight.spills as f64)
        .metric("recovery_ms_lineage", lineage.recovery.as_secs_f64() * 1e3)
        .metric("recovery_ms_ckpt_10ms", ckpt.recovery.as_secs_f64() * 1e3)
        .metric("chain_recovery_ms", chain.recovery.as_secs_f64() * 1e3)
        .write_or_warn();

    println!("\nFull-size runs: see the individual fig*/table* binaries.");
}
