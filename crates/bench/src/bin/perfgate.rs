//! CI perf-regression gate: diffs freshly generated `BENCH_*.json`
//! reports against the checked-in baselines under `perf/baselines/`.
//!
//! Usage:
//!   `perfgate`           — gate every fresh report that has a baseline;
//!                          fail on regressions, missing metrics, or a
//!                          fresh figure with no baseline at all.
//!   `perfgate --bless`   — copy the fresh reports over the baselines
//!                          (run after an intentional perf/shape change,
//!                          then commit `perf/baselines/`).
//!
//! Fresh reports are read from `BENCH_OUT_DIR` (default: the repo
//! root), the same place the bench binaries write them; baselines live
//! in `perf/baselines/` at the repo root. Tolerances are per-metric
//! classes — see [`pathways_bench::gate::rule_for`].

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pathways_bench::gate::{compare, parse_report, GateReport};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fresh_dir() -> PathBuf {
    match std::env::var_os("BENCH_OUT_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => repo_root(),
    }
}

/// `BENCH_*.json` files in `dir`, sorted by name for stable output.
fn report_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn load(path: &Path) -> Result<GateReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_report(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let bless = std::env::args().any(|a| a == "--bless");
    let baseline_dir = repo_root().join("perf/baselines");
    let fresh = report_files(&fresh_dir());
    if fresh.is_empty() {
        eprintln!(
            "perfgate: no BENCH_*.json in {} — run the bench binaries first \
             (run_all, fig_scale, fig_dispatch)",
            fresh_dir().display()
        );
        return ExitCode::FAILURE;
    }

    if bless {
        if let Err(e) = std::fs::create_dir_all(&baseline_dir) {
            eprintln!("perfgate: cannot create {}: {e}", baseline_dir.display());
            return ExitCode::FAILURE;
        }
        for path in &fresh {
            // Parse before blessing so a malformed report never becomes
            // a baseline.
            if let Err(e) = load(path) {
                eprintln!("perfgate: refusing to bless: {e}");
                return ExitCode::FAILURE;
            }
            let dst = baseline_dir.join(path.file_name().expect("report has a file name"));
            match std::fs::copy(path, &dst) {
                Ok(_) => println!("blessed {}", dst.display()),
                Err(e) => {
                    eprintln!("perfgate: copy to {}: {e}", dst.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut failures = 0usize;
    let mut gated = 0usize;
    for path in &fresh {
        let report = match load(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("perfgate: {e}");
                failures += 1;
                continue;
            }
        };
        let base_path = baseline_dir.join(path.file_name().expect("report has a file name"));
        let baseline = match load(&base_path) {
            Ok(b) => b,
            Err(_) => {
                eprintln!(
                    "FAIL {}: no baseline at {} — run `perfgate --bless` and commit it",
                    report.figure,
                    base_path.display()
                );
                failures += 1;
                continue;
            }
        };
        let findings = compare(&report, &baseline);
        let failed: Vec<_> = findings.iter().filter(|f| f.verdict.fails()).collect();
        gated += findings.len();
        if failed.is_empty() {
            println!("ok   {} ({} metrics)", report.figure, report.metrics.len());
        } else {
            println!("FAIL {}:", report.figure);
            for f in &failed {
                println!("  {f}");
            }
            failures += failed.len();
        }
        for f in findings
            .iter()
            .filter(|f| matches!(f.verdict, pathways_bench::gate::Verdict::Unbaselined))
        {
            println!("  note: {f}");
        }
    }
    println!("perfgate: {gated} metrics gated, {failures} failure(s)");
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
