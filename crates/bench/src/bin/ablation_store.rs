//! Ablation: the HBM object store. Pathways returns opaque handles and
//! leaves data in accelerator memory; TF1 copies results back to the
//! client and Ray copies GPU→DRAM per computation. This sweep varies
//! the per-computation result size to show the store's benefit is
//! architectural, not a constant factor.

use pathways_baselines::{
    RayConfig, RayRuntime, StepWorkload, SubmissionMode, Tf1Config, Tf1Runtime,
};
use pathways_bench::micro::pathways_throughput;
use pathways_bench::table::Table;
use pathways_net::{ClusterSpec, NetworkParams};
use pathways_sim::Sim;

fn tf1_with_result_bytes(hosts: u32, bytes: u64, total: u64) -> f64 {
    let mut sim = Sim::new(0);
    let rt = Tf1Runtime::new(
        &sim,
        ClusterSpec::single_island(hosts, 4),
        NetworkParams::tpu_cluster(),
        Tf1Config {
            result_bytes: bytes,
            ..Tf1Config::default()
        },
    );
    let m = rt.spawn_benchmark(
        &mut sim,
        SubmissionMode::OpByOp,
        StepWorkload::trivial(),
        total,
    );
    sim.run_to_quiescence();
    m.try_take().unwrap().per_sec()
}

fn ray_with_result_bytes(hosts: u32, bytes: u64, total: u64) -> f64 {
    let mut sim = Sim::new(0);
    let rt = RayRuntime::new(
        &sim,
        hosts,
        NetworkParams::tpu_cluster(),
        RayConfig {
            result_bytes: bytes,
            ..RayConfig::default()
        },
    );
    let m = rt.spawn_benchmark(
        &mut sim,
        SubmissionMode::OpByOp,
        StepWorkload::trivial(),
        total,
    );
    sim.run_to_quiescence();
    m.try_take().unwrap().per_sec()
}

fn main() {
    println!("Ablation: device object store — handle return vs data copy-back\n");
    let hosts = 4;
    let total = 128;
    // Pathways returns handles; its throughput is independent of result
    // size because outputs stay in HBM.
    let pw = pathways_throughput(
        hosts,
        4,
        SubmissionMode::OpByOp,
        StepWorkload::trivial(),
        total,
    )
    .per_sec();
    let mut t = Table::new(&[
        "result bytes",
        "PW (handles)",
        "TF1 (copy to client)",
        "Ray (GPU->DRAM)",
    ]);
    for bytes in [0u64, 4 << 10, 256 << 10, 4 << 20] {
        t.row(vec![
            bytes.to_string(),
            format!("{pw:.0}"),
            format!("{:.0}", tf1_with_result_bytes(hosts, bytes, total)),
            format!("{:.0}", ray_with_result_bytes(hosts, bytes, total)),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: PW flat; TF1/Ray degrade as results grow (§5.1: 'TensorFlow");
    println!("and Ray suffer from their lack of a device object store').");
}
