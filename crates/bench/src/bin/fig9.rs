//! Figure 9 (and Figure 11): traces of gang-scheduled concurrent
//! programs with proportional-share ratios 1:1:1:1 and 1:2:4:8, plus
//! utilization vs client count.

use pathways_bench::table::Table;
use pathways_bench::tenancy::{tenancy_trace, tenancy_trace_with_policy, TenancyPolicy};
use pathways_sim::SimDuration;

fn main() {
    let compute = SimDuration::from_micros(330);
    let window = SimDuration::from_millis(50);
    println!("Figure 9: gang-scheduled interleaving of 4 clients (0.33 ms programs)\n");
    for weights in [[1u32, 1, 1, 1], [1, 2, 4, 8]] {
        let t = tenancy_trace(1, 8, &weights, compute, window);
        println!(
            "proportional share {}:{}:{}:{}  (device-0 utilization {:.0}%)",
            weights[0],
            weights[1],
            weights[2],
            weights[3],
            t.utilization * 100.0
        );
        println!("{}", t.ascii);
        let total: f64 = t.busy_by_label.values().map(|d| d.as_secs_f64()).sum();
        let shares: Vec<String> = t
            .busy_by_label
            .iter()
            .map(|(l, d)| format!("{l}={:.0}%", 100.0 * d.as_secs_f64() / total))
            .collect();
        println!("device time shares: {}\n", shares.join(" "));
    }

    println!("Policy-engine extension: stride vs gang-aware WFQ at 1:2:4:8\n");
    let mut t = Table::new(&["policy", "A", "B", "C", "D", "device-0 utilization"]);
    for (name, policy) in [
        ("stride", TenancyPolicy::Stride),
        ("wfq", TenancyPolicy::WeightedFair),
    ] {
        let tr = tenancy_trace_with_policy(policy, 1, 8, &[1, 2, 4, 8], compute, window);
        let total: f64 = tr.busy_by_label.values().map(|d| d.as_secs_f64()).sum();
        let mut row = vec![name.to_string()];
        for label in ["A", "B", "C", "D"] {
            let share = tr
                .busy_by_label
                .get(label)
                .map(|d| 100.0 * d.as_secs_f64() / total)
                .unwrap_or(0.0);
            row.push(format!("{share:.0}%"));
        }
        row.push(format!("{:.0}%", tr.utilization * 100.0));
        t.row(row);
    }
    println!("{}", t.render());
    println!("both engines realize the weighted shares; WFQ additionally bounds each");
    println!("tenant's burst to one quantum and charges whole-gang device time.\n");

    println!("Figure 11: utilization vs number of clients (0.33 ms programs)\n");
    let mut t = Table::new(&["clients", "device-0 utilization"]);
    for n in [1usize, 4, 8, 16] {
        let weights = vec![1u32; n];
        let tr = tenancy_trace(1, 8, &weights, compute, window);
        t.row(vec![
            n.to_string(),
            format!("{:.0}%", tr.utilization * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape (paper): a single client cannot saturate; with enough");
    println!("clients utilization reaches ~100% with millisecond-scale interleaving.");
}
