//! Controller dispatch throughput, deterministic vs threaded: programs
//! and kernels per wall-clock second pushed through one
//! `PathwaysRuntime`, swept over work-stealing worker counts, plus the
//! named-lock contention profile of each threaded run.
//!
//! Usage: `fig_dispatch [CLIENTS [PROGRAMS_PER_CLIENT [KERNELS]]]` —
//! defaults to `8 64 8`. Worker counts swept: 1, 2, 4, 8. Writes
//! `BENCH_fig_dispatch.json` at the repo root (override the directory
//! with `BENCH_OUT_DIR`).

use pathways_bench::dispatch::{dispatch_point, DispatchStats, DEVICES_PER_ISLAND};
use pathways_bench::perf::{BenchReport, ClusterShape};
use pathways_sim::ExecutorKind;

const WORKER_SWEEP: &[usize] = &[1, 2, 4, 8];

fn row(s: &DispatchStats) {
    println!(
        "{:>13} {:>7} {:>8} {:>9} {:>8.4} {:>12.0} {:>12.0}",
        s.backend,
        s.workers,
        s.programs,
        s.kernels,
        s.wall_secs,
        s.programs_per_sec(),
        s.kernels_per_sec(),
    );
}

fn main() {
    let args: Vec<u32> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap_or_else(|_| panic!("bad count {a:?}")))
        .collect();
    let clients = args.first().copied().unwrap_or(8);
    let programs = args.get(1).copied().unwrap_or(64);
    let kernels = args.get(2).copied().unwrap_or(8);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "Dispatch throughput: {clients} clients x {programs} programs x {kernels} kernels \
         (one client per {DEVICES_PER_ISLAND}-device island), {cores} host cores"
    );
    if cores < 4 {
        println!("note: fewer than 4 host cores; worker-count scaling cannot show a speedup here");
    }
    println!(
        "{:>13} {:>7} {:>8} {:>9} {:>8} {:>12} {:>12}",
        "backend", "workers", "programs", "kernels", "wall_s", "prog/s", "kern/s"
    );

    let mut report = BenchReport::new(
        "fig_dispatch",
        ClusterShape {
            islands: clients,
            hosts_per_island: 1,
            devices_per_host: DEVICES_PER_ISLAND,
        },
    );

    report = report.metric("host_cores", cores as f64);
    let det = dispatch_point(ExecutorKind::Deterministic, clients, programs, kernels);
    row(&det);
    report = report
        .metric("det_programs_per_sec", det.programs_per_sec())
        .metric("det_kernels_per_sec", det.kernels_per_sec());

    let mut by_workers: Vec<(usize, f64)> = Vec::new();
    for &w in WORKER_SWEEP {
        let s = dispatch_point(
            ExecutorKind::Threaded { workers: w },
            clients,
            programs,
            kernels,
        );
        row(&s);
        by_workers.push((w, s.kernels_per_sec()));
        report = report
            .metric(
                format!("threaded_w{w}_programs_per_sec"),
                s.programs_per_sec(),
            )
            .metric(
                format!("threaded_w{w}_kernels_per_sec"),
                s.kernels_per_sec(),
            );
        // Top contended locks for this worker count (profile is sorted
        // most-contended first).
        for p in s.contention.iter().take(3) {
            report = report.metric(
                format!("threaded_w{w}_contended_{}", p.name),
                p.contended as f64,
            );
        }
    }

    let kps = |w: usize| by_workers.iter().find(|(n, _)| *n == w).map(|(_, k)| *k);
    if let (Some(k1), Some(k4)) = (kps(1), kps(4)) {
        let scaling = k4 / k1;
        println!("\nthreaded kernels/sec scaling 1 -> 4 workers: {scaling:.2}x");
        report = report.metric("threaded_scaling_1_to_4", scaling);
    }

    report.write_or_warn();
}
