//! Figure 7: parallel vs sequential asynchronous dispatch —
//! computations/second vs number of pipeline stages, each stage on 4
//! TPU cores of a different host, data flowing over ICI.

use pathways_bench::pipeline::pipeline_throughput;
use pathways_bench::table::Table;
use pathways_core::DispatchMode;
use pathways_sim::SimDuration;

fn main() {
    println!("Figure 7: parallel vs sequential async dispatch (computations/second)");
    let compute = SimDuration::from_micros(10);
    println!("stage computation: {compute}, 4 TPUs per stage, one stage per host\n");
    let mut t = Table::new(&["stages", "Parallel", "Sequential", "speedup"]);
    for stages in [1u32, 4, 8, 16, 32, 64, 128] {
        let programs = (256 / stages).clamp(4, 64) as u64;
        let par = pipeline_throughput(stages, DispatchMode::Parallel, compute, programs);
        let seq = pipeline_throughput(stages, DispatchMode::Sequential, compute, programs);
        t.row(vec![
            stages.to_string(),
            format!("{par:.0}"),
            format!("{seq:.0}"),
            format!("{:.2}x", par / seq),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape (paper): parallel dispatch amortizes fixed client+scheduling");
    println!("overhead as stages grow and clearly beats sequential dispatch at depth.");
}
