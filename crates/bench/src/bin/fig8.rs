//! Figure 8: aggregate throughput of concurrent programs — Pathways
//! time-multiplexing accelerators between 1..N clients, for several
//! per-program compute sizes, against the JAX single-program reference.

use pathways_baselines::{StepWorkload, SubmissionMode};
use pathways_bench::micro::{jax_throughput, pathways_multiclient_throughput};
use pathways_bench::table::Table;
use pathways_sim::SimDuration;

fn main() {
    // Scaled-down configuration B (the full 64-host sweep takes much
    // longer; pass hosts as argv[1] to override).
    let hosts: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let dph = 8;
    println!(
        "Figure 8: aggregate throughput of concurrent programs ({} hosts x {} TPUs)\n",
        hosts, dph
    );
    let computes = [
        SimDuration::from_micros(40),
        SimDuration::from_micros(330),
        SimDuration::from_micros(1040),
        SimDuration::from_micros(2400),
    ];
    let mut header = vec!["clients".to_string()];
    for c in &computes {
        header.push(format!("PW({:.2})", c.as_millis_f64()));
    }
    for c in &computes {
        header.push(format!("JAX({:.2})", c.as_millis_f64()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    // JAX reference: single-program throughput on the same hardware
    // (independent of client count — multi-controller JAX is
    // single-tenant).
    let jax_ref: Vec<f64> = computes
        .iter()
        .map(|c| {
            jax_throughput(
                hosts,
                dph,
                SubmissionMode::OpByOp,
                StepWorkload::sized(*c),
                64,
            )
            .per_sec()
        })
        .collect();
    for clients in [1u32, 2, 4, 8, 16, 32, 64] {
        let mut row = vec![clients.to_string()];
        for c in &computes {
            let window = SimDuration::from_millis(60);
            let agg = pathways_multiclient_throughput(hosts, dph, clients, *c, window, 1);
            row.push(format!("{agg:.0}"));
        }
        for j in &jax_ref {
            row.push(format!("{j:.0}"));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("expected shape (paper): PW aggregate rises with clients until the TPUs");
    println!("saturate, reaching at least the JAX reference; larger computations need");
    println!("fewer clients to saturate.");
}
