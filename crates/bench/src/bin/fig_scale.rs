//! Warehouse-scale sweep: sim-time/wall-time ratio, controller
//! overhead per scheduled kernel, and heal latency vs blast radius,
//! from 4 islands (160 devices) up to 256 islands (10240 devices).
//!
//! Usage: `fig_scale [ISLANDS...]` — island counts to sweep; defaults
//! to `4 16 64 256`. Writes `BENCH_fig_scale.json` at the repo root
//! (override the directory with `BENCH_OUT_DIR`).

use pathways_bench::perf::{BenchReport, ClusterShape};
use pathways_bench::scale::{heal_point, scale_point, DEVICES_PER_HOST, HOSTS_PER_ISLAND};
use pathways_sim::SimDuration;

fn main() {
    let mut sweep: Vec<u32> = std::env::args()
        .skip(1)
        .map(|a| {
            a.parse()
                .unwrap_or_else(|_| panic!("bad island count {a:?}"))
        })
        .collect();
    if sweep.is_empty() {
        sweep = vec![4, 16, 64, 256];
    }

    println!("Scaling sweep: {HOSTS_PER_ISLAND} hosts/island x {DEVICES_PER_HOST} devices/host");
    println!(
        "{:>8} {:>8} {:>7} {:>10} {:>12} {:>8} {:>12} {:>8}",
        "islands", "devices", "steps", "sim/wall", "us/kernel", "slices", "heal_us", "blast"
    );

    let mut report = BenchReport::new(
        "fig_scale",
        ClusterShape {
            islands: *sweep.last().expect("sweep is non-empty"),
            hosts_per_island: HOSTS_PER_ISLAND,
            devices_per_host: DEVICES_PER_HOST,
        },
    );

    for &islands in &sweep {
        let s = scale_point(
            islands,
            SimDuration::from_micros(100),
            SimDuration::from_millis(2),
        );
        let h = heal_point(islands, 40);
        println!(
            "{:>8} {:>8} {:>7} {:>10.3} {:>12.2} {:>8} {:>12.1} {:>8}",
            islands,
            s.devices,
            s.steps,
            s.sim_wall_ratio(),
            s.wall_us_per_kernel(),
            h.live_slices,
            h.heal_wall_us,
            h.blast_radius,
        );
        report = report
            .metric(format!("sim_wall_ratio_i{islands}"), s.sim_wall_ratio())
            .metric(
                format!("wall_us_per_kernel_i{islands}"),
                s.wall_us_per_kernel(),
            )
            .metric(format!("steps_i{islands}"), s.steps as f64)
            .metric(format!("heal_wall_us_i{islands}"), h.heal_wall_us)
            .metric(
                format!("heal_blast_radius_i{islands}"),
                f64::from(h.blast_radius),
            )
            .metric(format!("live_slices_i{islands}"), h.live_slices as f64);
    }
    report.write_or_warn();
}
