//! Table 1: training throughput (tokens/s) of T5 configurations on JAX
//! multi-controller vs Pathways — the paper's headline parity result.

use pathways_bench::table::{fmt_k, Table};
use pathways_bench::training::{
    jax_spmd_tokens_per_sec, pathways_spmd_tokens_per_sec, table1_rows,
};
use pathways_models::TrainSetup;

fn main() {
    println!("Table 1: T5 training throughput (tokens/s), JAX vs Pathways\n");
    let paper: [(f64, f64); 4] = [
        (618_000.0, 618_000.0),
        (90_400.0, 90_400.0),
        (282_800.0, 282_800.0),
        (84_800.0, 84_800.0),
    ];
    let mut t = Table::new(&[
        "Model",
        "Params",
        "TPU cores",
        "JAX",
        "PATHWAYS",
        "paper JAX",
        "paper PW",
    ]);
    for ((model, cores, mfu), (pj, pp)) in table1_rows().into_iter().zip(paper) {
        let mut setup = TrainSetup::new(model.clone(), 1 << 21);
        setup.calib.mfu = mfu;
        let jax = jax_spmd_tokens_per_sec(cores, &setup, 3);
        let pw = pathways_spmd_tokens_per_sec(cores, &setup, 3);
        t.row(vec![
            model.name.clone(),
            format!("{}M", model.params() / 1_000_000),
            cores.to_string(),
            fmt_k(jax),
            fmt_k(pw),
            fmt_k(pj),
            fmt_k(pp),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape (paper): JAX and Pathways columns identical per row —");
    println!("realistic computations fully mask the single-controller overhead.");
    println!("(absolute rows calibrated per-model via MFU; see EXPERIMENTS.md)");
}
