//! Ablation: the §4.5 "single message describing the entire subgraph"
//! scheduling optimization — batched grant messages vs one scheduler
//! message per computation node.
//!
//! The workload is a chained program whose computations all run on the
//! same devices (the PW-C shape), so a host receives many grants per
//! program: batching collapses them into one NIC message.

use pathways_bench::table::Table;
use pathways_core::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways_net::{ClusterSpec, HostId, NetworkParams};
use pathways_sim::{Sim, SimDuration};

fn chained_throughput(hosts: u32, chain: u32, batch_grants: bool, programs: u64) -> f64 {
    let mut sim = Sim::new(0);
    let cfg = PathwaysConfig {
        batch_grants,
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::single_island(hosts, 4),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    let client = rt.client(HostId(hosts - 1));
    let slice = client
        .virtual_slice(SliceRequest::devices(hosts * 4))
        .unwrap();
    let mut b = client.trace("chain");
    let mut prev = None;
    for i in 0..chain {
        let c = b.computation(
            FnSpec::compute_only(format!("s{i}"), SimDuration::from_micros(10)).with_allreduce(4),
            &slice,
        );
        if let Some(p) = prev {
            b.edge(p, c, 8);
        }
        prev = Some(c);
    }
    let program = b.build().unwrap();
    let prepared = client.prepare(&program);
    let h = sim.handle();
    let job = sim.spawn("client", async move {
        let start = h.now();
        for _ in 0..programs {
            client.run(&prepared).await;
        }
        h.now().duration_since(start)
    });
    sim.run_to_quiescence();
    (chain as u64 * programs) as f64 / job.try_take().unwrap().as_secs_f64()
}

fn main() {
    println!("Ablation: batched subgraph grants vs per-node scheduler messages");
    println!("workload: chained computations sharing all devices (PW-C shape)\n");
    let mut t = Table::new(&[
        "hosts",
        "chain",
        "batched (comp/s)",
        "per-node (comp/s)",
        "speedup",
    ]);
    for (hosts, chain) in [(4u32, 32u32), (8, 64), (16, 128)] {
        let batched = chained_throughput(hosts, chain, true, 4);
        let unbatched = chained_throughput(hosts, chain, false, 4);
        t.row(vec![
            hosts.to_string(),
            chain.to_string(),
            format!("{batched:.0}"),
            format!("{unbatched:.0}"),
            format!("{:.2}x", batched / unbatched),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: batching wins as chains lengthen — per-node grant messages");
    println!("serialize on the scheduler host's NIC and delay downstream enqueues.");
}
