//! `fig_heal`: recovered throughput after a mid-trace device kill,
//! across island counts — the elastic-healing companion to the fault
//! tolerance discussion of §4.1/§4.3. A scripted fault kills one device
//! of island 0's training slice halfway through the measurement window;
//! the resource manager remaps the slice onto spare capacity and the
//! client's next submit re-lowers and keeps stepping.

use pathways_bench::heal::healing_throughput;
use pathways_bench::table::Table;
use pathways_sim::SimDuration;

fn main() {
    println!("fig_heal: steps/second around a mid-trace device kill (island 0's slice)");
    let compute = SimDuration::from_micros(200);
    let window = SimDuration::from_millis(20);
    println!(
        "4-TPU gang step, {compute} compute, kill at {}\n",
        window / 2
    );
    let mut t = Table::new(&[
        "islands",
        "pre-kill (isl 0)",
        "post-kill (isl 0)",
        "recovered",
        "failed steps",
        "survivors pre",
        "survivors post",
        "healed",
    ]);
    for islands in [1u32, 2, 4] {
        let out = healing_throughput(islands, compute, window);
        let i0 = &out.islands[0];
        let (surv_pre, surv_post) = if islands > 1 {
            let pre: f64 = out.islands[1..].iter().map(|s| s.pre_per_sec).sum();
            let post: f64 = out.islands[1..].iter().map(|s| s.post_per_sec).sum();
            (format!("{pre:.0}"), format!("{post:.0}"))
        } else {
            ("-".into(), "-".into())
        };
        t.row(vec![
            islands.to_string(),
            format!("{:.0}", i0.pre_per_sec),
            format!("{:.0}", i0.post_per_sec),
            format!("{:.0}%", 100.0 * out.recovery()),
            i0.failed_steps.to_string(),
            surv_pre,
            surv_post,
            out.healed.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: island 0 loses roughly the one in-flight step, is remapped");
    println!("onto the island's spare devices, and recovers to its pre-kill rate; other");
    println!("islands never miss a step. Without healing the client would be dead forever.");
}
