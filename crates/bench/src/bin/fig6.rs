//! Figure 6: the smallest computation for which Pathways matches JAX
//! throughput (masking the single-controller overhead), at 16 hosts
//! (configuration B) and 512 hosts (configuration A).

use pathways_bench::micro::fig6_point;
use pathways_bench::table::Table;
use pathways_sim::SimDuration;

fn main() {
    println!("Figure 6: computation size needed to match JAX throughput\n");
    for (hosts, dph, label) in [
        (16u32, 8u32, "16 hosts / 128 TPUs (B)"),
        (512, 4, "512 hosts / 2048 TPUs (A)"),
    ] {
        let mut t = Table::new(&["compute(ms)", "JAX/s", "PW/s", "PW/JAX"]);
        let mut convergence: Option<f64> = None;
        for us in [
            100u64, 220, 470, 1000, 2200, 4700, 10_000, 22_000, 35_000, 47_000, 100_000,
        ] {
            let compute = SimDuration::from_micros(us);
            let programs = (200_000 / us).clamp(3, 60);
            let (jax, pw) = fig6_point(hosts, dph, compute, programs);
            let ratio = pw / jax;
            if convergence.is_none() && ratio >= 0.95 {
                convergence = Some(us as f64 / 1000.0);
            }
            t.row(vec![
                format!("{:.2}", us as f64 / 1000.0),
                format!("{jax:.1}"),
                format!("{pw:.1}"),
                format!("{ratio:.3}"),
            ]);
        }
        println!("{label}:");
        println!("{}", t.render());
        match convergence {
            Some(ms) => println!("convergence (PW >= 95% of JAX) at ~{ms:.2} ms"),
            None => println!("no convergence in the swept range"),
        }
        println!("paper: 2.39 ms at 16 hosts, 35 ms at 512 hosts\n");
    }
}
