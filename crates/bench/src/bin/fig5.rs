//! Figure 5: dispatch overheads — computations/second vs number of
//! hosts for JAX, Pathways, TF1 and Ray under the OpByOp (-O),
//! Chained (-C) and Fused (-F) submission modes.
//!
//! Workload: a single scalar AllReduce followed by a scalar addition,
//! chained; configuration (A): 4 TPUs per host.

use pathways_baselines::{StepWorkload, SubmissionMode};
use pathways_bench::micro::{jax_throughput, pathways_throughput, ray_throughput, tf1_throughput};
use pathways_bench::table::Table;

fn main() {
    let hosts_sweep: Vec<u32> = std::env::args()
        .nth(1)
        .map(|s| s.split(',').map(|v| v.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![2, 8, 32, 128, 512]);
    let w = StepWorkload::trivial();
    println!("Figure 5: dispatch overhead (computations/second), config A (4 TPU/host)");
    println!(
        "workload: scalar AllReduce + add; chains of {}\n",
        w.chain_len
    );
    let mut t = Table::new(&[
        "hosts", "JAX-O", "JAX-F", "PW-O", "PW-C", "PW-F", "TF-O", "TF-C", "Ray-O", "Ray-C",
        "Ray-F",
    ]);
    for &hosts in &hosts_sweep {
        // Keep simulated work bounded at scale.
        let chains = if hosts >= 128 { 2 } else { 4 };
        let total_chain = w.chain_len as u64 * chains;
        let total_op = if hosts >= 128 { 64 } else { 256 };
        let f = |v: f64| format!("{v:.0}");
        t.row(vec![
            hosts.to_string(),
            f(jax_throughput(hosts, 4, SubmissionMode::OpByOp, w, total_op).per_sec()),
            f(jax_throughput(hosts, 4, SubmissionMode::Fused, w, total_chain).per_sec()),
            f(pathways_throughput(hosts, 4, SubmissionMode::OpByOp, w, total_op).per_sec()),
            f(pathways_throughput(hosts, 4, SubmissionMode::Chained, w, total_chain).per_sec()),
            f(pathways_throughput(hosts, 4, SubmissionMode::Fused, w, total_chain).per_sec()),
            f(tf1_throughput(hosts, 4, SubmissionMode::OpByOp, w, total_op).per_sec()),
            f(tf1_throughput(hosts, 4, SubmissionMode::Chained, w, total_chain).per_sec()),
            f(ray_throughput(hosts, SubmissionMode::OpByOp, w, total_op.min(128)).per_sec()),
            f(ray_throughput(hosts, SubmissionMode::Chained, w, total_chain).per_sec()),
            f(ray_throughput(hosts, SubmissionMode::Fused, w, total_chain).per_sec()),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape (paper): JAX-O >> single-controller -O modes; PW-F matches JAX-F;");
    println!("PW-C above JAX-O at small scale; TF slowest at scale (centralized barrier);");
    println!("Ray an order of magnitude below PW per computation.");
}
