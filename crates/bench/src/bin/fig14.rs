//! Figure 14: chained-program throughput through `ObjectRef` futures —
//! sequential (await-then-submit) vs parallel (submit-the-whole-chain)
//! dispatch, across island counts. Stages are striped round-robin over
//! the islands, so multi-island rows pay DCN handoffs between stages.

use pathways_bench::chain::{chained_throughput, ChainDispatch};
use pathways_bench::table::Table;
use pathways_sim::SimDuration;

fn main() {
    println!("Figure 14: chained-program dispatch via ObjectRef futures (programs/second)");
    let compute = SimDuration::from_micros(50);
    let payload = 1u64 << 16;
    let chain_len = 16u32;
    let chains = 8u64;
    println!(
        "chain of {chain_len} dependent programs, stage compute {compute}, \
         {payload} B handoff, 4 TPUs per stage\n"
    );
    let mut t = Table::new(&["islands", "Sequential", "Parallel", "speedup"]);
    for islands in [1u32, 2, 4] {
        let seq = chained_throughput(
            islands,
            chain_len,
            compute,
            payload,
            ChainDispatch::Sequential,
            chains,
        );
        let par = chained_throughput(
            islands,
            chain_len,
            compute,
            payload,
            ChainDispatch::Parallel,
            chains,
        );
        t.row(vec![
            islands.to_string(),
            format!("{seq:.0}"),
            format!("{par:.0}"),
            format!("{:.2}x", par / seq),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape (paper): submitting dependent programs before their inputs");
    println!("exist hides the per-program client+scheduler latency; the sequential client");
    println!("pays it once per stage, so the gap widens with chain depth and island hops.");
}
