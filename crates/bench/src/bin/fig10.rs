//! Figure 10: the 3B model pipelined over four islands of TPUs
//! connected via DCN achieves the same throughput as one island with
//! the same total core count, because DCN transfers overlap with
//! computation.

use pathways_bench::table::{fmt_k, Table};
use pathways_bench::training::{
    pathways_pipeline_islands_tokens_per_sec, pathways_pipeline_tokens_per_sec, table2_setup,
};

fn main() {
    println!("Figure 10: 3B LM, S=16 M=64 pipeline — one island vs four islands over DCN\n");
    let setup = table2_setup(2048);
    let steps = 2;
    let single = pathways_pipeline_tokens_per_sec(128, 16, 64, &setup, steps);
    let (four, trace) = pathways_pipeline_islands_tokens_per_sec(4, 4, 16, 64, &setup, steps);
    let mut t = Table::new(&["configuration", "tokens/s", "paper"]);
    t.row(vec![
        "1 island x 128 cores (B)".into(),
        fmt_k(single),
        "131.4k".into(),
    ]);
    t.row(vec![
        "4 islands x 32 cores (C)".into(),
        fmt_k(four),
        "131.4k".into(),
    ]);
    println!("{}", t.render());
    println!("ratio four-island/single-island: {:.3}\n", four / single);
    println!("trace (one device per stage, f=forward b=backward a=apply):");
    println!("{trace}");
    println!("expected shape (paper): equal throughput — cross-island DCN transfers are");
    println!("overlapped with computation; the pipeline 'bubble' is visible at the edges.");
}
