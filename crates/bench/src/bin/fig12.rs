//! Figure 12 / §5.3 large-model scaling: 64B and 136B decoder LMs
//! trained data-parallel over two islands connected by DCN, compared to
//! a single island with twice the devices. The paper reports ~97% of
//! the single-island throughput, with gradient transfers of 457 GB
//! (64B) and 1030 GB (136B) per step.

use pathways_bench::table::{fmt_k, Table};
use pathways_bench::training::two_island_scaling;
use pathways_models::{Calibration, TrainSetup, TransformerConfig};

fn main() {
    // Core counts are scaled down by default (pass --full for the
    // paper's 512/1024 per island).
    let full = std::env::args().any(|a| a == "--full");
    let (cores_64, cores_136) = if full { (512, 1024) } else { (128, 256) };
    println!("Figure 12 / §5.3: two-island data-parallel training over DCN\n");
    let mut t = Table::new(&[
        "model",
        "cores/island",
        "2-island tok/s",
        "1-island(2x) tok/s",
        "efficiency",
        "grad xfer",
    ]);
    for (model, cores, batch_seq) in [
        (TransformerConfig::decoder_64b(), cores_64, 1024u64),
        (TransformerConfig::decoder_136b(), cores_136, 1024),
    ] {
        let mut setup = TrainSetup::new(model.clone(), batch_seq * model.seq_len as u64);
        setup.calib = Calibration {
            mfu: 0.30,
            ..Calibration::default()
        };
        let xfer_gb = setup.calib.grad_exchange_bytes(&model) as f64 / 1e9;
        let (two, single) = two_island_scaling(cores, &setup, 2);
        t.row(vec![
            model.name.clone(),
            cores.to_string(),
            fmt_k(two),
            fmt_k(single),
            format!("{:.1}%", 100.0 * two / single),
            format!("{xfer_gb:.0} GB"),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape (paper): ~97% efficiency; transfers of 457 GB / 1030 GB");
    println!("overlap poorly only at step boundaries (trace in paper's Figure 12).");
}
