//! Figure 14 harness: cross-program chaining through `ObjectRef`
//! futures — sequential vs parallel asynchronous dispatch.
//!
//! A chain of `chain_len` dependent single-computation programs, each
//! consuming its predecessor's output through an external input
//! ([`pathways_core::ProgramBuilder::input`]); successive stages are
//! placed round-robin across islands, so inter-stage handoffs cross the
//! DCN when more than one island is used. The *sequential* client
//! awaits every run before submitting the next (the only thing the
//! pre-`ObjectRef` API could express); the *parallel* client submits
//! the entire chain up front and lets the per-shard readiness events in
//! the object store order the kernels.

use pathways_core::{
    Client, CompId, FaultSpec, FnSpec, InputSpec, ObjectRef, PathwaysConfig, PathwaysRuntime,
    PreparedProgram, Run, SliceRequest,
};
use pathways_net::{ClusterSpec, HostId, IslandId, NetworkParams};
use pathways_sim::trace::TraceLog;
use pathways_sim::{FaultPlan, Sim, SimDuration, SimTime};

/// How the client drives a chain of dependent programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainDispatch {
    /// Await each run's results before submitting its consumer — the
    /// dispatch latency of every stage lands on the critical path.
    Sequential,
    /// Submit every stage immediately, feeding output futures forward —
    /// dispatch of stage `k+1` overlaps execution of stage `k`.
    Parallel,
}

/// One chain stage: a prepared single-kernel program plus the ids of
/// its external input (absent for the chain head) and its sink.
struct Stage {
    prepared: PreparedProgram,
    input: Option<CompId>,
    sink: CompId,
}

fn build_stage(
    client: &Client,
    island: IslandId,
    devices: u32,
    stage_compute: SimDuration,
    payload: u64,
    head: bool,
    name: &str,
) -> Stage {
    let slice = client
        .virtual_slice(SliceRequest::devices(devices).in_island(island))
        .expect("island has capacity for one stage slice");
    let mut b = client.trace(name);
    let input = (!head).then(|| b.input(InputSpec::new("prev", devices)));
    let sink = b.computation(
        FnSpec::compute_only("stage", stage_compute).with_output_bytes(payload / devices as u64),
        &slice,
    );
    if let Some(x) = input {
        b.reshard_edge(x, sink, payload / devices as u64);
    }
    Stage {
        prepared: client.prepare(&b.build().expect("stage program is valid")),
        input,
        sink,
    }
}

/// Programs/second of `chains` back-to-back chains of `chain_len`
/// dependent programs, striped round-robin over `islands` islands.
pub fn chained_throughput(
    islands: u32,
    chain_len: u32,
    stage_compute: SimDuration,
    payload: u64,
    dispatch: ChainDispatch,
    chains: u64,
) -> f64 {
    let (elapsed, _trace) = run_chain(
        0,
        islands,
        chain_len,
        stage_compute,
        payload,
        dispatch,
        chains,
        &[],
    );
    (chain_len as u64 * chains) as f64 / elapsed.as_secs_f64()
}

/// Runs the fig14 chained workload under `seed` and an optional fault
/// plan, returning the full event trace. Two calls with equal arguments
/// produce bit-identical traces — the determinism-regression surface
/// for the fault-injection subsystem (faulted runs resolve through
/// typed errors instead of wedging, and the wind-down is replayable).
#[allow(clippy::too_many_arguments)]
pub fn chained_trace(
    seed: u64,
    islands: u32,
    chain_len: u32,
    stage_compute: SimDuration,
    payload: u64,
    dispatch: ChainDispatch,
    chains: u64,
    faults: &[(SimTime, FaultSpec)],
) -> TraceLog {
    run_chain(
        seed,
        islands,
        chain_len,
        stage_compute,
        payload,
        dispatch,
        chains,
        faults,
    )
    .1
}

#[allow(clippy::too_many_arguments)]
fn run_chain(
    seed: u64,
    islands: u32,
    chain_len: u32,
    stage_compute: SimDuration,
    payload: u64,
    dispatch: ChainDispatch,
    chains: u64,
    faults: &[(SimTime, FaultSpec)],
) -> (SimDuration, TraceLog) {
    assert!(islands >= 1 && chain_len >= 1);
    let mut sim = Sim::new(seed);
    // 2 hosts x 4 TPUs per island; each stage gangs 4 devices.
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(islands, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let mut plan: FaultPlan<FaultSpec> = FaultPlan::new();
    for (at, spec) in faults {
        plan.push(*at, *spec);
    }
    rt.install_fault_plan(plan);
    let client = rt.client(HostId(0));
    // One head program (island 0) plus one body program per island;
    // stage k of every chain reuses the body prepared for island
    // k % islands — re-running a lowered program is the cheap path.
    let head = build_stage(
        &client,
        IslandId(0),
        4,
        stage_compute,
        payload,
        true,
        "head",
    );
    let bodies: Vec<Stage> = (0..islands)
        .map(|i| {
            build_stage(
                &client,
                IslandId(i),
                4,
                stage_compute,
                payload,
                false,
                format!("body-i{i}").as_str(),
            )
        })
        .collect();

    let h = sim.handle();
    let job = sim.spawn("client", async move {
        let start = h.now();
        for _ in 0..chains {
            match dispatch {
                ChainDispatch::Sequential => {
                    // Old-style: every stage waits for its producer's
                    // results before it is even submitted.
                    let mut prev: Option<ObjectRef> = None;
                    for k in 0..chain_len {
                        let result = match (&prev, k) {
                            (None, _) => client.run(&head.prepared).await,
                            (Some(p), _) => {
                                let body = &bodies[(k % islands) as usize];
                                client
                                    .submit_with(
                                        &body.prepared,
                                        &[(body.input.unwrap(), p.clone())],
                                    )
                                    .await
                                    .expect("binding matches")
                                    .finish()
                                    .await
                            }
                        };
                        let sink = if k == 0 {
                            head.sink
                        } else {
                            bodies[(k % islands) as usize].sink
                        };
                        prev = result.object_ref(sink);
                    }
                }
                ChainDispatch::Parallel => {
                    // Futures-style: the whole chain is dispatched
                    // before the first kernel finishes.
                    let mut runs: Vec<Run> = Vec::with_capacity(chain_len as usize);
                    let mut prev: Option<ObjectRef> = None;
                    for k in 0..chain_len {
                        let run = match &prev {
                            None => client.submit(&head.prepared).await,
                            Some(p) => {
                                let body = &bodies[(k % islands) as usize];
                                client
                                    .submit_with(
                                        &body.prepared,
                                        &[(body.input.unwrap(), p.clone())],
                                    )
                                    .await
                                    .expect("binding matches")
                            }
                        };
                        let sink = if k == 0 {
                            head.sink
                        } else {
                            bodies[(k % islands) as usize].sink
                        };
                        prev = run.object_ref(sink);
                        runs.push(run);
                    }
                    drop(prev);
                    for run in runs {
                        run.finish().await;
                    }
                }
            }
        }
        h.now().duration_since(start)
    });
    sim.run_to_quiescence();
    let elapsed = job.try_take().unwrap();
    (elapsed, sim.take_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_chaining_beats_sequential() {
        let par = chained_throughput(
            1,
            8,
            SimDuration::from_micros(50),
            1 << 12,
            ChainDispatch::Parallel,
            4,
        );
        let seq = chained_throughput(
            1,
            8,
            SimDuration::from_micros(50),
            1 << 12,
            ChainDispatch::Sequential,
            4,
        );
        assert!(
            par > seq,
            "parallel ({par:.0}/s) should beat sequential ({seq:.0}/s)"
        );
    }

    #[test]
    fn cross_island_chains_complete() {
        let tp = chained_throughput(
            2,
            6,
            SimDuration::from_micros(100),
            1 << 16,
            ChainDispatch::Parallel,
            2,
        );
        assert!(tp > 0.0);
    }
}
