//! Figure 9 / Figure 11 harness: gang-scheduled interleaving traces of
//! concurrent client programs under proportional-share scheduling.

use std::collections::BTreeMap;

use pathways_core::{FnSpec, PathwaysConfig, PathwaysRuntime, SchedPolicy, SliceRequest};
use pathways_net::{ClientId, ClusterSpec, HostId, NetworkParams};
use pathways_sim::{Sim, SimDuration, SimTime, TraceLog};

/// Result of a multi-tenancy trace run.
#[derive(Debug)]
pub struct TenancyTrace {
    /// ASCII rendering of a sample of device timelines.
    pub ascii: String,
    /// Device busy time per client label on device 0.
    pub busy_by_label: BTreeMap<String, SimDuration>,
    /// Fraction of the window device 0 was busy.
    pub utilization: f64,
}

/// Which weighted policy engine a tenancy trace drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenancyPolicy {
    /// Stride scheduling ([`SchedPolicy::ProportionalShare`]).
    Stride,
    /// Gang-aware weighted-fair queueing ([`SchedPolicy::WeightedFair`]).
    WeightedFair,
}

impl TenancyPolicy {
    fn to_sched_policy(self, weights: BTreeMap<ClientId, u32>) -> SchedPolicy {
        match self {
            TenancyPolicy::Stride => SchedPolicy::ProportionalShare(weights),
            TenancyPolicy::WeightedFair => SchedPolicy::WeightedFair {
                weights,
                // Roughly one short program of gang time per turn, so
                // the interleaving stays millisecond-scale like stride.
                quantum: SimDuration::from_micros(500),
            },
        }
    }
}

/// Runs `weights.len()` clients with the given proportional-share
/// weights submitting `compute`-sized programs for `window`, and
/// returns the device-0 trace and accounting. Stride policy; see
/// [`tenancy_trace_with_policy`] to choose the engine.
pub fn tenancy_trace(
    hosts: u32,
    devices_per_host: u32,
    weights: &[u32],
    compute: SimDuration,
    window: SimDuration,
) -> TenancyTrace {
    tenancy_trace_with_policy(
        TenancyPolicy::Stride,
        hosts,
        devices_per_host,
        weights,
        compute,
        window,
    )
}

/// [`tenancy_trace`] with an explicit policy engine.
pub fn tenancy_trace_with_policy(
    policy: TenancyPolicy,
    hosts: u32,
    devices_per_host: u32,
    weights: &[u32],
    compute: SimDuration,
    window: SimDuration,
) -> TenancyTrace {
    let mut sim = Sim::new(0);
    let weight_map: BTreeMap<ClientId, u32> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| (ClientId(i as u32), *w))
        .collect();
    let cfg = PathwaysConfig {
        policy: policy.to_sched_policy(weight_map),
        sched_horizon: SimDuration::from_micros(600),
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::single_island(hosts, devices_per_host),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    let n_devices = hosts * devices_per_host;
    let labels = ["A", "B", "C", "D", "E", "F", "G", "H"];
    for (i, _w) in weights.iter().enumerate() {
        let client = rt.client_labeled(HostId(i as u32 % hosts), labels[i % labels.len()]);
        let slice = client
            .virtual_slice(SliceRequest::devices(n_devices))
            .unwrap();
        let mut b = client.trace(format!("w{i}"));
        b.computation(
            FnSpec::compute_only("step", compute).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = std::sync::Arc::new(client.prepare(&program));
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        crate::stream::spawn_program_stream(&mut sim, client, prepared, 12, counter);
    }
    sim.run_until_time(SimTime::ZERO + window);
    let trace = sim.take_trace();
    // Sample up to 8 device rows for the rendering, over the middle of
    // the window (skipping warm-up).
    let start = SimTime::ZERO + SimDuration::from_nanos(window.as_nanos() / 4);
    let end = SimTime::ZERO + window;
    let mut sample = TraceLog::new();
    for d in 0..8.min(n_devices) {
        let track = format!("d{d:04}");
        for s in trace.track(&track) {
            sample.record(track.clone(), s.label.clone(), s.start, s.end);
        }
    }
    TenancyTrace {
        ascii: sample.render_ascii(start, end, 96),
        busy_by_label: trace.busy_by_label("d0000"),
        utilization: trace.utilization("d0000", start, end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_split_evenly() {
        let t = tenancy_trace(
            1,
            8,
            &[1, 1, 1, 1],
            SimDuration::from_micros(330),
            SimDuration::from_millis(40),
        );
        let busys: Vec<f64> = t.busy_by_label.values().map(|d| d.as_secs_f64()).collect();
        assert_eq!(busys.len(), 4);
        let max = busys.iter().cloned().fold(0.0, f64::max);
        let min = busys.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.4, "shares uneven: {busys:?}");
        assert!(t.utilization > 0.9, "utilization {:.2}", t.utilization);
    }

    #[test]
    fn weighted_shares_follow_ratios() {
        let t = tenancy_trace(
            1,
            8,
            &[1, 2, 4, 8],
            SimDuration::from_micros(330),
            SimDuration::from_millis(60),
        );
        let a = t.busy_by_label["A"].as_secs_f64();
        let d = t.busy_by_label["D"].as_secs_f64();
        assert!(d / a > 3.0, "D/A ratio {:.2} too small", d / a);
    }

    #[test]
    fn weighted_fair_shares_follow_ratios() {
        // The same 1:2:4:8 scenario as stride, under the WFQ engine:
        // device time still follows the weights.
        let t = tenancy_trace_with_policy(
            TenancyPolicy::WeightedFair,
            1,
            8,
            &[1, 2, 4, 8],
            SimDuration::from_micros(330),
            SimDuration::from_millis(60),
        );
        let a = t.busy_by_label["A"].as_secs_f64();
        let d = t.busy_by_label["D"].as_secs_f64();
        assert!(d / a > 3.0, "D/A ratio {:.2} too small", d / a);
        assert!(t.utilization > 0.9, "utilization {:.2}", t.utilization);
    }

    #[test]
    fn trace_renders_interleaving() {
        let t = tenancy_trace(
            1,
            8,
            &[1, 1],
            SimDuration::from_micros(330),
            SimDuration::from_millis(20),
        );
        assert!(
            t.ascii.contains('A') && t.ascii.contains('B'),
            "{}",
            t.ascii
        );
    }
}
