//! §5.3 harnesses: real-model training throughput (Tables 1 and 2,
//! Figures 10 and 12).

use pathways_baselines::{JaxConfig, JaxRuntime, StepWorkload, SubmissionMode};
use pathways_core::{PathwaysConfig, PathwaysRuntime, SliceRequest, VirtualSlice};
use pathways_models::{
    gpipe_program, measure_tokens_per_sec, spmd_program, two_island_data_parallel_program,
    Calibration, TrainSetup, TransformerConfig,
};
use pathways_net::{ClusterSpec, HostId, IslandId, NetworkParams};
use pathways_sim::{Sim, SimDuration};

/// Tokens/second of Pathways training `setup` as SPMD over `cores`
/// cores (4 per host, configuration A style).
pub fn pathways_spmd_tokens_per_sec(cores: u32, setup: &TrainSetup, steps: u32) -> f64 {
    let hosts = cores.div_ceil(4);
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::single_island(hosts, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let client = rt.client(HostId(hosts - 1));
    let slice = client.virtual_slice(SliceRequest::devices(cores)).unwrap();
    let program = spmd_program(&client, &slice, setup);
    let prepared = client.prepare(&program);
    let tokens = setup.global_batch_tokens;
    let job = sim.spawn("train", async move {
        measure_tokens_per_sec(&client, &prepared, tokens, steps).await
    });
    sim.run_to_quiescence();
    job.try_take().unwrap()
}

/// Tokens/second of the JAX multi-controller training the same step: the
/// step kernel's compute time and gradient-exchange collective come from
/// the identical cost model, so any difference is pure system overhead.
pub fn jax_spmd_tokens_per_sec(cores: u32, setup: &TrainSetup, steps: u32) -> f64 {
    let hosts = cores.div_ceil(4);
    let mut sim = Sim::new(0);
    let rt = JaxRuntime::new(
        &sim,
        ClusterSpec::single_island(hosts, 4),
        NetworkParams::tpu_cluster(),
        JaxConfig::default(),
    );
    let compute = setup
        .calib
        .step_compute_time(&setup.model, setup.global_batch_tokens, cores);
    // Same calibrated non-overlapped collective time as the Pathways
    // SPMD program (identical model code, §5.3), folded into the fused
    // step kernel.
    let comm_time = compute.mul_f64(setup.calib.spmd_comm_fraction);
    let w = StepWorkload {
        compute: compute + comm_time,
        allreduce_bytes: 4,
        chain_len: 1,
    };
    let m = rt.spawn_benchmark(&mut sim, SubmissionMode::OpByOp, w, steps as u64);
    sim.run_to_quiescence();
    let t = m.try_take().unwrap();
    setup.global_batch_tokens as f64 * steps as f64 / t.elapsed.as_secs_f64()
}

/// Tokens/second of a GPipe pipeline with `s_count` stages and
/// `microbatches` micro-batches over `cores` cores in one island.
pub fn pathways_pipeline_tokens_per_sec(
    cores: u32,
    s_count: u32,
    microbatches: u32,
    setup: &TrainSetup,
    steps: u32,
) -> f64 {
    let hosts = cores.div_ceil(8);
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::single_island(hosts, 8),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let client = rt.client(HostId(hosts - 1));
    let per_stage = cores / s_count;
    let stages: Vec<VirtualSlice> = (0..s_count)
        .map(|_| {
            client
                .virtual_slice(SliceRequest::devices(per_stage).contiguous())
                .unwrap()
        })
        .collect();
    let program = gpipe_program(&client, &stages, microbatches, setup);
    let prepared = client.prepare(&program);
    let tokens = setup.global_batch_tokens;
    let job = sim.spawn("train", async move {
        measure_tokens_per_sec(&client, &prepared, tokens, steps).await
    });
    sim.run_to_quiescence();
    job.try_take().unwrap()
}

/// Figure 10: the same 16-stage pipeline on four islands connected by
/// DCN (configuration C shape scaled to `cores` total). Returns tokens/s
/// and the rendered device trace of one step.
pub fn pathways_pipeline_islands_tokens_per_sec(
    islands: u32,
    hosts_per_island: u32,
    s_count: u32,
    microbatches: u32,
    setup: &TrainSetup,
    steps: u32,
) -> (f64, String) {
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(islands, hosts_per_island, 8),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let client = rt.client(HostId(0));
    let stages_per_island = s_count / islands;
    let per_stage = hosts_per_island * 8 / stages_per_island;
    let mut stages = Vec::new();
    for i in 0..islands {
        for _ in 0..stages_per_island {
            stages.push(
                client
                    .virtual_slice(
                        SliceRequest::devices(per_stage)
                            .in_island(IslandId(i))
                            .contiguous(),
                    )
                    .unwrap(),
            );
        }
    }
    let program = gpipe_program(&client, &stages, microbatches, setup);
    let prepared = client.prepare(&program);
    let tokens = setup.global_batch_tokens;
    let job = sim.spawn("train", async move {
        measure_tokens_per_sec(&client, &prepared, tokens, steps).await
    });
    sim.run_to_quiescence();
    let tps = job.try_take().unwrap();
    let trace = sim.take_trace();
    let spans = trace.spans();
    let (start, end) = spans.iter().fold(
        (pathways_sim::SimTime::MAX, pathways_sim::SimTime::ZERO),
        |acc, s| (acc.0.min(s.start), acc.1.max(s.end)),
    );
    // Render a sample of one device per stage.
    let mut sample = pathways_sim::TraceLog::new();
    for (i, st) in stages.iter().enumerate() {
        let dev = st.physical_devices()[0];
        let track = format!("d{:04}", dev.0);
        for s in trace.track(&track) {
            sample.record(format!("stage{i:02}"), s.label.clone(), s.start, s.end);
        }
    }
    (tps, sample.render_ascii(start, end, 100))
}

/// §5.3's two-island data-parallel scaling: returns `(two_island_tps,
/// single_island_2x_tps)` — the paper reports the former at ~97% of the
/// latter.
pub fn two_island_scaling(cores_per_island: u32, setup: &TrainSetup, steps: u32) -> (f64, f64) {
    let hosts = cores_per_island / 4;
    // Two islands over DCN.
    let two = {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::islands_of(2, hosts, 4),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let s0 = client
            .virtual_slice(SliceRequest::devices(cores_per_island).in_island(IslandId(0)))
            .unwrap();
        let s1 = client
            .virtual_slice(SliceRequest::devices(cores_per_island).in_island(IslandId(1)))
            .unwrap();
        let program = two_island_data_parallel_program(&client, &[s0, s1], setup);
        let prepared = client.prepare(&program);
        let tokens = setup.global_batch_tokens;
        let job = sim.spawn("train", async move {
            measure_tokens_per_sec(&client, &prepared, tokens, steps).await
        });
        sim.run_to_quiescence();
        job.try_take().unwrap()
    };
    // One island with twice the devices (the ICI-only reference).
    let single = pathways_spmd_tokens_per_sec(2 * cores_per_island, setup, steps);
    (two, single)
}

/// The Table 1 rows with their per-model calibrated MFUs (the paper's
/// testbed efficiency differs per model; see EXPERIMENTS.md).
pub fn table1_rows() -> Vec<(TransformerConfig, u32, f64)> {
    // MFUs include the calibrated SPMD communication fraction (the
    // effective step time is compute x (1 + spmd_comm_fraction)).
    vec![
        (TransformerConfig::t5_base(), 32, 0.65),
        (TransformerConfig::t5_large(), 32, 0.27),
        (TransformerConfig::t5_3b(), 512, 0.205),
        (TransformerConfig::t5_11b(), 512, 0.23),
    ]
}

/// Builds the standard Table 2 training setup for the 3B decoder LM at
/// the given global batch (in sequences).
pub fn table2_setup(batch_sequences: u64) -> TrainSetup {
    let model = TransformerConfig::decoder_3b();
    let tokens = batch_sequences * model.seq_len as u64;
    let mut setup = TrainSetup::new(model, tokens);
    setup.calib = Calibration {
        mfu: 0.30,
        ..Calibration::default()
    };
    setup
}

/// A reduced-size smoke version of a Table 1 row used by tests.
pub fn table1_point(model: TransformerConfig, cores: u32, mfu: f64, steps: u32) -> (f64, f64) {
    let mut setup = TrainSetup::new(model, 1 << 20);
    setup.calib.mfu = mfu;
    let jax = jax_spmd_tokens_per_sec(cores, &setup, steps);
    let pw = pathways_spmd_tokens_per_sec(cores, &setup, steps);
    (jax, pw)
}

/// Shorthand used by tests and the quick benches.
pub fn quick_setup() -> TrainSetup {
    let mut s = TrainSetup::new(TransformerConfig::decoder_3b(), 256 * 1024);
    s.calib.mfu = 0.30;
    s.calib.kernel_overhead = SimDuration::from_micros(25);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jax_and_pathways_match_on_real_models() {
        // Table 1's claim: identical throughput because real steps mask
        // the single-controller overhead.
        let (jax, pw) = table1_point(TransformerConfig::t5_base(), 32, 0.51, 3);
        let ratio = pw / jax;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "PW {pw:.0} vs JAX {jax:.0} tokens/s (ratio {ratio:.3})"
        );
    }

    #[test]
    fn pipeline_competitive_with_spmd() {
        // Table 2's claim: pipelining is competitive with SPMD at the
        // same core count.
        let setup = quick_setup();
        let spmd = pathways_spmd_tokens_per_sec(32, &setup, 2);
        let pipe = pathways_pipeline_tokens_per_sec(32, 4, 16, &setup, 2);
        let ratio = pipe / spmd;
        assert!(
            (0.7..=1.4).contains(&ratio),
            "pipeline {pipe:.0} vs SPMD {spmd:.0} tokens/s"
        );
    }

    #[test]
    fn two_island_efficiency_is_high() {
        let mut setup = quick_setup();
        // A gradient exchange sized so DCN cost is small but non-zero.
        setup.calib.grad_bytes_per_param = 0.05;
        let (two, single) = two_island_scaling(16, &setup, 2);
        let eff = two / single;
        assert!(
            (0.7..=1.05).contains(&eff),
            "two-island {two:.0} vs single {single:.0} tokens/s (eff {eff:.2})"
        );
    }
}
