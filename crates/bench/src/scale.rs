//! `fig_scale` harness: warehouse-scale sweeps over island count.
//!
//! The paper's controller is sized for thousands of accelerators; this
//! sweep checks that the *simulation of it* stays tractable there too.
//! Two measurements per sweep point:
//!
//! - [`scale_point`] — end-to-end stepping: one training client per
//!   island gang-steps a 4-device slice for a fixed virtual window, and
//!   we report the sim-time/wall-time ratio plus the wall-clock
//!   controller overhead per completed step. This exercises every hot
//!   path rebuilt for O(10k) devices: the timer wheel, the readiness
//!   fan-out in the object store, and the gang rendezvous indexes.
//! - [`heal_point`] — resource-manager healing in isolation: allocate a
//!   fixed per-island load, kill one device, and time `heal`. With the
//!   device -> slices reverse index the cost tracks the blast radius
//!   (slices actually touching the dead device), not the cluster size.
//!
//! Wall-clock numbers are measured with [`std::time::Instant`] and are
//! machine-dependent; the virtual-time numbers are deterministic.

// This module is the designated wall-time measurement site: pathlint's
// wall-clock rule and clippy.toml both exempt it (and only it).
#![allow(clippy::disallowed_types)]

use std::sync::Arc;
use std::time::Instant;

use pathways_core::{FnSpec, PathwaysConfig, PathwaysRuntime, ResourceManager, SliceRequest};
use pathways_net::{ClusterSpec, IslandId, NetworkParams};
use pathways_sim::{Sim, SimDuration, SimTime};

/// Hosts per island in the sweep (fixed across points).
pub const HOSTS_PER_ISLAND: u32 = 5;
/// Devices per host in the sweep (fixed across points).
pub const DEVICES_PER_HOST: u32 = 8;

/// One end-to-end sweep point of the scaling figure.
#[derive(Debug, Clone, Copy)]
pub struct ScaleStats {
    /// Island count of this point.
    pub islands: u32,
    /// Total devices simulated.
    pub devices: u32,
    /// Virtual window covered by the run.
    pub sim_window: SimDuration,
    /// Wall-clock seconds spent simulating that window.
    pub wall_secs: f64,
    /// Training steps completed across all islands.
    pub steps: u64,
    /// Train-step computations enqueued onto devices (steps x gang
    /// size) — the unit the controller overhead is charged per.
    pub kernels: u64,
}

impl ScaleStats {
    /// Virtual seconds simulated per wall second (bigger is better).
    pub fn sim_wall_ratio(&self) -> f64 {
        self.sim_window.as_secs_f64() / self.wall_secs
    }

    /// Wall-clock microseconds of controller + simulator overhead per
    /// scheduled kernel.
    pub fn wall_us_per_kernel(&self) -> f64 {
        if self.kernels == 0 {
            f64::NAN
        } else {
            self.wall_secs * 1e6 / self.kernels as f64
        }
    }
}

/// Runs the end-to-end stepping workload at `islands` islands of
/// [`HOSTS_PER_ISLAND`] x [`DEVICES_PER_HOST`]: one client per island,
/// each looping a 4-device gang train step until `window` of virtual
/// time has elapsed. Virtual-time behavior is deterministic for equal
/// arguments; only the wall-clock fields vary run to run.
pub fn scale_point(islands: u32, compute: SimDuration, window: SimDuration) -> ScaleStats {
    const GANG: u32 = 4;
    assert!(islands >= 1);
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(islands, HOSTS_PER_ISLAND, DEVICES_PER_HOST),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let end = SimTime::ZERO + window;

    let mut jobs = Vec::new();
    for i in 0..islands {
        let host = rt
            .topology()
            .hosts_of_island(IslandId(i))
            .next()
            .expect("island has hosts");
        let client = rt.client(host);
        let slice = client
            .virtual_slice(SliceRequest::devices(GANG).in_island(IslandId(i)))
            .expect("island fits one gang slice");
        let mut b = client.trace(format!("step-i{i}"));
        b.computation(
            FnSpec::compute_only("train_step", compute).with_allreduce(u64::from(GANG)),
            &slice,
        );
        let prepared = client.prepare(&b.build().expect("valid step program"));
        let h = client.handle().clone();
        jobs.push(sim.spawn(format!("stepper-{i}"), async move {
            let mut steps = 0u64;
            while h.now() < end {
                client.run(&prepared).await;
                steps += 1;
            }
            steps
        }));
    }

    let start = Instant::now();
    sim.run_to_quiescence();
    let wall_secs = start.elapsed().as_secs_f64();

    let steps: u64 = jobs
        .into_iter()
        .map(|j| j.try_take().expect("stepper finished"))
        .sum();
    ScaleStats {
        islands,
        devices: islands * HOSTS_PER_ISLAND * DEVICES_PER_HOST,
        sim_window: window,
        wall_secs,
        steps,
        kernels: steps * u64::from(GANG),
    }
}

/// One healing sweep point.
#[derive(Debug, Clone, Copy)]
pub struct HealScaleStats {
    /// Island count of this point.
    pub islands: u32,
    /// Total devices in the topology.
    pub devices: u32,
    /// Live slices at the moment of the kill.
    pub live_slices: usize,
    /// Slices whose mapping includes the killed device — the blast
    /// radius healing work should be proportional to.
    pub blast_radius: u32,
    /// Wall-clock microseconds spent inside `heal`.
    pub heal_wall_us: f64,
}

/// Allocates `slices_per_island` 4-device slices in every island of an
/// `islands` x [`HOSTS_PER_ISLAND`] x [`DEVICES_PER_HOST`] topology,
/// kills one device of island 0, and times the heal. The resulting
/// remappings are deterministic; only `heal_wall_us` varies run to run.
pub fn heal_point(islands: u32, slices_per_island: u32) -> HealScaleStats {
    assert!(islands >= 1);
    let topo =
        Arc::new(ClusterSpec::islands_of(islands, HOSTS_PER_ISLAND, DEVICES_PER_HOST).build());
    let rm = ResourceManager::new(Arc::clone(&topo));
    let client = pathways_net::ClientId(0);
    let mut live = Vec::new();
    for i in 0..islands {
        for _ in 0..slices_per_island {
            live.push(
                rm.allocate(client, SliceRequest::devices(4).in_island(IslandId(i)))
                    .expect("island has capacity for the sweep load"),
            );
        }
    }
    let victim = topo
        .devices_of_island(IslandId(0))
        .next()
        .expect("island has devices");
    let blast_radius = rm.device_load(victim);

    let start = Instant::now();
    let events = rm.heal(&[victim], &[]);
    let heal_wall_us = start.elapsed().as_secs_f64() * 1e6;

    assert_eq!(
        events.len() as u32,
        blast_radius,
        "every slice touching the victim must be visited"
    );
    HealScaleStats {
        islands,
        devices: islands * HOSTS_PER_ISLAND * DEVICES_PER_HOST,
        live_slices: live.len(),
        blast_radius,
        heal_wall_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_point_is_deterministic_in_virtual_time() {
        let a = scale_point(
            4,
            SimDuration::from_micros(100),
            SimDuration::from_millis(2),
        );
        let b = scale_point(
            4,
            SimDuration::from_micros(100),
            SimDuration::from_millis(2),
        );
        assert_eq!(a.steps, b.steps, "virtual-time step count must replay");
        assert!(a.steps >= 4, "every island must complete steps");
        assert_eq!(a.devices, 160);
    }

    #[test]
    fn heal_blast_radius_is_island_local() {
        let small = heal_point(2, 4);
        let big = heal_point(8, 4);
        // Load is per island, so the blast radius must not grow with
        // the island count.
        assert_eq!(small.blast_radius, big.blast_radius);
        assert!(big.live_slices > small.live_slices);
    }
}
