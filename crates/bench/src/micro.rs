//! Micro-benchmark harnesses for Figures 5, 6 and 8: the trivial
//! scalar-AllReduce computation under the OpByOp / Chained / Fused
//! submission modes, on Pathways and the three baselines.

use pathways_baselines::{
    JaxConfig, JaxRuntime, RayConfig, RayRuntime, StepWorkload, SubmissionMode, Tf1Config,
    Tf1Runtime, Throughput,
};
use pathways_core::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways_net::{ClusterSpec, CollectiveKind, HostId, NetworkParams};
use pathways_sim::{Sim, SimDuration, SimTime};

/// Measures Pathways throughput for the micro-benchmark.
///
/// `total` computations are executed; in Chained/Fused modes they are
/// grouped into programs of `workload.chain_len`.
pub fn pathways_throughput(
    hosts: u32,
    devices_per_host: u32,
    mode: SubmissionMode,
    workload: StepWorkload,
    total: u64,
) -> Throughput {
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::single_island(hosts, devices_per_host),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    // The client process lives on the island's last host (the scheduler
    // is on the first).
    let client = rt.client(HostId(hosts - 1));
    let n_devices = hosts * devices_per_host;
    let slice = client
        .virtual_slice(SliceRequest::devices(n_devices))
        .unwrap();
    let coll = {
        let devs = slice.physical_devices();
        rt.core().fabric.ici_collective_time(
            CollectiveKind::AllReduce,
            &devs,
            workload.allreduce_bytes,
        )
    };
    let chain = workload.chain_len as u64;
    let (runs, comps_per_run, program) = match mode {
        SubmissionMode::OpByOp => {
            let mut b = client.trace("micro-o");
            b.computation(
                FnSpec::compute_only("step", workload.compute)
                    .with_allreduce(workload.allreduce_bytes),
                &slice,
            );
            (total, 1, b.build().unwrap())
        }
        SubmissionMode::Chained => {
            let mut b = client.trace("micro-c");
            let mut prev = None;
            for i in 0..workload.chain_len {
                let c = b.computation(
                    FnSpec::compute_only(format!("step{i}"), workload.compute)
                        .with_allreduce(workload.allreduce_bytes),
                    &slice,
                );
                if let Some(p) = prev {
                    b.edge(p, c, 8);
                }
                prev = Some(c);
            }
            (total / chain, chain, b.build().unwrap())
        }
        SubmissionMode::Fused => {
            let mut b = client.trace("micro-f");
            // One XLA kernel executing the whole chain on-device: the
            // first collective is explicit (gang semantics), the rest
            // fold into compute time.
            let fused = (workload.compute + coll) * (chain - 1) + workload.compute;
            b.computation(
                FnSpec::compute_only("fused", fused).with_allreduce(workload.allreduce_bytes),
                &slice,
            );
            (total / chain, chain, b.build().unwrap())
        }
    };
    let prepared = client.prepare(&program);
    let h = sim.handle();
    let job = sim.spawn("client", async move {
        let start = h.now();
        for _ in 0..runs {
            client.run(&prepared).await;
        }
        h.now().duration_since(start)
    });
    sim.run_to_quiescence();
    Throughput {
        computations: runs * comps_per_run,
        elapsed: job.try_take().unwrap(),
    }
}

/// Measures JAX multi-controller throughput for the micro-benchmark.
pub fn jax_throughput(
    hosts: u32,
    devices_per_host: u32,
    mode: SubmissionMode,
    workload: StepWorkload,
    total: u64,
) -> Throughput {
    let mut sim = Sim::new(0);
    let rt = JaxRuntime::new(
        &sim,
        ClusterSpec::single_island(hosts, devices_per_host),
        NetworkParams::tpu_cluster(),
        JaxConfig::default(),
    );
    let m = rt.spawn_benchmark(&mut sim, mode, workload, total);
    sim.run_to_quiescence();
    m.try_take().unwrap()
}

/// Measures TF1 single-controller throughput for the micro-benchmark.
pub fn tf1_throughput(
    hosts: u32,
    devices_per_host: u32,
    mode: SubmissionMode,
    workload: StepWorkload,
    total: u64,
) -> Throughput {
    let mut sim = Sim::new(0);
    let rt = Tf1Runtime::new(
        &sim,
        ClusterSpec::single_island(hosts, devices_per_host),
        NetworkParams::tpu_cluster(),
        Tf1Config::default(),
    );
    let m = rt.spawn_benchmark(&mut sim, mode, workload, total);
    sim.run_to_quiescence();
    m.try_take().unwrap()
}

/// Measures Ray throughput (one GPU per host) for the micro-benchmark.
pub fn ray_throughput(
    hosts: u32,
    mode: SubmissionMode,
    workload: StepWorkload,
    total: u64,
) -> Throughput {
    let mut sim = Sim::new(0);
    let rt = RayRuntime::new(
        &sim,
        hosts,
        NetworkParams::tpu_cluster(),
        RayConfig::default(),
    );
    let m = rt.spawn_benchmark(&mut sim, mode, workload, total);
    sim.run_to_quiescence();
    m.try_take().unwrap()
}

/// One Figure 6 sweep point: JAX and Pathways throughput at a given
/// per-computation device time.
pub fn fig6_point(
    hosts: u32,
    devices_per_host: u32,
    compute: SimDuration,
    programs: u64,
) -> (f64, f64) {
    let w = StepWorkload::sized(compute);
    let jax = jax_throughput(hosts, devices_per_host, SubmissionMode::OpByOp, w, programs);
    let pw = pathways_throughput(hosts, devices_per_host, SubmissionMode::OpByOp, w, programs);
    (jax.per_sec(), pw.per_sec())
}

/// Figure 8 point: aggregate Pathways throughput with `clients`
/// concurrent clients submitting `compute`-sized single-computation
/// programs, measured over `window`.
pub fn pathways_multiclient_throughput(
    hosts: u32,
    devices_per_host: u32,
    clients: u32,
    compute: SimDuration,
    window: SimDuration,
    outstanding: u32,
) -> f64 {
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::single_island(hosts, devices_per_host),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let n_devices = hosts * devices_per_host;
    let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    for c in 0..clients {
        let client = rt.client(HostId(c % hosts));
        let slice = client
            .virtual_slice(SliceRequest::devices(n_devices))
            .unwrap();
        let mut b = client.trace(format!("t{c}"));
        b.computation(
            FnSpec::compute_only("step", compute).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = std::sync::Arc::new(client.prepare(&program));
        crate::stream::spawn_program_stream(
            &mut sim,
            client,
            prepared,
            outstanding,
            std::sync::Arc::clone(&counter),
        );
    }
    sim.run_until_time(SimTime::ZERO + window);
    counter.load(std::sync::atomic::Ordering::Relaxed) as f64 / window.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pathways_fused_matches_jax_fused_at_small_scale() {
        // The Figure 5 headline: with enough work per node, the
        // single-controller overhead is masked.
        let w = StepWorkload::trivial();
        let jax = jax_throughput(2, 8, SubmissionMode::Fused, w, 512).per_sec();
        let pw = pathways_throughput(2, 8, SubmissionMode::Fused, w, 512).per_sec();
        let ratio = pw / jax;
        assert!(
            ratio > 0.85,
            "PW-F should be within 15% of JAX-F, ratio {ratio:.2} (jax {jax:.0}/s pw {pw:.0}/s)"
        );
    }

    #[test]
    fn jax_wins_op_by_op() {
        // Multi-controller dispatch over PCIe beats the single
        // controller for unbatched tiny computations.
        let w = StepWorkload::trivial();
        let jax = jax_throughput(2, 8, SubmissionMode::OpByOp, w, 128).per_sec();
        let pw = pathways_throughput(2, 8, SubmissionMode::OpByOp, w, 128).per_sec();
        assert!(jax > pw, "jax {jax:.0}/s vs pw {pw:.0}/s");
    }

    #[test]
    fn pathways_chained_beats_its_op_by_op() {
        let w = StepWorkload::trivial();
        let o = pathways_throughput(2, 8, SubmissionMode::OpByOp, w, 128).per_sec();
        let c = pathways_throughput(2, 8, SubmissionMode::Chained, w, 256).per_sec();
        assert!(c > o, "chained {c:.0}/s vs op-by-op {o:.0}/s");
    }

    #[test]
    fn fig6_converges_with_larger_computations() {
        let (jax_small, pw_small) = fig6_point(4, 8, SimDuration::from_micros(100), 40);
        let (jax_big, pw_big) = fig6_point(4, 8, SimDuration::from_millis(10), 10);
        assert!(
            pw_small / jax_small < 0.95,
            "tiny computations should not reach parity"
        );
        assert!(
            pw_big / jax_big > 0.9,
            "10ms computations should reach parity"
        );
    }

    #[test]
    fn multiclient_aggregate_grows_until_saturation() {
        // Tiny computations: a single client's submission thread cannot
        // saturate the accelerators, more clients can (Figure 8).
        // outstanding = 1: like the paper's clients, each waits for the
        // previous program's handles before submitting the next.
        let one = pathways_multiclient_throughput(
            2,
            8,
            1,
            SimDuration::from_micros(40),
            SimDuration::from_millis(50),
            1,
        );
        let eight = pathways_multiclient_throughput(
            2,
            8,
            8,
            SimDuration::from_micros(40),
            SimDuration::from_millis(50),
            1,
        );
        assert!(
            eight > one * 1.3,
            "8 clients {eight:.0}/s vs 1 client {one:.0}/s"
        );
        // Saturation bound: devices can do at most 1/compute programs/s
        // (plus collective time, so strictly below this).
        let bound = 1.0 / SimDuration::from_micros(40).as_secs_f64();
        assert!(
            eight <= bound,
            "{eight:.0}/s exceeds device bound {bound:.0}/s"
        );
    }
}
