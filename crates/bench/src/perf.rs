//! Machine-readable benchmark reports.
//!
//! Every figure/table harness can serialize its headline numbers to a
//! `BENCH_<figure>.json` file at the repository root — one JSON object
//! per figure with the metric names and values, the cluster shape the
//! numbers were measured on, and the git revision that produced them.
//! A perf trajectory across commits is then a matter of collecting the
//! files (CI uploads them as artifacts; see `.github/workflows/ci.yml`).
//!
//! The workspace has no JSON dependency, so the writer is hand-rolled:
//! the format is flat (strings and finite numbers only), escaping is
//! the minimal JSON string escape, and non-finite floats serialize as
//! `null` (JSON has no NaN/Infinity).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The cluster shape a report's numbers were measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterShape {
    /// Number of ICI islands.
    pub islands: u32,
    /// Hosts per island.
    pub hosts_per_island: u32,
    /// Devices per host.
    pub devices_per_host: u32,
}

impl ClusterShape {
    /// Total device count.
    pub fn devices(&self) -> u32 {
        self.islands * self.hosts_per_island * self.devices_per_host
    }
}

/// One figure's machine-readable result set.
#[derive(Debug, Clone)]
pub struct BenchReport {
    figure: String,
    cluster: ClusterShape,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Starts an empty report for `figure` (e.g. `"fig5"`), measured on
    /// `cluster`.
    pub fn new(figure: impl Into<String>, cluster: ClusterShape) -> Self {
        BenchReport {
            figure: figure.into(),
            cluster,
            metrics: Vec::new(),
        }
    }

    /// Appends one named metric. Insertion order is preserved in the
    /// output.
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Serializes the report as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"figure\": {},", json_string(&self.figure));
        let _ = writeln!(out, "  \"git_rev\": {},", json_string(&git_rev()));
        let _ = writeln!(
            out,
            "  \"cluster\": {{\"islands\": {}, \"hosts_per_island\": {}, \"devices_per_host\": {}, \"devices\": {}}},",
            self.cluster.islands,
            self.cluster.hosts_per_island,
            self.cluster.devices_per_host,
            self.cluster.devices(),
        );
        out.push_str("  \"metrics\": {");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_string(name), json_number(*value));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes the report to `BENCH_<figure>.json` in the output
    /// directory (`BENCH_OUT_DIR` if set, else the repository root) and
    /// returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = out_dir().join(format!("BENCH_{}.json", self.figure));
        std::fs::write(&path, self.to_json())?;
        Ok(path.canonicalize().unwrap_or(path))
    }

    /// Like [`BenchReport::write`] but prints a one-line warning instead
    /// of failing — benches should report numbers even when the output
    /// directory is read-only.
    pub fn write_or_warn(&self) {
        match self.write() {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_{}.json: {e}", self.figure),
        }
    }
}

/// The directory `BENCH_*.json` files land in: `$BENCH_OUT_DIR` when
/// set, else the repository root (two levels above this crate).
fn out_dir() -> PathBuf {
    match std::env::var_os("BENCH_OUT_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Short git revision of the working tree, `"unknown"` when git is
/// unavailable (e.g. running from an exported tarball). A non-empty
/// `GIT_REV` environment variable overrides the probe — CI and release
/// tooling use it to stamp reports with the commit under test rather
/// than whatever HEAD the checkout happens to be on.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    let out = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => "unknown".to_string(),
    }
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal; non-finite floats become `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_to_valid_flat_json() {
        let json = BenchReport::new(
            "figX",
            ClusterShape {
                islands: 4,
                hosts_per_island: 5,
                devices_per_host: 8,
            },
        )
        .metric("steps_per_sec", 1234.5)
        .metric("ratio", f64::NAN)
        .to_json();
        assert!(json.contains("\"figure\": \"figX\""));
        assert!(json.contains("\"devices\": 160"));
        assert!(json.contains("\"steps_per_sec\": 1234.5"));
        // NaN is not JSON: it must degrade to null.
        assert!(json.contains("\"ratio\": null"));
        assert!(!json.contains("NaN"));
        // The git_rev field is present whatever its value.
        assert!(json.contains("\"git_rev\": \""));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
