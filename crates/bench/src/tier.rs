//! `fig_tier` harness: the two headline curves of the tiered object
//! store.
//!
//! **Family 1 — throughput vs HBM budget.** One client steps a 4-device
//! gang program and *retains every output* (the accumulating-activations
//! pattern), so resident bytes grow linearly with steps. Against a large
//! HBM budget nothing spills; as the budget shrinks the store's LRU
//! spiller moves cold shards to host DRAM (and past the DRAM budget, to
//! disk), and each spill costs virtual transfer time on the producing
//! device's critical path. The curve is steps/second of virtual time vs
//! budget, with the spill/demotion counters alongside.
//!
//! **Family 2 — recovery time vs checkpoint interval.** A producer with
//! expensive compute finishes, a scripted fault kills one device holding
//! its output, and a consumer submitted after the kill binds the lost
//! object. With checkpointing enabled the object restores from disk (one
//! disk read); with `checkpoint_interval: None` it recomputes via
//! lineage (re-runs the producer). The curve is virtual time from kill
//! to consumer completion vs interval — the classic
//! checkpoint-vs-recompute tradeoff, which flips whenever recompute cost
//! drops below the disk read.

use pathways_core::{
    FaultSpec, FnSpec, InputSpec, PathwaysConfig, PathwaysRuntime, SliceRequest, Tier, TierConfig,
};
use pathways_net::{ClusterSpec, DeviceId, HostId, IslandId, NetworkParams};
use pathways_sim::{FaultPlan, Sim, SimDuration, SimTime};

/// One point of the throughput-vs-HBM-budget sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillPoint {
    /// HBM capacity per device.
    pub hbm_bytes: u64,
    /// Gang steps completed per second of virtual time.
    pub steps_per_sec: f64,
    /// HBM -> DRAM spills performed.
    pub spills: u64,
    /// DRAM -> disk demotions performed.
    pub demotions: u64,
    /// Total bytes moved out of HBM.
    pub spilled_bytes: u64,
}

/// One point of the recovery-time-vs-checkpoint-interval sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPoint {
    /// Checkpoint interval (`None` = lineage recompute only).
    pub checkpoint_interval: Option<SimDuration>,
    /// Virtual time from the device kill to the consumer completing on
    /// the recovered object.
    pub recovery: SimDuration,
    /// True if the object came back from a disk checkpoint, false if it
    /// was recomputed via lineage.
    pub restored: bool,
}

/// Bytes per output shard in both workloads (4-shard gang: 128 MiB per
/// retained object in the spill sweep).
pub const SHARD_BYTES: u64 = 32 << 20;

/// Runs the retained-outputs stepping workload against `hbm_bytes` of
/// HBM per device and returns the measured point. Deterministic for
/// equal arguments.
pub fn spill_throughput(hbm_bytes: u64, steps: u32) -> SpillPoint {
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(1, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig {
            hbm_per_device: hbm_bytes,
            tiers: Some(TierConfig {
                // Family 1 isolates the spill path: no checkpoint
                // traffic, and a DRAM budget small enough that the
                // tightest HBM budget also demotes to disk.
                dram_per_host: 512 << 20,
                checkpoint_interval: None,
                ..TierConfig::default()
            }),
            ..PathwaysConfig::default()
        },
    );
    let client = rt.client(HostId(0));
    let job = sim.spawn("stepper", async move {
        let h = client.handle().clone();
        let slice = client
            .virtual_slice(SliceRequest::devices(4))
            .expect("island fits a 4-device slice");
        let mut b = client.trace("step");
        let k = b.computation(
            FnSpec::compute_only("train_step", SimDuration::from_micros(500))
                .with_output_bytes(SHARD_BYTES),
            &slice,
        );
        let prepared = client.prepare(&b.build().expect("valid step program"));
        let mut retained = Vec::new();
        for _ in 0..steps {
            let run = client.submit(&prepared).await;
            let out = run.object_ref(k).expect("sink exists");
            run.finish().await;
            assert_eq!(out.ready().await, Ok(()), "steps never fail here");
            retained.push(out); // accumulate: this is the spill pressure
        }
        let elapsed = h.now() - SimTime::ZERO;
        drop(retained);
        elapsed
    });
    sim.run_to_quiescence();
    let elapsed = job.try_take().expect("stepper finished");
    let core = rt.core();
    let stats = core.store.tier_stats();
    let spilled_bytes: u64 = core
        .store
        .spill_events()
        .iter()
        .filter(|e| e.from == Tier::Hbm)
        .map(|e| e.bytes)
        .sum();
    assert!(core.store.is_empty(), "retained outputs must drain");
    SpillPoint {
        hbm_bytes,
        steps_per_sec: f64::from(steps) / elapsed.as_secs_f64(),
        spills: stats.spills,
        demotions: stats.demotions,
        spilled_bytes,
    }
}

/// Measures kill-to-consumer-completion time for one checkpoint
/// interval: an expensive (200ms) producer on island 0 finishes, a
/// scripted fault kills one device holding its output at 300ms, and a
/// consumer submitted just after binds the lost object. Deterministic
/// for equal arguments.
pub fn recovery_latency(checkpoint_interval: Option<SimDuration>) -> RecoveryPoint {
    const KILL_US: u64 = 300_000;
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(2, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig {
            tiers: Some(TierConfig {
                checkpoint_interval,
                ..TierConfig::default()
            }),
            ..PathwaysConfig::default()
        },
    );
    // Device 1 is always part of the deterministic least-loaded
    // 4-device placement on island 0.
    rt.install_fault_plan(FaultPlan::new().at(
        SimTime::ZERO + SimDuration::from_micros(KILL_US),
        FaultSpec::Device(DeviceId(1)),
    ));
    let client = rt.client(HostId(2));
    let job = sim.spawn("client", async move {
        let h = client.handle().clone();
        let slice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .expect("island 0 fits the producer");
        let mut b = client.trace("producer");
        let k = b.computation(
            FnSpec::compute_only("expensive", SimDuration::from_millis(200))
                .with_output_bytes(SHARD_BYTES),
            &slice,
        );
        let run = client
            .submit(&client.prepare(&b.build().expect("valid producer")))
            .await;
        let out = run.object_ref(k).expect("sink exists");
        run.finish().await;
        assert_eq!(out.ready().await, Ok(()), "producer must succeed");

        h.sleep_until(SimTime::ZERO + SimDuration::from_micros(KILL_US + 100))
            .await;
        let t0 = h.now();
        let cslice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .expect("island 0 still has 4 live devices");
        let mut b = client.trace("consumer");
        let x = b.input(InputSpec::new("x", out.shards()));
        let c = b.computation(
            FnSpec::compute_only("consume", SimDuration::from_micros(100)),
            &cslice,
        );
        b.reshard_edge(x, c, 1 << 16);
        let crun = client
            .submit_with(
                &client.prepare(&b.build().expect("valid consumer")),
                &[(x, out)],
            )
            .await
            .expect("binding is valid");
        let cout = crun.object_ref(c).expect("sink exists");
        crun.finish().await;
        assert_eq!(cout.ready().await, Ok(()), "consumer must recover");
        h.now() - t0
    });
    sim.run_to_quiescence();
    let recovery = job.try_take().expect("client finished");
    let stats = rt.faults().recovery_stats();
    assert_eq!(
        stats.restored + stats.recomputed,
        1,
        "exactly one recovery: {stats:?}"
    );
    RecoveryPoint {
        checkpoint_interval,
        recovery,
        restored: stats.restored == 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinking_hbm_budget_spills_and_costs_throughput() {
        let roomy = spill_throughput(2 << 30, 24);
        let tight = spill_throughput(256 << 20, 24);
        assert_eq!(roomy.spills, 0, "2 GiB fits 24 x 32 MiB shards");
        assert!(tight.spills > 0, "256 MiB cannot hold 768 MiB of outputs");
        assert!(tight.demotions > 0, "spill overflow must demote to disk");
        assert!(
            tight.steps_per_sec < roomy.steps_per_sec,
            "spill transfers must cost virtual time ({} vs {})",
            tight.steps_per_sec,
            roomy.steps_per_sec
        );
    }

    #[test]
    fn checkpoint_restore_beats_expensive_recompute() {
        let lineage = recovery_latency(None);
        let ckpt = recovery_latency(Some(SimDuration::from_millis(10)));
        assert!(!lineage.restored, "no checkpoint exists to restore");
        assert!(ckpt.restored, "a committed checkpoint must win");
        assert!(
            ckpt.recovery < lineage.recovery,
            "disk read must beat a 200ms recompute ({} vs {})",
            ckpt.recovery,
            lineage.recovery
        );
    }
}
