//! `fig_tier` harness: the two headline curves of the tiered object
//! store.
//!
//! **Family 1 — throughput vs HBM budget.** One client steps a 4-device
//! gang program and *retains every output* (the accumulating-activations
//! pattern), so resident bytes grow linearly with steps. Against a large
//! HBM budget nothing spills; as the budget shrinks the store's LRU
//! spiller moves cold shards to host DRAM (and past the DRAM budget, to
//! disk), and each spill costs virtual transfer time on the producing
//! device's critical path. The curve is steps/second of virtual time vs
//! budget, with the spill/demotion counters alongside.
//!
//! **Family 2 — recovery time vs checkpoint interval.** A producer with
//! expensive compute finishes, a scripted fault kills one device holding
//! its output, and a consumer submitted after the kill binds the lost
//! object. With checkpointing enabled the object restores from disk (one
//! disk read); with `checkpoint_interval: None` it recomputes via
//! lineage (re-runs the producer). The curve is virtual time from kill
//! to consumer completion vs interval — the classic
//! checkpoint-vs-recompute tradeoff, which flips whenever recompute cost
//! drops below the disk read.
//!
//! **Family 3 — the restore-vs-recompute frontier.** Same harness as
//! family 2 but with checkpointing *fixed* (10ms interval) and the
//! producer's compute cost and shard size swept instead: the recovery
//! manager models both paths and picks the cheaper one per object, so
//! the sweep maps where the frontier sits — cheap producers recompute
//! even though a checkpoint exists, expensive ones restore.
//!
//! **Family 4 — durable disk bytes vs checkpoint-GC keep-K.** One
//! retained object commits a base epoch plus a train of single-shard
//! delta epochs; keep-last-K GC (which never collects an epoch still
//! holding the newest durable copy of some shard) bounds the disk
//! footprint, and sealed append-only segments are reclaimed whole once
//! their extents die. The curve is epochs retained / live / durably
//! occupied disk bytes vs K.
//!
//! **Family 5 — DAG-chain recovery.** A shared upstream producer feeds
//! two downstream objects on the same slice; one device kill loses a
//! shard of all three at once. The recovery manager absorbs the batch,
//! walks the lineage DAG in topological order, and recomputes the
//! shared upstream exactly once (trace-counted) before rebuilding both
//! consumers.

use pathways_core::{
    FaultSpec, FnSpec, InputSpec, PathwaysConfig, PathwaysRuntime, SliceRequest, Tier, TierConfig,
};
use pathways_net::{ClusterSpec, DeviceId, HostId, IslandId, NetworkParams};
use pathways_sim::{FaultPlan, Sim, SimDuration, SimTime};

/// One point of the throughput-vs-HBM-budget sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillPoint {
    /// HBM capacity per device.
    pub hbm_bytes: u64,
    /// Gang steps completed per second of virtual time.
    pub steps_per_sec: f64,
    /// HBM -> DRAM spills performed.
    pub spills: u64,
    /// DRAM -> disk demotions performed.
    pub demotions: u64,
    /// Total bytes moved out of HBM.
    pub spilled_bytes: u64,
}

/// One point of the recovery-time-vs-checkpoint-interval sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPoint {
    /// Checkpoint interval (`None` = lineage recompute only).
    pub checkpoint_interval: Option<SimDuration>,
    /// Virtual time from the device kill to the consumer completing on
    /// the recovered object.
    pub recovery: SimDuration,
    /// True if the object came back from a disk checkpoint, false if it
    /// was recomputed via lineage.
    pub restored: bool,
}

/// One point of the restore-vs-recompute frontier sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Producer compute cost per shard.
    pub compute: SimDuration,
    /// Bytes per output shard (4 shards per object).
    pub shard_bytes: u64,
    /// Virtual time from the device kill to the consumer completing on
    /// the recovered object.
    pub recovery: SimDuration,
    /// Which path the recovery manager's cost model picked: disk
    /// restore (`true`) or lineage recompute (`false`). A checkpoint
    /// always exists in this sweep — the choice is purely economic.
    pub restored: bool,
}

/// One point of the checkpoint-GC sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcPoint {
    /// Keep-last-K GC policy swept.
    pub keep: u32,
    /// Epochs committed (one full base + single-shard deltas).
    pub epochs_committed: u32,
    /// Epochs still in the chain after GC (last K plus any older epoch
    /// holding the newest durable copy of some shard).
    pub epochs_retained: usize,
    /// Live checkpoint bytes on disk.
    pub disk_live_bytes: u64,
    /// Live + dead bytes in unreclaimed segments — what the disk
    /// durably holds after GC.
    pub disk_occupied_bytes: u64,
    /// Sealed append-only segments reclaimed whole.
    pub segments_reclaimed: u64,
}

/// Result of the DAG-chain recovery scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainPoint {
    /// Virtual time from the device kill to a post-kill consumer of
    /// both downstream objects completing.
    pub recovery: SimDuration,
    /// Objects rebuilt via lineage (the whole 3-object chain).
    pub recomputed: u64,
    /// How many times the shared upstream producer was recomputed
    /// (trace-counted; the dedup guarantee makes this exactly one).
    pub upstream_recomputes: u64,
}

/// Bytes per output shard in both workloads (4-shard gang: 128 MiB per
/// retained object in the spill sweep).
pub const SHARD_BYTES: u64 = 32 << 20;

/// Runs the retained-outputs stepping workload against `hbm_bytes` of
/// HBM per device and returns the measured point. Deterministic for
/// equal arguments.
pub fn spill_throughput(hbm_bytes: u64, steps: u32) -> SpillPoint {
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(1, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig {
            hbm_per_device: hbm_bytes,
            tiers: Some(TierConfig {
                // Family 1 isolates the spill path: no checkpoint
                // traffic, and a DRAM budget small enough that the
                // tightest HBM budget also demotes to disk.
                dram_per_host: 512 << 20,
                checkpoint_interval: None,
                ..TierConfig::default()
            }),
            ..PathwaysConfig::default()
        },
    );
    let client = rt.client(HostId(0));
    let job = sim.spawn("stepper", async move {
        let h = client.handle().clone();
        let slice = client
            .virtual_slice(SliceRequest::devices(4))
            .expect("island fits a 4-device slice");
        let mut b = client.trace("step");
        let k = b.computation(
            FnSpec::compute_only("train_step", SimDuration::from_micros(500))
                .with_output_bytes(SHARD_BYTES),
            &slice,
        );
        let prepared = client.prepare(&b.build().expect("valid step program"));
        let mut retained = Vec::new();
        for _ in 0..steps {
            let run = client.submit(&prepared).await;
            let out = run.object_ref(k).expect("sink exists");
            run.finish().await;
            assert_eq!(out.ready().await, Ok(()), "steps never fail here");
            retained.push(out); // accumulate: this is the spill pressure
        }
        let elapsed = h.now() - SimTime::ZERO;
        drop(retained);
        elapsed
    });
    sim.run_to_quiescence();
    let elapsed = job.try_take().expect("stepper finished");
    let core = rt.core();
    let stats = core.store.tier_stats();
    let spilled_bytes: u64 = core
        .store
        .spill_events()
        .iter()
        .filter(|e| e.from == Tier::Hbm)
        .map(|e| e.bytes)
        .sum();
    assert!(core.store.is_empty(), "retained outputs must drain");
    SpillPoint {
        hbm_bytes,
        steps_per_sec: f64::from(steps) / elapsed.as_secs_f64(),
        spills: stats.spills,
        demotions: stats.demotions,
        spilled_bytes,
    }
}

/// Shared families-2-and-3 harness: a producer with `compute` per-shard
/// cost and `shard_bytes` outputs on island 0 finishes, a scripted
/// fault kills one device holding its output at 300ms, and a consumer
/// submitted just after binds the lost object. Returns kill-to-consumer
/// time and whether the recovery went through the checkpoint restore
/// path. Deterministic for equal arguments.
fn recovery_case(
    checkpoint_interval: Option<SimDuration>,
    compute: SimDuration,
    shard_bytes: u64,
) -> (SimDuration, bool) {
    const KILL_US: u64 = 300_000;
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(2, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig {
            tiers: Some(TierConfig {
                checkpoint_interval,
                ..TierConfig::default()
            }),
            ..PathwaysConfig::default()
        },
    );
    // Device 1 is always part of the deterministic least-loaded
    // 4-device placement on island 0.
    rt.install_fault_plan(FaultPlan::new().at(
        SimTime::ZERO + SimDuration::from_micros(KILL_US),
        FaultSpec::Device(DeviceId(1)),
    ));
    let client = rt.client(HostId(2));
    let job = sim.spawn("client", async move {
        let h = client.handle().clone();
        let slice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .expect("island 0 fits the producer");
        let mut b = client.trace("producer");
        let k = b.computation(
            FnSpec::compute_only("expensive", compute).with_output_bytes(shard_bytes),
            &slice,
        );
        let run = client
            .submit(&client.prepare(&b.build().expect("valid producer")))
            .await;
        let out = run.object_ref(k).expect("sink exists");
        run.finish().await;
        assert_eq!(out.ready().await, Ok(()), "producer must succeed");

        h.sleep_until(SimTime::ZERO + SimDuration::from_micros(KILL_US + 100))
            .await;
        let t0 = h.now();
        let cslice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .expect("island 0 still has 4 live devices");
        let mut b = client.trace("consumer");
        let x = b.input(InputSpec::new("x", out.shards()));
        let c = b.computation(
            FnSpec::compute_only("consume", SimDuration::from_micros(100)),
            &cslice,
        );
        b.reshard_edge(x, c, 1 << 16);
        let crun = client
            .submit_with(
                &client.prepare(&b.build().expect("valid consumer")),
                &[(x, out)],
            )
            .await
            .expect("binding is valid");
        let cout = crun.object_ref(c).expect("sink exists");
        crun.finish().await;
        assert_eq!(cout.ready().await, Ok(()), "consumer must recover");
        h.now() - t0
    });
    sim.run_to_quiescence();
    let recovery = job.try_take().expect("client finished");
    let stats = rt.faults().recovery_stats();
    assert_eq!(
        stats.restored + stats.recomputed,
        1,
        "exactly one recovery: {stats:?}"
    );
    (recovery, stats.restored == 1)
}

/// Measures kill-to-consumer-completion time for one checkpoint
/// interval: an expensive (200ms) producer on island 0 finishes, a
/// scripted fault kills one device holding its output at 300ms, and a
/// consumer submitted just after binds the lost object. Deterministic
/// for equal arguments.
pub fn recovery_latency(checkpoint_interval: Option<SimDuration>) -> RecoveryPoint {
    let (recovery, restored) = recovery_case(
        checkpoint_interval,
        SimDuration::from_millis(200),
        SHARD_BYTES,
    );
    RecoveryPoint {
        checkpoint_interval,
        recovery,
        restored,
    }
}

/// One point of the restore-vs-recompute frontier: checkpointing fixed
/// at a 10ms interval (a committed epoch always exists by kill time),
/// producer compute and shard size swept. The recovery manager models
/// both paths — restore time is the per-epoch disk latency plus the
/// restore set over disk bandwidth; recompute is the producer's
/// estimated device time — and takes the cheaper, so the sweep locates
/// the frontier. Deterministic for equal arguments.
pub fn recovery_frontier(compute: SimDuration, shard_bytes: u64) -> FrontierPoint {
    let (recovery, restored) =
        recovery_case(Some(SimDuration::from_millis(10)), compute, shard_bytes);
    FrontierPoint {
        compute,
        shard_bytes,
        recovery,
        restored,
    }
}

/// Drives one retained 4-shard object through `epochs` checkpoint
/// commits — one full base epoch then single-shard deltas rotating
/// through the shards — under a keep-last-`keep` GC policy, and
/// returns the disk-footprint accounting. Segments are deliberately
/// small (2 MiB vs 1 MiB shards) so GC'd epochs drain sealed segments
/// and whole-segment reclamation shows up in the curve. Deterministic
/// for equal arguments.
pub fn checkpoint_gc(keep: u32, epochs: u32) -> GcPoint {
    assert!(epochs >= 1, "need at least the base epoch");
    const GC_SHARD_BYTES: u64 = 1 << 20;
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(1, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig {
            tiers: Some(TierConfig {
                // Epochs are driven explicitly below; the periodic
                // checkpointer would race extra commits into the train.
                checkpoint_interval: None,
                checkpoint_keep: keep,
                disk_segment_bytes: 2 << 20,
                ..TierConfig::default()
            }),
            ..PathwaysConfig::default()
        },
    );
    let store = rt.core().store.clone();
    let client = rt.client(HostId(0));
    let job = sim.spawn("gc-driver", async move {
        let slice = client
            .virtual_slice(SliceRequest::devices(4))
            .expect("island fits a 4-device slice");
        let mut b = client.trace("state");
        let k = b.computation(
            FnSpec::compute_only("init", SimDuration::from_micros(500))
                .with_output_bytes(GC_SHARD_BYTES),
            &slice,
        );
        let run = client
            .submit(&client.prepare(&b.build().expect("valid program")))
            .await;
        let out = run.object_ref(k).expect("sink exists");
        run.finish().await;
        assert_eq!(out.ready().await, Ok(()), "producer must succeed");
        // Base epoch: all four shards are dirty from production.
        assert!(
            store.checkpoint_now(out.id()).is_some(),
            "base epoch must commit"
        );
        for e in 0..epochs - 1 {
            // Each training "step" re-dirties one shard; the next
            // commit persists just that delta.
            assert!(store.dirty_shard(out.id(), e % 4), "object is live");
            assert!(
                store.checkpoint_now(out.id()).is_some(),
                "delta epoch must commit"
            );
        }
        out
    });
    sim.run_to_quiescence();
    let out = job.try_take().expect("gc driver finished");
    let store = rt.core().store.clone();
    let seg = store.segment_stats();
    let point = GcPoint {
        keep,
        epochs_committed: epochs,
        epochs_retained: store.checkpoint_epochs(out.id()),
        disk_live_bytes: store.disk_used(),
        disk_occupied_bytes: store.disk_occupied(),
        segments_reclaimed: seg.reclaimed,
    };
    drop(out);
    point
}

/// The DAG-chain recovery scenario: upstream producer `A` feeds two
/// downstream objects `B` and `C` on the same 4-device slice, all
/// three refs retained, checkpointing off (pure lineage). A scripted
/// kill of one slice device at 300ms loses a shard of all three at
/// once; the recovery manager absorbs them as one batch, orders the
/// lineage DAG topologically, recomputes `A` exactly once, then
/// rebuilds `B` and `C` against the recovered upstream. A consumer of
/// both downstream objects submitted after the kill times the chain.
/// Deterministic.
pub fn chain_recovery() -> ChainPoint {
    const KILL_US: u64 = 300_000;
    const CHAIN_SHARD_BYTES: u64 = 4 << 20;
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(2, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig {
            tiers: Some(TierConfig {
                checkpoint_interval: None,
                ..TierConfig::default()
            }),
            ..PathwaysConfig::default()
        },
    );
    rt.install_fault_plan(FaultPlan::new().at(
        SimTime::ZERO + SimDuration::from_micros(KILL_US),
        FaultSpec::Device(DeviceId(1)),
    ));
    let client = rt.client(HostId(2));
    let job = sim.spawn("client", async move {
        let h = client.handle().clone();
        // One slice for the whole chain: every object shards over the
        // same 4 devices, so the kill loses a shard of each.
        let slice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(0)))
            .expect("island 0 fits the chain");
        let mut b = client.trace("upstream");
        let ka = b.computation(
            FnSpec::compute_only("shared_upstream", SimDuration::from_millis(1))
                .with_output_bytes(CHAIN_SHARD_BYTES),
            &slice,
        );
        let arun = client
            .submit(&client.prepare(&b.build().expect("valid upstream")))
            .await;
        let out_a = arun.object_ref(ka).expect("sink exists");
        arun.finish().await;
        assert_eq!(out_a.ready().await, Ok(()), "upstream must succeed");

        let mut downstream = Vec::new();
        for name in ["left", "right"] {
            let mut b = client.trace(name);
            let x = b.input(InputSpec::new("a", out_a.shards()));
            let k = b.computation(
                FnSpec::compute_only(name, SimDuration::from_micros(500))
                    .with_output_bytes(CHAIN_SHARD_BYTES),
                &slice,
            );
            b.reshard_edge(x, k, 1 << 16);
            let run = client
                .submit_with(
                    &client.prepare(&b.build().expect("valid downstream")),
                    &[(x, out_a.clone())],
                )
                .await
                .expect("binding is valid");
            let out = run.object_ref(k).expect("sink exists");
            run.finish().await;
            assert_eq!(out.ready().await, Ok(()), "downstream must succeed");
            downstream.push(out);
        }
        let out_c = downstream.pop().expect("two downstream objects");
        let out_b = downstream.pop().expect("two downstream objects");

        h.sleep_until(SimTime::ZERO + SimDuration::from_micros(KILL_US + 100))
            .await;
        let t0 = h.now();
        // The consumer runs on island 1: its enqueued kernels wait for
        // B and C, and the recompute of B and C re-lowers onto healed
        // island-0 devices — putting the consumer on those same queues
        // would park it *ahead* of the very kernels it waits on.
        let dslice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(1)))
            .expect("island 1 is untouched by the kill");
        let mut b = client.trace("consumer");
        let xb = b.input(InputSpec::new("b", out_b.shards()));
        let xc = b.input(InputSpec::new("c", out_c.shards()));
        let d = b.computation(
            FnSpec::compute_only("consume", SimDuration::from_micros(100)),
            &dslice,
        );
        b.reshard_edge(xb, d, 1 << 16);
        b.reshard_edge(xc, d, 1 << 16);
        let drun = client
            .submit_with(
                &client.prepare(&b.build().expect("valid consumer")),
                &[(xb, out_b), (xc, out_c)],
            )
            .await
            .expect("bindings are valid");
        let dout = drun.object_ref(d).expect("sink exists");
        drun.finish().await;
        assert_eq!(dout.ready().await, Ok(()), "chain must recover");
        (h.now() - t0, out_a.id())
    });
    sim.run_to_quiescence();
    let (recovery, a_id) = job.try_take().expect("client finished");
    let stats = rt.faults().recovery_stats();
    assert_eq!(
        stats.restored + stats.recomputed,
        3,
        "the whole 3-object chain recovers: {stats:?}"
    );
    let label = format!("recompute {a_id}");
    let upstream_recomputes = sim
        .take_trace()
        .spans()
        .iter()
        .filter(|s| s.track == "tiers" && s.label == label)
        .count() as u64;
    ChainPoint {
        recovery,
        recomputed: stats.recomputed,
        upstream_recomputes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinking_hbm_budget_spills_and_costs_throughput() {
        let roomy = spill_throughput(2 << 30, 24);
        let tight = spill_throughput(256 << 20, 24);
        assert_eq!(roomy.spills, 0, "2 GiB fits 24 x 32 MiB shards");
        assert!(tight.spills > 0, "256 MiB cannot hold 768 MiB of outputs");
        assert!(tight.demotions > 0, "spill overflow must demote to disk");
        assert!(
            tight.steps_per_sec < roomy.steps_per_sec,
            "spill transfers must cost virtual time ({} vs {})",
            tight.steps_per_sec,
            roomy.steps_per_sec
        );
    }

    #[test]
    fn frontier_flips_from_recompute_to_restore_with_compute_cost() {
        // 4 x 1 MiB restore set: ~200us disk latency + ~2.1ms transfer.
        // A 200us producer (est. 800us recompute) is cheaper than that;
        // a 4ms producer (est. 16ms) is not.
        let cheap = recovery_frontier(SimDuration::from_micros(200), 1 << 20);
        let dear = recovery_frontier(SimDuration::from_millis(4), 1 << 20);
        assert!(
            !cheap.restored,
            "cheap producer must recompute despite a committed checkpoint"
        );
        assert!(dear.restored, "expensive producer must restore from disk");
        assert!(
            dear.recovery < SimDuration::from_millis(16),
            "restore must dodge the 16ms recompute ({})",
            dear.recovery
        );
    }

    #[test]
    fn gc_keep_k_bounds_durable_disk_bytes() {
        let tight = checkpoint_gc(1, 12);
        let loose = checkpoint_gc(8, 12);
        assert_eq!(tight.epochs_committed, 12);
        // keep=1 still retains the epochs holding the newest durable
        // copy of each of the 4 rotating shards.
        assert!(
            tight.epochs_retained >= 4 && tight.epochs_retained < loose.epochs_retained,
            "retention must scale with K ({} vs {})",
            tight.epochs_retained,
            loose.epochs_retained
        );
        assert!(
            tight.disk_live_bytes < loose.disk_live_bytes,
            "tighter GC keeps fewer live bytes"
        );
        assert!(
            tight.disk_occupied_bytes <= loose.disk_occupied_bytes,
            "tighter GC cannot occupy more disk"
        );
        assert!(
            tight.segments_reclaimed > 0,
            "GC'd delta epochs must drain sealed segments"
        );
    }

    #[test]
    fn chain_recovery_recomputes_shared_upstream_once() {
        let p = chain_recovery();
        assert_eq!(p.recomputed, 3, "A, B and C all rebuild via lineage");
        assert_eq!(
            p.upstream_recomputes, 1,
            "the shared upstream is deduped to one recompute"
        );
        assert!(
            p.recovery > SimDuration::ZERO,
            "chain recovery takes virtual time"
        );
    }

    #[test]
    fn checkpoint_restore_beats_expensive_recompute() {
        let lineage = recovery_latency(None);
        let ckpt = recovery_latency(Some(SimDuration::from_millis(10)));
        assert!(!lineage.restored, "no checkpoint exists to restore");
        assert!(ckpt.restored, "a committed checkpoint must win");
        assert!(
            ckpt.recovery < lineage.recovery,
            "disk read must beat a 200ms recompute ({} vs {})",
            ckpt.recovery,
            lineage.recovery
        );
    }
}
