//! Perf-regression gate over the `BENCH_*.json` trajectory.
//!
//! The bench binaries emit machine-readable reports ([`crate::perf`]);
//! CI has always uploaded them as artifacts, but nothing *compared*
//! them — a perf regression landed silently. This module diffs freshly
//! generated reports against checked-in baselines
//! (`perf/baselines/BENCH_<figure>.json`) with per-metric tolerances;
//! the `perfgate` binary wires it into CI and offers `--bless` to
//! regenerate the baselines after an intentional change.
//!
//! Tolerances are per-metric *classes*, not per-file: metrics derived
//! from virtual time are bit-deterministic on the deterministic backend
//! and gate tightly, while wall-clock metrics (the `fig_scale` and
//! `fig_dispatch` families) vary with the host and only gate against
//! order-of-magnitude collapses. Machine-shape metrics (core counts,
//! lock-contention counters, worker-scaling ratios) are recorded for
//! the trajectory but not gated at all.
//!
//! The workspace has no JSON dependency, so parsing is hand-rolled to
//! match: a minimal recursive-descent parser covering exactly the JSON
//! the hand-rolled writer emits (objects, arrays, strings, numbers,
//! `null`/`true`/`false`).

use std::fmt;

// ---------------------------------------------------------------------
// Minimal JSON value + parser.

/// A parsed JSON value (numbers as `f64`, like the writer emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered like the writer.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry a byte offset for context.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through: advance by the
                    // char, not the byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Bench-report shape.

/// A parsed `BENCH_<figure>.json` report.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// The figure name (`"fig5"`, `"fig_dispatch"`, ...).
    pub figure: String,
    /// `(name, value)` metrics in file order; `None` for JSON `null`
    /// (a non-finite float at serialization time).
    pub metrics: Vec<(String, Option<f64>)>,
}

/// Parses a report file's JSON into its gate-relevant shape.
pub fn parse_report(text: &str) -> Result<GateReport, String> {
    let doc = parse_json(text)?;
    let figure = doc
        .get("figure")
        .and_then(Json::as_str)
        .ok_or("missing \"figure\"")?
        .to_string();
    let metrics = match doc.get("metrics") {
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, v)| match v {
                Json::Num(n) => Ok((k.clone(), Some(*n))),
                Json::Null => Ok((k.clone(), None)),
                other => Err(format!("metric {k:?} is not a number: {other:?}")),
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("missing \"metrics\" object".into()),
    };
    Ok(GateReport { figure, metrics })
}

// ---------------------------------------------------------------------
// Tolerance classes.

/// How a metric is gated against its baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rule {
    /// Recorded for the trajectory, never gated (machine-shape
    /// dependent: core counts, contention counters, scaling ratios).
    Skip,
    /// Higher is better; fail when `fresh < baseline * min_ratio`.
    /// Used for wall-clock throughputs, with generous headroom for
    /// host-speed variance.
    HigherBetter {
        /// Smallest acceptable `fresh / baseline`.
        min_ratio: f64,
    },
    /// Lower is better; fail when `fresh > baseline * max_ratio`.
    LowerBetter {
        /// Largest acceptable `fresh / baseline`.
        max_ratio: f64,
    },
    /// Two-sided relative tolerance; used for virtual-time metrics,
    /// which are deterministic and should barely move.
    Within {
        /// Allowed `|fresh - baseline| / |baseline|`.
        rel: f64,
    },
}

/// The gate class for a metric name.
///
/// The classes lean on the metric naming conventions the bench
/// binaries already use: wall-clock metric names say so
/// (`*_per_sec` on `fig_dispatch`, `sim_wall_ratio_*`,
/// `wall_us_per_kernel_*`, `heal_wall_us_*` on `fig_scale`); every
/// other metric is derived from virtual time and replays
/// bit-identically on the deterministic backend.
pub fn rule_for(figure: &str, metric: &str) -> Rule {
    // Machine shape, not performance.
    if metric == "host_cores" || metric.contains("contended_") || metric.contains("scaling_1_to_4")
    {
        return Rule::Skip;
    }
    // fig_dispatch throughputs are wall-clock on *both* backends.
    if figure == "fig_dispatch" {
        return Rule::HigherBetter { min_ratio: 0.125 };
    }
    // fig_scale's wall-clock families.
    if metric.starts_with("sim_wall_ratio_") {
        return Rule::HigherBetter { min_ratio: 0.125 };
    }
    if metric.starts_with("wall_us_per_kernel_") || metric.starts_with("heal_wall_us_") {
        return Rule::LowerBetter { max_ratio: 8.0 };
    }
    // Everything else is virtual-time: deterministic, tight.
    Rule::Within { rel: 0.02 }
}

// ---------------------------------------------------------------------
// Comparison.

/// One per-metric comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Figure the metric belongs to.
    pub figure: String,
    /// Metric name.
    pub metric: String,
    /// What happened.
    pub verdict: Verdict,
}

/// Outcome of gating one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (or rule is `Skip`).
    Ok,
    /// Outside tolerance; carries fresh and baseline values.
    Regressed {
        /// Value in the fresh report.
        fresh: f64,
        /// Value in the checked-in baseline.
        baseline: f64,
        /// The rule that was violated.
        rule: Rule,
    },
    /// Present in the baseline but missing from the fresh report —
    /// lost coverage fails the gate.
    Missing,
    /// Present fresh but not in the baseline — fine (new metric), but
    /// flagged so the baseline gets re-blessed.
    Unbaselined,
}

impl Verdict {
    /// Whether this verdict fails the gate.
    pub fn fails(&self) -> bool {
        matches!(self, Verdict::Regressed { .. } | Verdict::Missing)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.verdict {
            Verdict::Ok => write!(f, "ok        {}/{}", self.figure, self.metric),
            Verdict::Regressed {
                fresh,
                baseline,
                rule,
            } => write!(
                f,
                "REGRESSED {}/{}: {fresh} vs baseline {baseline} ({rule:?})",
                self.figure, self.metric
            ),
            Verdict::Missing => write!(
                f,
                "MISSING   {}/{}: in baseline but not in fresh report",
                self.figure, self.metric
            ),
            Verdict::Unbaselined => write!(
                f,
                "new       {}/{}: not in baseline (re-bless to record)",
                self.figure, self.metric
            ),
        }
    }
}

/// Gates one value against its baseline under `rule`.
fn check(rule: Rule, fresh: f64, baseline: f64) -> bool {
    match rule {
        Rule::Skip => true,
        Rule::HigherBetter { min_ratio } => fresh >= baseline * min_ratio,
        Rule::LowerBetter { max_ratio } => fresh <= baseline * max_ratio,
        Rule::Within { rel } => {
            let scale = baseline.abs().max(1e-12);
            (fresh - baseline).abs() <= rel * scale
        }
    }
}

/// Compares a fresh report against its baseline, producing one finding
/// per metric (union of both metric sets).
pub fn compare(fresh: &GateReport, baseline: &GateReport) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, base_value) in &baseline.metrics {
        let finding = match fresh.metrics.iter().find(|(n, _)| n == name) {
            None => Verdict::Missing,
            Some((_, fresh_value)) => match (fresh_value, base_value) {
                // Both null (non-finite at write time): equal enough.
                (None, None) => Verdict::Ok,
                (Some(f), Some(b)) => {
                    if check(rule_for(&fresh.figure, name), *f, *b) {
                        Verdict::Ok
                    } else {
                        Verdict::Regressed {
                            fresh: *f,
                            baseline: *b,
                            rule: rule_for(&fresh.figure, name),
                        }
                    }
                }
                // One side null, the other finite: a shape change.
                (None, Some(b)) => Verdict::Regressed {
                    fresh: f64::NAN,
                    baseline: *b,
                    rule: rule_for(&fresh.figure, name),
                },
                (Some(f), None) => Verdict::Regressed {
                    fresh: *f,
                    baseline: f64::NAN,
                    rule: rule_for(&fresh.figure, name),
                },
            },
        };
        findings.push(Finding {
            figure: fresh.figure.clone(),
            metric: name.clone(),
            verdict: finding,
        });
    }
    for (name, _) in &fresh.metrics {
        if !baseline.metrics.iter().any(|(n, _)| n == name) {
            findings.push(Finding {
                figure: fresh.figure.clone(),
                metric: name.clone(),
                verdict: Verdict::Unbaselined,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_writer_output_roundtrip() {
        let json = crate::perf::BenchReport::new(
            "figX",
            crate::perf::ClusterShape {
                islands: 2,
                hosts_per_island: 1,
                devices_per_host: 4,
            },
        )
        .metric("virtual_per_sec", 123.5)
        .metric("bad", f64::NAN)
        .to_json();
        let report = parse_report(&json).unwrap();
        assert_eq!(report.figure, "figX");
        assert_eq!(
            report.metrics,
            vec![
                ("virtual_per_sec".to_string(), Some(123.5)),
                ("bad".to_string(), None),
            ]
        );
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5e3, null, true], "b\n": {"c": "d\"e"}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2500.0),
                Json::Null,
                Json::Bool(true),
            ])
        );
        assert_eq!(
            v.get("b\n").unwrap().get("c").unwrap().as_str(),
            Some("d\"e")
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{}x").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
    }

    fn report(figure: &str, metrics: &[(&str, f64)]) -> GateReport {
        GateReport {
            figure: figure.to_string(),
            metrics: metrics
                .iter()
                .map(|(n, v)| (n.to_string(), Some(*v)))
                .collect(),
        }
    }

    #[test]
    fn virtual_metrics_gate_tightly() {
        let base = report("fig5", &[("pw_fused_per_sec", 100.0)]);
        let ok = report("fig5", &[("pw_fused_per_sec", 101.0)]);
        let bad = report("fig5", &[("pw_fused_per_sec", 90.0)]);
        assert!(compare(&ok, &base).iter().all(|f| !f.verdict.fails()));
        assert!(compare(&bad, &base).iter().any(|f| f.verdict.fails()));
    }

    #[test]
    fn wall_clock_metrics_gate_loosely() {
        let base = report("fig_dispatch", &[("threaded_w4_kernels_per_sec", 8000.0)]);
        // 2x slower on a slower host: fine.
        let slower = report("fig_dispatch", &[("threaded_w4_kernels_per_sec", 4000.0)]);
        // 10x collapse: the kind of regression the gate exists for.
        let collapsed = report("fig_dispatch", &[("threaded_w4_kernels_per_sec", 800.0)]);
        assert!(compare(&slower, &base).iter().all(|f| !f.verdict.fails()));
        assert!(compare(&collapsed, &base).iter().any(|f| f.verdict.fails()));
    }

    #[test]
    fn machine_shape_metrics_are_skipped() {
        assert_eq!(rule_for("fig_dispatch", "host_cores"), Rule::Skip);
        assert_eq!(
            rule_for("fig_dispatch", "threaded_w4_contended_core.store"),
            Rule::Skip
        );
        assert_eq!(
            rule_for("fig_dispatch", "threaded_scaling_1_to_4"),
            Rule::Skip
        );
        let base = report("fig_dispatch", &[("host_cores", 16.0)]);
        let fresh = report("fig_dispatch", &[("host_cores", 1.0)]);
        assert!(compare(&fresh, &base).iter().all(|f| !f.verdict.fails()));
    }

    #[test]
    fn missing_metric_fails_extra_metric_passes() {
        let base = report("fig5", &[("a", 1.0), ("b", 2.0)]);
        let fresh = report("fig5", &[("a", 1.0), ("c", 3.0)]);
        let findings = compare(&fresh, &base);
        assert!(findings
            .iter()
            .any(|f| f.metric == "b" && f.verdict == Verdict::Missing));
        assert!(findings
            .iter()
            .any(|f| f.metric == "c" && f.verdict == Verdict::Unbaselined));
        assert!(!findings
            .iter()
            .find(|f| f.metric == "c")
            .unwrap()
            .verdict
            .fails());
    }
}
