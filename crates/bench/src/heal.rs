//! `fig_heal` harness: recovered throughput after a mid-trace device
//! kill, exercising the elastic-healing loop end to end.
//!
//! One training client per island, each stepping a 4-device gang
//! program back to back for a fixed window of virtual time. Halfway
//! through, a scripted [`FaultPlan`] kills one device of island 0's
//! slice. The in-flight step errors with `ProducerFailed`, the resource
//! manager remaps the slice onto the island's spare devices, and the
//! client's *next* submit re-lowers transparently and keeps stepping —
//! no client-side recovery code beyond tolerating the failed step.
//! Throughput is reported per island for the pre-kill and post-kill
//! halves: island 0 dips by roughly one step and recovers; the other
//! islands are unaffected.

use pathways_core::{FaultSpec, FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways_net::{ClusterSpec, IslandId, NetworkParams};
use pathways_sim::{FaultPlan, Sim, SimDuration, SimTime};

/// Per-island throughput around the kill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslandHealStats {
    /// The island.
    pub island: u32,
    /// Steps/second completed before the kill.
    pub pre_per_sec: f64,
    /// Steps/second completed after the kill (healed slice for island
    /// 0, undisturbed for the rest).
    pub post_per_sec: f64,
    /// Steps that resolved with a typed error (the in-flight step on
    /// the killed device; 0 for surviving islands).
    pub failed_steps: u64,
}

/// Outcome of one healing run.
#[derive(Debug, Clone)]
pub struct HealOutcome {
    /// Per-island pre/post-kill throughput, island order.
    pub islands: Vec<IslandHealStats>,
    /// True if the injector remapped island 0's slice onto live
    /// capacity (exactly one successful heal event).
    pub healed: bool,
}

impl HealOutcome {
    /// Island 0's post/pre throughput ratio — the recovered fraction.
    pub fn recovery(&self) -> f64 {
        let s = &self.islands[0];
        if s.pre_per_sec == 0.0 {
            0.0
        } else {
            s.post_per_sec / s.pre_per_sec
        }
    }
}

/// Runs the healing workload: `islands` islands of 2 hosts x 4 TPUs,
/// one 4-device gang-stepping client per island, a device of island 0's
/// slice killed at `window / 2`, measurement ending at `window`.
/// Deterministic for equal arguments (seeded simulation, scripted
/// fault).
pub fn healing_throughput(islands: u32, compute: SimDuration, window: SimDuration) -> HealOutcome {
    assert!(islands >= 1);
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::islands_of(islands, 2, 4),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let mid = SimTime::ZERO + window / 2;
    let end = SimTime::ZERO + window;

    // Allocate every slice up front so the doomed device is known
    // before the plan is installed (allocation is deterministic:
    // least-loaded devices of each island).
    let mut clients = Vec::new();
    for i in 0..islands {
        let host = rt
            .topology()
            .hosts_of_island(IslandId(i))
            .next()
            .expect("island has hosts");
        let client = rt.client(host);
        let slice = client
            .virtual_slice(SliceRequest::devices(4).in_island(IslandId(i)))
            .expect("island fits one 4-device slice");
        let mut b = client.trace(format!("step-i{i}"));
        let k = b.computation(
            FnSpec::compute_only("train_step", compute)
                .with_allreduce(4)
                .with_output_bytes(1 << 12),
            &slice,
        );
        let prepared = client.prepare(&b.build().expect("valid step program"));
        if i == 0 {
            let victim = slice.physical_devices()[1];
            rt.install_fault_plan(FaultPlan::new().at(mid, FaultSpec::Device(victim)));
        }
        clients.push((client, prepared, k));
    }

    let mut jobs = Vec::new();
    for (i, (client, prepared, k)) in clients.into_iter().enumerate() {
        let h = client.handle().clone();
        jobs.push(sim.spawn(format!("stepper-{i}"), async move {
            let mut pre = 0u64;
            let mut post = 0u64;
            let mut failed = 0u64;
            while h.now() < end {
                // A stale preparation (slice healed) re-lowers inside
                // submit — the loop has no recovery logic beyond
                // classifying the step.
                let run = client.submit(&prepared).await;
                let out = run.object_ref(k).expect("sink exists");
                run.finish().await;
                match out.ready().await {
                    Ok(()) => {
                        if h.now() <= mid {
                            pre += 1;
                        } else {
                            post += 1;
                        }
                    }
                    Err(_) => failed += 1,
                }
            }
            (pre, post, failed)
        }));
    }
    sim.run_to_quiescence();

    let half = (window / 2).as_secs_f64();
    let islands_stats: Vec<IslandHealStats> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, job)| {
            let (pre, post, failed) = job.try_take().expect("stepper finished");
            IslandHealStats {
                island: i as u32,
                pre_per_sec: pre as f64 / half,
                post_per_sec: post as f64 / half,
                failed_steps: failed,
            }
        })
        .collect();
    let heals = rt.faults().heal_events();
    HealOutcome {
        islands: islands_stats,
        healed: heals.len() == 1 && heals[0].healed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn island_zero_recovers_after_device_kill() {
        let out = healing_throughput(
            2,
            SimDuration::from_micros(100),
            SimDuration::from_millis(8),
        );
        assert!(out.healed, "slice must be remapped");
        let i0 = &out.islands[0];
        assert!(i0.failed_steps >= 1, "the in-flight step must fail");
        assert!(
            out.recovery() > 0.5,
            "island 0 must recover ({} -> {} steps/s)",
            i0.pre_per_sec,
            i0.post_per_sec
        );
        // The untouched island never misses a step.
        let i1 = &out.islands[1];
        assert_eq!(i1.failed_steps, 0);
        assert!(i1.post_per_sec >= i1.pre_per_sec * 0.8);
    }
}
