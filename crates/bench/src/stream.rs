//! A client submitting an open-ended stream of programs with a bounded
//! number outstanding — the workload shape of the multi-tenancy
//! experiments (Figures 8, 9, 11).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pathways_core::{Client, PreparedProgram};
use pathways_sim::sync::Semaphore;
use pathways_sim::Sim;

/// Spawns tasks that keep `outstanding` runs of `prepared` in flight
/// forever, incrementing `completed` per finished run. Stop the stream
/// by ending the simulation (`run_until_time`).
pub fn spawn_program_stream(
    sim: &mut Sim,
    client: Client,
    prepared: Arc<PreparedProgram>,
    outstanding: u32,
    completed: Arc<AtomicU64>,
) {
    let window = Semaphore::new(outstanding as u64);
    let h = sim.handle();
    let label = client.label().to_string();
    sim.spawn(format!("stream-{label}"), async move {
        let mut seq = 0u64;
        loop {
            let permit = window.acquire(1).await;
            // The client-side submission work is serialized here — a
            // single-threaded client process — while completions are
            // awaited concurrently in spawned tasks.
            let pending = client.submit(&prepared).await;
            let completed = Arc::clone(&completed);
            h.spawn(format!("run-{label}-{seq}"), async move {
                let _window_slot = permit;
                pending.finish().await;
                completed.fetch_add(1, Ordering::Relaxed);
            });
            seq += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_core::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
    use pathways_net::{ClusterSpec, HostId, NetworkParams};
    use pathways_sim::{SimDuration, SimTime};

    #[test]
    fn stream_keeps_devices_busy() {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(1),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
        let mut b = client.trace("s");
        b.computation(
            FnSpec::compute_only("step", SimDuration::from_micros(100)).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = Arc::new(client.prepare(&program));
        let counter = Arc::new(AtomicU64::new(0));
        spawn_program_stream(&mut sim, client, prepared, 8, Arc::clone(&counter));
        sim.run_until_time(SimTime::ZERO + SimDuration::from_millis(20));
        // ~20ms / ~100us per program, minus ramp-up: well over 100.
        assert!(
            counter.load(Ordering::Relaxed) > 100,
            "only {} programs completed",
            counter.load(Ordering::Relaxed)
        );
    }
}
