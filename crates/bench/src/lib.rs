//! # pathways-bench
//!
//! The experiment harness that regenerates every table and figure of
//! the paper's evaluation (§5). Each `src/bin/` binary prints one
//! table/figure's rows; this library holds the shared measurement
//! functions so the Criterion benches and the binaries use identical
//! code paths.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig5` | dispatch-overhead throughput vs hosts, all frameworks/modes |
//! | `fig6` | smallest computation reaching JAX parity (16 vs 512 hosts) |
//! | `fig7` | parallel vs sequential async dispatch over pipeline depth |
//! | `fig8` | multi-tenant aggregate throughput vs client count |
//! | `fig9` | proportional-share gang-scheduling traces (+ Figure 11) |
//! | `table1` | T5 training throughput, JAX vs Pathways |
//! | `table2` | 3B decoder LM: SPMD vs pipelining |
//! | `fig10` | pipeline over 4 DCN-connected islands |
//! | `fig12` | 64B/136B two-island data-parallel scaling |
//! | `fig14` | chained-program ObjectRef dispatch, sequential vs parallel |
//! | `fig_heal` | recovered throughput after a mid-trace device kill (elastic healing) |
//! | `fig_scale` | warehouse-scale sweep: sim/wall ratio, per-kernel overhead, heal latency up to 10k devices |
//! | `fig_tier` | tiered store: throughput vs HBM budget (spill), recovery time vs checkpoint interval |
//! | `ablation_sched` | batched vs per-node scheduler messages |
//! | `ablation_store` | object-store handle return vs client data pull |
//!
//! `run_all` and `fig_scale` additionally emit machine-readable
//! `BENCH_<figure>.json` reports (see [`perf`]) so the perf trajectory
//! of the reproduction can be tracked across commits.

#![warn(missing_docs)]

pub mod chain;
pub mod dispatch;
pub mod gate;
pub mod heal;
pub mod micro;
pub mod perf;
pub mod pipeline;
pub mod scale;
pub mod stream;
pub mod table;
pub mod tenancy;
pub mod tier;
pub mod training;
