//! Figure 7 harness: parallel vs sequential asynchronous dispatch on a
//! multi-stage pipeline, each stage on 4 TPU cores of a different host,
//! transferring data to the next stage over ICI.

use pathways_core::{DispatchMode, FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways_net::{ClusterSpec, HostId, NetworkParams};
use pathways_sim::{Sim, SimDuration};

/// Computations/second of a `stages`-stage pipeline under the given
/// dispatch mode.
pub fn pipeline_throughput(
    stages: u32,
    mode: DispatchMode,
    stage_compute: SimDuration,
    programs: u64,
) -> f64 {
    let mut sim = Sim::new(0);
    let cfg = PathwaysConfig {
        dispatch: mode,
        ..PathwaysConfig::default()
    };
    // One host per stage, 4 TPUs each (the paper's setup).
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::single_island(stages, 4),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    let client = rt.client(HostId(stages - 1));
    let mut b = client.trace("pipeline");
    let mut prev = None;
    for s in 0..stages {
        // Contiguous 4-device slices land on successive hosts.
        let slice = client
            .virtual_slice(SliceRequest::devices(4).contiguous())
            .unwrap();
        let comp = b.computation(
            FnSpec::compute_only(format!("stage{s}"), stage_compute).with_output_bytes(1 << 10),
            &slice,
        );
        if let Some(p) = prev {
            b.edge(p, comp, 1 << 10);
        }
        prev = Some(comp);
    }
    let program = b.build().unwrap();
    let prepared = client.prepare(&program);
    let h = sim.handle();
    let job = sim.spawn("client", async move {
        let start = h.now();
        for _ in 0..programs {
            client.run(&prepared).await;
        }
        h.now().duration_since(start)
    });
    sim.run_to_quiescence();
    let elapsed = job.try_take().unwrap();
    (stages as u64 * programs) as f64 / elapsed.as_secs_f64()
}

/// Pipeline throughput with per-computation (unbatched) grant messages —
/// the scheduling-batching ablation.
pub fn pipeline_throughput_unbatched_grants(
    stages: u32,
    stage_compute: SimDuration,
    programs: u64,
) -> f64 {
    let mut sim = Sim::new(0);
    let cfg = PathwaysConfig {
        batch_grants: false,
        ..PathwaysConfig::default()
    };
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::single_island(stages, 4),
        NetworkParams::tpu_cluster(),
        cfg,
    );
    let client = rt.client(HostId(stages - 1));
    let mut b = client.trace("pipeline");
    let mut prev = None;
    for s in 0..stages {
        let slice = client
            .virtual_slice(SliceRequest::devices(4).contiguous())
            .unwrap();
        let comp = b.computation(
            FnSpec::compute_only(format!("stage{s}"), stage_compute).with_output_bytes(1 << 10),
            &slice,
        );
        if let Some(p) = prev {
            b.edge(p, comp, 1 << 10);
        }
        prev = Some(comp);
    }
    let program = b.build().unwrap();
    let prepared = client.prepare(&program);
    let h = sim.handle();
    let job = sim.spawn("client", async move {
        let start = h.now();
        for _ in 0..programs {
            client.run(&prepared).await;
        }
        h.now().duration_since(start)
    });
    sim.run_to_quiescence();
    let elapsed = job.try_take().unwrap();
    (stages as u64 * programs) as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_dispatch_wins_at_depth() {
        // Short stages (the paper's "simple computations"): host-side
        // work dominates, which is exactly where parallel dispatch pays.
        let compute = SimDuration::from_micros(10);
        let par = pipeline_throughput(16, DispatchMode::Parallel, compute, 6);
        let seq = pipeline_throughput(16, DispatchMode::Sequential, compute, 6);
        assert!(
            par > seq * 1.2,
            "parallel {par:.0}/s should clearly beat sequential {seq:.0}/s"
        );
    }

    #[test]
    fn deep_pipelines_amortize_fixed_overheads() {
        let compute = SimDuration::from_micros(50);
        let shallow = pipeline_throughput(2, DispatchMode::Parallel, compute, 10);
        let deep = pipeline_throughput(32, DispatchMode::Parallel, compute, 10);
        assert!(
            deep > shallow,
            "deep {deep:.0}/s should beat shallow {shallow:.0}/s"
        );
    }
}
