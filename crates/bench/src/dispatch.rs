//! `fig_dispatch` harness: controller dispatch throughput, deterministic
//! vs threaded.
//!
//! Every other figure measures *virtual-time* behavior; this one
//! measures how fast the controller itself runs — programs and kernels
//! per wall-clock second pushed through one `PathwaysRuntime` — and how
//! that changes when the same controller code runs on the work-stealing
//! threaded backend at 1/2/4/8 workers.
//!
//! The workload is controller-bound by construction: each client traces
//! and lowers a fresh multi-kernel program every iteration (tracing +
//! lowering is the paper's client-side cost, §4.5), so wall time is
//! dominated by real CPU work in the client, scheduler, store, and
//! dispatch paths rather than by modeled latencies (which are set to
//! zero/near-zero here). Clients sit on disjoint islands, which is what
//! makes the work parallelizable at all — one island's grant loop is
//! intentionally serial.
//!
//! Alongside throughput, the harness snapshots the named-lock
//! contention profile ([`pathways_sim::contention_profile`]): which of
//! the controller's shared structures actually block under threads.

// This module measures wall time, like `scale.rs` (both are listed in
// pathlint's WALL_CLOCK_EXEMPT and clippy.toml's exemption comment).
#![allow(clippy::disallowed_types)]

use std::time::Instant;

use pathways_core::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways_net::{Bandwidth, ClusterSpec, HostId, IslandId, NetworkParams};
use pathways_sim::{
    contention_profile, reset_contention_profile, Executor, ExecutorKind, LockProfile, SimDuration,
};

/// Devices per (single-host) island in the dispatch workload.
pub const DEVICES_PER_ISLAND: u32 = 4;

/// One measurement: a backend, a client fleet, and what it achieved.
#[derive(Debug, Clone)]
pub struct DispatchStats {
    /// Backend label (`"deterministic"` or `"threaded"`).
    pub backend: &'static str,
    /// Worker threads (1 for the deterministic backend).
    pub workers: usize,
    /// Concurrent clients (= islands).
    pub clients: u32,
    /// Programs submitted and completed across all clients.
    pub programs: u64,
    /// Kernels dispatched to devices (programs x kernels-per-program).
    pub kernels: u64,
    /// Wall-clock seconds from first submission to quiescence.
    pub wall_secs: f64,
    /// Named-lock contention profile captured over the run.
    pub contention: Vec<LockProfile>,
}

impl DispatchStats {
    /// Programs completed per wall second.
    pub fn programs_per_sec(&self) -> f64 {
        self.programs as f64 / self.wall_secs
    }

    /// Kernels dispatched per wall second.
    pub fn kernels_per_sec(&self) -> f64 {
        self.kernels as f64 / self.wall_secs
    }
}

/// Runs the dispatch workload on `kind`: `clients` clients, one per
/// single-host island, each tracing/lowering/submitting
/// `programs_per_client` fresh programs of `kernels_per_program`
/// computations on its island's 4-device slice.
///
/// Virtual-time behavior is deterministic on the deterministic backend;
/// wall-clock fields are machine-dependent on both.
pub fn dispatch_point(
    kind: ExecutorKind,
    clients: u32,
    programs_per_client: u32,
    kernels_per_program: u32,
) -> DispatchStats {
    assert!(clients >= 1 && programs_per_client >= 1 && kernels_per_program >= 1);
    let mut exec = Executor::new(kind, 0);
    // Modeled latencies all zero: this figure charges the controller's
    // CPU work, not the simulated network/device time the other figures
    // study. Zero-duration sleeps complete without arming a timer, so
    // on the threaded backend wall time is real scheduling/lowering/
    // dispatch CPU rather than timer churn (which would serialize on
    // the timer thread and swamp any worker-count effect).
    let cfg = PathwaysConfig {
        client_overhead: SimDuration::ZERO,
        client_per_comp: SimDuration::ZERO,
        sched_decision: SimDuration::ZERO,
        ..PathwaysConfig::default()
    };
    let net = NetworkParams {
        pcie_latency: SimDuration::ZERO,
        pcie_bandwidth: Bandwidth::from_gbps(1e6),
        ici_hop_latency: SimDuration::ZERO,
        ici_bandwidth: Bandwidth::from_gbps(1e6),
        dcn_latency: SimDuration::ZERO,
        dcn_bandwidth: Bandwidth::from_gbps(1e6),
        dcn_send_overhead: SimDuration::ZERO,
        enqueue_cpu_overhead: SimDuration::ZERO,
    };
    let rt = PathwaysRuntime::new(
        &exec,
        ClusterSpec::islands_of(clients, 1, DEVICES_PER_ISLAND),
        net,
        cfg,
    );

    let mut jobs = Vec::new();
    for i in 0..clients {
        let client = rt.client(HostId(i));
        let slice = client
            .virtual_slice(SliceRequest::devices(DEVICES_PER_ISLAND).in_island(IslandId(i)))
            .expect("island fits one slice");
        jobs.push(exec.spawn(format!("dispatch-client-{i}"), async move {
            let mut done = 0u64;
            for p in 0..programs_per_client {
                // Fresh trace + prepare every iteration: the controller
                // work under test, not an artifact to cache away.
                let mut b = client.trace(format!("d{i}-{p}"));
                let mut prev = None;
                for k in 0..kernels_per_program {
                    let c = b.computation(
                        FnSpec::compute_only(format!("k{k}"), SimDuration::ZERO),
                        &slice,
                    );
                    if let Some(pr) = prev {
                        b.edge(pr, c, 8);
                    }
                    prev = Some(c);
                }
                let prepared = client.prepare(&b.build().expect("valid dispatch program"));
                client.run(&prepared).await;
                done += 1;
            }
            done
        }));
    }

    reset_contention_profile();
    let start = Instant::now();
    let outcome = exec.run();
    let wall_secs = start.elapsed().as_secs_f64();
    let contention = contention_profile();
    assert!(
        outcome.is_quiescent(),
        "dispatch workload wedged: {outcome:?}"
    );

    let programs: u64 = jobs
        .into_iter()
        .map(|j| j.try_take().expect("dispatch client finished"))
        .sum();
    DispatchStats {
        backend: match kind {
            ExecutorKind::Deterministic => "deterministic",
            ExecutorKind::Threaded { .. } => "threaded",
        },
        workers: match kind {
            ExecutorKind::Deterministic => 1,
            ExecutorKind::Threaded { workers } => workers,
        },
        clients,
        programs,
        kernels: programs * u64::from(kernels_per_program),
        wall_secs,
        contention,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_point_completes_and_replays() {
        let a = dispatch_point(ExecutorKind::Deterministic, 2, 3, 4);
        let b = dispatch_point(ExecutorKind::Deterministic, 2, 3, 4);
        assert_eq!(a.programs, 6);
        assert_eq!(a.kernels, 24);
        assert_eq!(a.programs, b.programs, "virtual behavior must replay");
        assert!(a.wall_secs > 0.0);
    }

    #[test]
    fn threaded_point_completes_all_programs() {
        let s = dispatch_point(ExecutorKind::Threaded { workers: 2 }, 2, 3, 4);
        assert_eq!(s.programs, 6);
        assert_eq!(s.kernels, 24);
        assert_eq!(s.backend, "threaded");
        assert_eq!(s.workers, 2);
    }

    #[test]
    fn contention_profile_names_hot_locks() {
        let s = dispatch_point(ExecutorKind::Threaded { workers: 4 }, 4, 4, 4);
        // The run must have exercised the named controller locks.
        let names: Vec<&str> = s.contention.iter().map(|p| p.name.as_str()).collect();
        assert!(
            names.contains(&"core.store"),
            "store lock missing from profile: {names:?}"
        );
        assert!(
            s.contention.iter().any(|p| p.acquires > 0),
            "profile counted no acquisitions"
        );
    }
}
