//! Criterion benchmarks of whole-system simulation throughput: how much
//! wall time it costs to simulate Pathways programs end to end. These
//! exercise the same code paths as the figure/table binaries at reduced
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pathways_baselines::{StepWorkload, SubmissionMode};
use pathways_bench::micro::{jax_throughput, pathways_throughput};
use pathways_bench::pipeline::pipeline_throughput;
use pathways_core::DispatchMode;
use pathways_sim::SimDuration;

fn bench_pathways_program(c: &mut Criterion) {
    let mut g = c.benchmark_group("end-to-end");
    g.sample_size(10);
    for hosts in [2u32, 8] {
        g.bench_with_input(
            BenchmarkId::new("pw-op-by-op-16-programs", hosts),
            &hosts,
            |b, &hosts| {
                b.iter(|| {
                    black_box(pathways_throughput(
                        hosts,
                        4,
                        SubmissionMode::OpByOp,
                        StepWorkload::trivial(),
                        16,
                    ))
                });
            },
        );
    }
    g.bench_function("jax-fused-128-computations", |b| {
        b.iter(|| {
            black_box(jax_throughput(
                4,
                4,
                SubmissionMode::Fused,
                StepWorkload::trivial(),
                128,
            ))
        });
    });
    g.bench_function("pw-pipeline-8-stages", |b| {
        b.iter(|| {
            black_box(pipeline_throughput(
                8,
                DispatchMode::Parallel,
                SimDuration::from_micros(10),
                4,
            ))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pathways_program
}
criterion_main!(benches);
