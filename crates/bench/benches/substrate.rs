//! Criterion micro-benchmarks of the substrate hot paths: the
//! virtual-time executor, channels, topology lookups, collective cost
//! models and progress tracking. These measure *real* wall time of the
//! simulator itself (how fast experiments run), not simulated time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pathways_net::collective::torus_allreduce;
use pathways_net::{Bandwidth, ClusterSpec, DeviceId};
use pathways_plaque::ProgressTracker;
use pathways_sim::{channel, Sim, SimDuration};

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-executor");
    for n in [100u64, 1000] {
        g.bench_with_input(BenchmarkId::new("timer-events", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Sim::new(0);
                for i in 0..n {
                    let h = sim.handle();
                    sim.spawn(format!("t{i}"), async move {
                        h.sleep(SimDuration::from_nanos(i)).await;
                    });
                }
                black_box(sim.run_to_quiescence())
            });
        });
    }
    g.bench_function("channel-1k-messages", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            let (tx, mut rx) = channel::channel::<u64>();
            sim.spawn("producer", async move {
                for i in 0..1000u64 {
                    tx.send(i).unwrap();
                }
            });
            let consumer = sim.spawn("consumer", async move {
                let mut sum = 0u64;
                while let Some(v) = rx.recv().await {
                    sum += v;
                }
                sum
            });
            sim.run_to_quiescence();
            black_box(consumer.try_take())
        });
    });
    g.finish();
}

fn bench_topology(c: &mut Criterion) {
    let topo = ClusterSpec::config_a(512).build();
    let mut g = c.benchmark_group("topology");
    g.bench_function("host-of-device-2048", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for d in 0..2048u32 {
                acc ^= topo.host_of_device(DeviceId(d)).0;
            }
            black_box(acc)
        });
    });
    g.bench_function("ici-hops-pairs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for d in (0..2048u32).step_by(64) {
                acc += topo.ici_hops(DeviceId(0), DeviceId(d));
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_collective_model(c: &mut Criterion) {
    let bw = Bandwidth::from_gbps(100.0);
    let lat = SimDuration::from_micros(1);
    c.bench_function("torus-allreduce-cost", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for bytes in [4u64, 1 << 20, 1 << 30] {
                acc ^= torus_allreduce(32, 64, bytes, bw, lat).as_nanos();
            }
            black_box(acc)
        });
    });
}

fn bench_progress(c: &mut Criterion) {
    c.bench_function("progress-tracker-1k-srcs", |b| {
        b.iter(|| {
            let mut t = ProgressTracker::new(1000);
            for s in 0..1000u32 {
                t.record_data(s);
                t.record_done(s, 1);
            }
            black_box(t.take_completion())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_executor, bench_topology, bench_collective_model, bench_progress
}
criterion_main!(benches);
