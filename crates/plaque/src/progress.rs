//! Progress tracking for sparse sharded exchanges.
//!
//! §4.3: the substrate must support *"sparse data exchanges along sharded
//! edges, in which messages can be sent between a dynamically chosen
//! subset of shards, using standard progress tracking mechanisms to
//! detect when all messages for a shard have been received."*
//!
//! We use the counted-punctuation scheme of MillWheel/Naiad: when a
//! source shard finishes emitting on an edge it sends every destination
//! shard a `Done(sent_count)` punctuation carrying how many data tuples
//! it addressed to that destination. A destination's view of the edge is
//! complete when it has a punctuation from **all** source shards and has
//! received exactly the promised number of tuples — so a destination that
//! was sent nothing still learns, cheaply, that the edge is closed.

use std::fmt;

/// Per-(destination shard, in-edge) completion tracker.
#[derive(Clone)]
pub struct ProgressTracker {
    expected_srcs: u32,
    dones: pathways_sim::hash::FxHashSet<u32>,
    expected: u64,
    received: u64,
    fired: bool,
}

impl fmt::Debug for ProgressTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressTracker")
            .field("srcs_done", &self.dones.len())
            .field("expected_srcs", &self.expected_srcs)
            .field("received", &self.received)
            .field("expected", &self.expected)
            .finish()
    }
}

impl ProgressTracker {
    /// Creates a tracker for a destination expecting punctuations from
    /// `expected_srcs` distinct source shards (all shards of the source
    /// node for an all-to-all edge; just one for a one-to-one edge).
    ///
    /// # Panics
    ///
    /// Panics if `expected_srcs` is zero.
    pub fn new(expected_srcs: u32) -> Self {
        assert!(
            expected_srcs > 0,
            "edge must have at least one source shard"
        );
        ProgressTracker {
            expected_srcs,
            dones: pathways_sim::hash::FxHashSet::default(),
            expected: 0,
            received: 0,
            fired: false,
        }
    }

    /// Records a data tuple arrival from `src_shard`.
    ///
    /// # Panics
    ///
    /// Panics if the source already declared done with fewer tuples than
    /// have now arrived (a protocol violation).
    pub fn record_data(&mut self, src_shard: u32) {
        let _ = src_shard;
        self.received += 1;
        if self.all_done() {
            assert!(
                self.received <= self.expected,
                "received more tuples than punctuations promised"
            );
        }
    }

    /// Records a punctuation: `src_shard` sent `sent` tuples to this
    /// destination and will send no more.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate punctuation from the same source shard.
    pub fn record_done(&mut self, src_shard: u32, sent: u64) {
        assert!(
            self.dones.insert(src_shard),
            "duplicate punctuation from source shard {src_shard}"
        );
        self.expected += sent;
    }

    fn all_done(&self) -> bool {
        self.dones.len() as u32 == self.expected_srcs
    }

    /// True when all producers punctuated and all promised tuples
    /// arrived.
    pub fn is_complete(&self) -> bool {
        self.all_done() && self.received == self.expected
    }

    /// Returns true exactly once, the first time completion is observed.
    pub fn take_completion(&mut self) -> bool {
        if !self.fired && self.is_complete() {
            self.fired = true;
            true
        } else {
            false
        }
    }

    /// Tuples received so far.
    pub fn received(&self) -> u64 {
        self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_when_counts_match() {
        let mut t = ProgressTracker::new(2);
        t.record_data(0);
        t.record_done(0, 2);
        assert!(!t.is_complete());
        t.record_data(0);
        assert!(!t.is_complete()); // src 1 not done
        t.record_done(1, 0);
        assert!(t.is_complete());
    }

    #[test]
    fn sparse_exchange_with_no_tuples_completes() {
        // A destination that receives nothing still closes once all
        // sources punctuate zero.
        let mut t = ProgressTracker::new(3);
        for s in 0..3 {
            assert!(!t.is_complete());
            t.record_done(s, 0);
        }
        assert!(t.is_complete());
    }

    #[test]
    fn punctuation_before_data_is_fine() {
        // Reordering across source shards: done from src0 arrives before
        // src1's data.
        let mut t = ProgressTracker::new(2);
        t.record_done(0, 0);
        t.record_done(1, 1);
        assert!(!t.is_complete());
        t.record_data(1);
        assert!(t.is_complete());
    }

    #[test]
    fn take_completion_fires_once() {
        let mut t = ProgressTracker::new(1);
        t.record_done(0, 0);
        assert!(t.take_completion());
        assert!(!t.take_completion());
    }

    #[test]
    #[should_panic(expected = "duplicate punctuation")]
    fn duplicate_done_panics() {
        let mut t = ProgressTracker::new(1);
        t.record_done(0, 0);
        t.record_done(0, 0);
    }

    #[test]
    #[should_panic(expected = "more tuples than punctuations promised")]
    fn over_delivery_panics() {
        let mut t = ProgressTracker::new(1);
        t.record_done(0, 1);
        t.record_data(0);
        t.record_data(0);
    }
}
