//! Sharded dataflow graphs.
//!
//! §4.3: *"the representation used to describe the PATHWAYS IR must
//! contain a single node for each sharded computation ... a chained
//! execution of 2 computations A and B with N computation shards each
//! should have 4 nodes in the dataflow representation: Arg → Compute(A) →
//! Compute(B) → Result, regardless of the choice of N."*
//!
//! A [`Graph`] therefore stores one [`NodeId`] per *logical* computation;
//! the shard count and per-shard host placement are node attributes, not
//! extra nodes. Tests assert the representation stays O(nodes + edges)
//! as shard counts grow.

use std::fmt;
use std::sync::Arc;

use pathways_net::HostId;

use crate::operator::Operator;

/// Index of a logical (sharded) node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Index of a logical edge in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge{}", self.0)
    }
}

/// Factory producing the operator instance for one shard of a node.
pub type OperatorFactory = Arc<dyn Fn(u32) -> Box<dyn Operator> + Send + Sync>;

pub(crate) struct NodeInfo {
    pub name: String,
    pub placement: Vec<HostId>,
    pub factory: OperatorFactory,
    pub in_edges: Vec<EdgeId>,
    pub out_edges: Vec<EdgeId>,
}

impl NodeInfo {
    pub fn shards(&self) -> u32 {
        self.placement.len() as u32
    }
}

/// How the shards of an edge's endpoints may communicate. Declaring a
/// restricted mapping lets the runtime skip punctuations to destinations
/// a shard could never address, keeping progress-tracking traffic O(1)
/// per shard instead of O(dst shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMapping {
    /// Any source shard may send to any destination shard.
    AllToAll,
    /// Source shard `i` may only send to destination shard `i`
    /// (requires equal shard counts).
    OneToOne,
}

pub(crate) struct EdgeInfo {
    pub src: NodeId,
    pub dst: NodeId,
    pub mapping: EdgeMapping,
}

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node was declared with no shards.
    EmptyPlacement {
        /// Offending node name.
        node: String,
    },
    /// An edge referenced a node id not in the graph.
    UnknownNode {
        /// The dangling id.
        node: NodeId,
    },
    /// An edge connects a node to itself.
    SelfLoop {
        /// The node with the self-edge.
        node: NodeId,
    },
    /// A one-to-one edge connects nodes with different shard counts.
    MappingShardMismatch {
        /// The offending edge.
        edge: EdgeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyPlacement { node } => {
                write!(f, "node {node:?} has an empty placement")
            }
            GraphError::UnknownNode { node } => write!(f, "edge references unknown {node}"),
            GraphError::SelfLoop { node } => write!(f, "self-loop on {node}"),
            GraphError::MappingShardMismatch { edge } => {
                write!(f, "one-to-one {edge} connects different shard counts")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Builder for [`Graph`].
pub struct GraphBuilder {
    name: String,
    nodes: Vec<NodeInfo>,
    edges: Vec<EdgeInfo>,
    error: Option<GraphError>,
}

impl fmt::Debug for GraphBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphBuilder")
            .field("name", &self.name)
            .field("nodes", &self.nodes.len())
            .field("edges", &self.edges.len())
            .finish()
    }
}

impl GraphBuilder {
    /// Starts a new graph named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            error: None,
        }
    }

    /// Adds a sharded node: one operator instance per entry of
    /// `placement`, running on that host. The factory is invoked with the
    /// shard index at launch time.
    pub fn node(
        &mut self,
        name: impl Into<String>,
        placement: Vec<HostId>,
        factory: impl Fn(u32) -> Box<dyn Operator> + Send + Sync + 'static,
    ) -> NodeId {
        let name = name.into();
        if placement.is_empty() && self.error.is_none() {
            self.error = Some(GraphError::EmptyPlacement { node: name.clone() });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            name,
            placement,
            factory: Arc::new(factory),
            in_edges: Vec::new(),
            out_edges: Vec::new(),
        });
        id
    }

    /// Adds a logical edge from `src` to `dst`. Tuples sent on the edge
    /// are tagged with a destination shard; the representation stays one
    /// edge regardless of the shard counts of either endpoint.
    pub fn edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        self.edge_with_mapping(src, dst, EdgeMapping::AllToAll)
    }

    /// Adds an edge on which shard `i` only communicates with shard `i`.
    pub fn one_to_one_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        self.edge_with_mapping(src, dst, EdgeMapping::OneToOne)
    }

    /// Adds an edge with an explicit shard mapping.
    pub fn edge_with_mapping(&mut self, src: NodeId, dst: NodeId, mapping: EdgeMapping) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        if self.error.is_none() {
            let n = self.nodes.len() as u32;
            if src.0 >= n {
                self.error = Some(GraphError::UnknownNode { node: src });
            } else if dst.0 >= n {
                self.error = Some(GraphError::UnknownNode { node: dst });
            } else if src == dst {
                self.error = Some(GraphError::SelfLoop { node: src });
            } else if mapping == EdgeMapping::OneToOne
                && self.nodes[src.index()].shards() != self.nodes[dst.index()].shards()
            {
                self.error = Some(GraphError::MappingShardMismatch { edge: id });
            }
        }
        if self.error.is_none() {
            self.nodes[src.index()].out_edges.push(id);
            self.nodes[dst.index()].in_edges.push(id);
        }
        self.edges.push(EdgeInfo { src, dst, mapping });
        id
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns the first structural error recorded during building.
    pub fn build(self) -> Result<Graph, GraphError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(Graph {
            inner: Arc::new(GraphInner {
                name: self.name,
                nodes: self.nodes,
                edges: self.edges,
            }),
        })
    }
}

pub(crate) struct GraphInner {
    pub name: String,
    pub nodes: Vec<NodeInfo>,
    pub edges: Vec<EdgeInfo>,
}

/// An immutable, cheaply-cloneable sharded dataflow graph.
#[derive(Clone)]
pub struct Graph {
    pub(crate) inner: Arc<GraphInner>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("name", &self.inner.name)
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .finish()
    }
}

impl NodeId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Graph {
    /// Graph name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of logical nodes — independent of shard counts.
    pub fn num_nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// Number of logical edges — independent of shard counts.
    pub fn num_edges(&self) -> usize {
        self.inner.edges.len()
    }

    /// Shard count of `node`.
    pub fn shards(&self, node: NodeId) -> u32 {
        self.inner.nodes[node.index()].shards()
    }

    /// Host placement of `node` (one entry per shard).
    pub fn placement(&self, node: NodeId) -> &[HostId] {
        &self.inner.nodes[node.index()].placement
    }

    /// Name of `node`.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.inner.nodes[node.index()].name
    }

    /// Endpoints of `edge`.
    pub fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.inner.edges[edge.index()];
        (e.src, e.dst)
    }

    /// Shard mapping of `edge`.
    pub fn edge_mapping(&self, edge: EdgeId) -> EdgeMapping {
        self.inner.edges[edge.index()].mapping
    }

    /// Destination shards a given source shard may address on `edge`.
    pub fn reachable_dst_shards(&self, edge: EdgeId, src_shard: u32) -> Vec<u32> {
        let e = &self.inner.edges[edge.index()];
        match e.mapping {
            EdgeMapping::AllToAll => (0..self.shards(e.dst)).collect(),
            EdgeMapping::OneToOne => vec![src_shard],
        }
    }

    /// Number of source shards that may address a destination shard on
    /// `edge` (the punctuation count progress tracking must await).
    pub fn expected_srcs(&self, edge: EdgeId, _dst_shard: u32) -> u32 {
        let e = &self.inner.edges[edge.index()];
        match e.mapping {
            EdgeMapping::AllToAll => self.shards(e.src),
            EdgeMapping::OneToOne => 1,
        }
    }

    /// In-edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.inner.nodes[node.index()].in_edges
    }

    /// Out-edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.inner.nodes[node.index()].out_edges
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.inner.nodes.len() as u32).map(NodeId)
    }

    /// Hosts that hold at least one shard of the graph.
    pub fn participating_hosts(&self) -> Vec<HostId> {
        let mut hosts: Vec<HostId> = self
            .inner
            .nodes
            .iter()
            .flat_map(|n| n.placement.iter().copied())
            .collect();
        hosts.sort();
        hosts.dedup();
        hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::NullOperator;

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn representation_is_independent_of_shard_count() {
        // The §4.3 requirement: Arg -> A -> B -> Result is 4 nodes and 3
        // edges whether N is 1 or 1000.
        for n in [1u32, 8, 1000] {
            let mut g = GraphBuilder::new("chain");
            let arg = g.node("Arg", hosts(1), |_| Box::new(NullOperator));
            let a = g.node("A", hosts(n), |_| Box::new(NullOperator));
            let b = g.node("B", hosts(n), |_| Box::new(NullOperator));
            let result = g.node("Result", hosts(1), |_| Box::new(NullOperator));
            g.edge(arg, a);
            g.edge(a, b);
            g.edge(b, result);
            let graph = g.build().unwrap();
            assert_eq!(graph.num_nodes(), 4);
            assert_eq!(graph.num_edges(), 3);
            assert_eq!(graph.shards(a), n);
        }
    }

    #[test]
    fn adjacency_is_recorded() {
        let mut g = GraphBuilder::new("g");
        let a = g.node("A", hosts(2), |_| Box::new(NullOperator));
        let b = g.node("B", hosts(2), |_| Box::new(NullOperator));
        let c = g.node("C", hosts(2), |_| Box::new(NullOperator));
        let e1 = g.edge(a, b);
        let e2 = g.edge(a, c);
        let graph = g.build().unwrap();
        assert_eq!(graph.out_edges(a), &[e1, e2]);
        assert_eq!(graph.in_edges(b), &[e1]);
        assert_eq!(graph.edge_endpoints(e2), (a, c));
    }

    #[test]
    fn empty_placement_is_rejected() {
        let mut g = GraphBuilder::new("g");
        g.node("bad", vec![], |_| Box::new(NullOperator));
        assert!(matches!(g.build(), Err(GraphError::EmptyPlacement { .. })));
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut g = GraphBuilder::new("g");
        let a = g.node("A", hosts(1), |_| Box::new(NullOperator));
        g.edge(a, a);
        assert_eq!(g.build().unwrap_err(), GraphError::SelfLoop { node: a });
    }

    #[test]
    fn participating_hosts_dedup() {
        let mut g = GraphBuilder::new("g");
        let a = g.node("A", vec![HostId(3), HostId(1)], |_| Box::new(NullOperator));
        let b = g.node("B", vec![HostId(1), HostId(2)], |_| Box::new(NullOperator));
        g.edge(a, b);
        let graph = g.build().unwrap();
        assert_eq!(
            graph.participating_hosts(),
            vec![HostId(1), HostId(2), HostId(3)]
        );
    }
}
