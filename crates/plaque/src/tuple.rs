//! Data tuples flowing along sharded edges.
//!
//! §4.3: *"each node generates output data tuples tagged with a
//! destination shard."* A [`Tuple`] carries an opaque payload (any Rust
//! value) plus the number of bytes it represents on the wire, which is
//! what the DCN cost model charges.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply-cloneable payload.
pub type Payload = Arc<dyn Any + Send + Sync>;

/// One data tuple.
#[derive(Clone)]
pub struct Tuple {
    payload: Payload,
    bytes: u64,
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tuple").field("bytes", &self.bytes).finish()
    }
}

impl Tuple {
    /// Wraps `value` as a tuple of simulated wire size `bytes`.
    pub fn new<T: Send + Sync + 'static>(value: T, bytes: u64) -> Self {
        Tuple {
            payload: Arc::new(value),
            bytes,
        }
    }

    /// A zero-byte control tuple.
    pub fn control<T: Send + Sync + 'static>(value: T) -> Self {
        Self::new(value, 0)
    }

    /// Simulated wire size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Borrows the payload as `T`, if it is one.
    pub fn get<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// Borrows the payload as `T`.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if the payload is not a `T`.
    pub fn expect<T: 'static>(&self) -> &T {
        self.payload
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("tuple payload is not a {}", std::any::type_name::<T>()))
    }

    /// The raw payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcasting_round_trips() {
        let t = Tuple::new(vec![1u32, 2, 3], 12);
        assert_eq!(t.bytes(), 12);
        assert_eq!(t.get::<Vec<u32>>().unwrap(), &vec![1, 2, 3]);
        assert!(t.get::<String>().is_none());
        assert_eq!(t.expect::<Vec<u32>>()[2], 3);
    }

    #[test]
    #[should_panic(expected = "tuple payload is not a alloc::string::String")]
    fn expect_panics_with_type_name() {
        let t = Tuple::control(7u8);
        let _ = t.expect::<String>();
    }

    #[test]
    fn clone_shares_payload() {
        let t = Tuple::new(String::from("x"), 1);
        let u = t.clone();
        assert!(Arc::ptr_eq(t.payload(), u.payload()));
    }
}
